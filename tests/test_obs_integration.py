"""Observability threaded through the stack: the no-drift guarantee,
trace well-formedness, report round trips, harness telemetry, and the
CLI acceptance path (``sim --trace --emit-json``, ``stats``)."""

import json
import os

import pytest

from repro.bench import Harness
from repro.cli import main
from repro.compiler import compile_pattern
from repro.engine import OpCounters, PatternAwareEngine
from repro.graph import load_dataset
from repro.hw import FlexMinerConfig, SimReport, simulate
from repro.obs import MetricsRegistry, Tracer, validate_trace
from repro.obs.trace import SIM_PID
from repro.patterns import four_cycle, triangle


def _zero_report(**overrides):
    base = dict(
        counts=(0,), cycles=0.0, seconds=0.0, num_pes=4,
        busy_cycles=0.0, stall_cycles=0.0, pruner_cycles=0.0,
        setop_cycles=0.0, cmap_cycles=0.0, noc_requests=0,
        dram_accesses=0, l2_hits=0, l2_misses=0, private_hits=0,
        private_misses=0, cmap_reads=0, cmap_writes=0, cmap_overflows=0,
        cmap_fallbacks=0, frontier_reads=0, tasks=0,
    )
    base.update(overrides)
    return SimReport(**base)


class TestSimReportDerived:
    def test_zero_denominators_are_finite(self):
        report = _zero_report()
        assert report.l2_miss_rate == 0.0
        assert report.l2_hit_rate == 0.0
        assert report.private_hit_rate == 0.0
        assert report.private_miss_rate == 0.0
        assert report.cmap_read_ratio == 0.0
        assert report.memory_bound_fraction == 0.0
        assert report.load_imbalance == 1.0  # no PEs: call it balanced
        assert report.speedup_over(1.0) == 0.0

    def test_hit_and_miss_rates_sum_to_one(self):
        report = _zero_report(
            l2_hits=3, l2_misses=1, private_hits=9, private_misses=1
        )
        assert report.l2_hit_rate + report.l2_miss_rate == pytest.approx(1.0)
        assert report.l2_hit_rate == pytest.approx(0.75)
        assert (
            report.private_hit_rate + report.private_miss_rate
            == pytest.approx(1.0)
        )

    def test_as_dict_round_trip(self):
        report = _zero_report(
            counts=(7,), cycles=123.5, l2_hits=4, l2_misses=4,
            per_pe_cycles=[100.0, 123.5], extras={"x": 1.0},
        )
        data = json.loads(report.to_json())
        assert data["counts"] == [7]
        assert data["derived"]["l2_hit_rate"] == 0.5
        rebuilt = SimReport.from_dict(data)
        assert rebuilt == report
        assert rebuilt.counts == (7,)  # tuple restored


class TestOpCounters:
    def test_iadd(self):
        a = OpCounters(tasks=1, matches=2)
        a += OpCounters(tasks=3, setop_iterations=5)
        assert (a.tasks, a.matches, a.setop_iterations) == (4, 2, 5)

    def test_diff_against_snapshot(self):
        c = OpCounters(tasks=2, matches=10)
        before = c.copy()
        c.tasks += 3
        c.matches += 1
        delta = c.diff(before)
        assert (delta.tasks, delta.matches) == (3, 1)
        assert delta.setop_iterations == 0
        # snapshot is independent of the live counters
        assert before.tasks == 2


@pytest.fixture(scope="module")
def graph():
    return load_dataset("As")


@pytest.fixture(scope="module")
def plan():
    return compile_pattern(triangle())


class TestNoDrift:
    """Tracing on must be bit-identical to tracing off."""

    def test_sim_identical_with_and_without_tracer(self, graph, plan):
        config = FlexMinerConfig(num_pes=4)
        plain = simulate(graph, plan, config)
        tracer = Tracer()
        metrics = MetricsRegistry()
        traced = simulate(graph, plan, config, tracer=tracer,
                          metrics=metrics)
        assert traced.as_dict() == plain.as_dict()
        assert traced.counts == plain.counts
        assert traced.cycles == plain.cycles
        assert len(tracer) > 0
        assert metrics.snapshot()["sim.cycles"] == plain.cycles

    def test_cmap_overflow_instants_identical_across_timing_kernels(
        self, graph
    ):
        # The batched c-map kernels compute occupancy/probe statistics
        # once per insert instead of per key; the rare-incident trace
        # instants (overflows) must still fire at the same cycle
        # timestamps with the same payloads as the legacy loops.
        plan = compile_pattern(four_cycle())
        configs = {
            kernels: FlexMinerConfig(
                num_pes=2, cmap_bytes=64, timing_kernels=kernels
            )
            for kernels in (False, True)
        }
        events = {}
        reports = {}
        for kernels, config in configs.items():
            tracer = Tracer()
            reports[kernels] = simulate(graph, plan, config, tracer=tracer)
            events[kernels] = [
                (e["ts"], e["args"])
                for e in tracer.events()
                if e["name"] == "cmap-overflow"
            ]
        assert events[True], "workload never overflowed the tiny c-map"
        assert events[True] == events[False]
        assert reports[True].as_dict() == reports[False].as_dict()

    def test_engine_identical_with_and_without_tracer(self, graph, plan):
        plain = PatternAwareEngine(graph, plan).run()
        tracer = Tracer()
        metrics = MetricsRegistry()
        traced = PatternAwareEngine(
            graph, plan, tracer=tracer, metrics=metrics
        ).run()
        assert traced.as_dict() == plain.as_dict()
        assert metrics.snapshot()["engine.matches"] == plain.counts[0]
        names = {e["name"] for e in tracer.events()}
        assert "mine" in names

    def test_parallel_identical_with_and_without_observability(
        self, graph, plan
    ):
        from repro.engine import ParallelMiner

        plain = PatternAwareEngine(graph, plan).run()
        tracer = Tracer()
        metrics = MetricsRegistry()
        observed = ParallelMiner(
            graph, plan, workers=2, tracer=tracer, metrics=metrics
        ).mine()
        bare = ParallelMiner(graph, plan, workers=2).mine()
        assert observed.as_dict() == plain.as_dict()
        assert observed.as_dict() == bare.as_dict()
        snap = metrics.snapshot()
        assert snap["engine.parallel.workers"] == 2
        assert snap["engine.matches"] == plain.counts[0]
        names = {e["name"] for e in tracer.events()}
        assert "mine-parallel" in names


class TestSimTrace:
    def test_trace_structure(self, graph, plan):
        tracer = Tracer()
        report = simulate(
            graph, plan, FlexMinerConfig(num_pes=4), tracer=tracer
        )
        trace = json.loads(tracer.to_json())
        assert validate_trace(trace) == []
        events = trace["traceEvents"]
        # one named trace thread per PE plus the scheduler rail
        thread_names = {
            (e["tid"], e["args"]["name"])
            for e in events if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert (0, "PE 0") in thread_names
        assert (4, "scheduler") in thread_names
        # every active PE contributed at least one task span
        task_tids = {
            e["tid"] for e in events
            if e["ph"] == "X" and e.get("cat") == "task"
        }
        active = {
            i for i, c in enumerate(report.per_pe_cycles) if c > 0
        }
        assert active
        assert task_tids >= active
        # cycle-domain events live in the simulator's virtual process
        assert all(
            e["pid"] == SIM_PID for e in events
            if e.get("cat") in ("task", "setop", "cmap", "mem")
        )
        # the makespan span covers the whole run on the scheduler rail
        runs = [e for e in events if e["name"] == "run"]
        assert len(runs) == 1
        assert runs[0]["dur"] == report.cycles


class TestHarnessTelemetry:
    def test_per_cell_files_and_summary(self, tmp_path):
        h = Harness(telemetry_dir=str(tmp_path))
        report = h.sim("TC", "As", num_pes=4, cmap_bytes=1024)
        h.sim("TC", "As", num_pes=4, cmap_bytes=1024)  # cache hit
        cell = tmp_path / "sim_TC_As_pes4_cmap1024.json"
        assert cell.exists()
        envelope = json.loads(cell.read_text())
        assert envelope["schema"] == "flexminer.run/1"
        assert envelope["kind"] == "sim"
        assert envelope["meta"]["app"] == "TC"
        assert envelope["data"]["cycles"] == report.cycles

        summary_path = h.write_summary()
        assert os.path.basename(summary_path) == "BENCH_summary.json"
        summary = json.loads(open(summary_path).read())
        assert summary["kind"] == "bench-summary"
        cells = summary["data"]["sim"]
        assert cells["TC_As_pes4_cmap1024"]["cycles"] == report.cycles
        metrics = summary["data"]["metrics"]
        assert metrics["bench.sim_runs"] == 1
        assert metrics["bench.sim_cache_hits"] == 1

    def test_telemetry_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_TELEMETRY", str(tmp_path))
        assert Harness().telemetry_dir == str(tmp_path)
        monkeypatch.delenv("REPRO_BENCH_TELEMETRY")
        assert Harness().telemetry_dir is None


class TestCli:
    def test_sim_trace_and_emit_json(self, tmp_path, capsys):
        """The acceptance path: a valid Chrome trace plus a JSON report,
        with simulated results bit-identical to an untraced run."""
        trace_path = str(tmp_path / "trace.json")
        rc = main([
            "sim", "triangle", "--dataset", "Mi",
            "--trace", trace_path, "--emit-json",
        ])
        assert rc == 0
        out = capsys.readouterr()
        assert trace_path in out.err
        report = json.loads(out.out)
        assert report["schema"] == "flexminer.run/1"
        assert report["kind"] == "sim"
        assert report["meta"]["dataset"] == "Mi"
        assert report["data"]["counts"] and report["data"]["cycles"] > 0

        with open(trace_path) as f:
            trace = json.load(f)
        assert validate_trace(trace) == []
        task_tids = {
            e["tid"] for e in trace["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "task"
        }
        active = {
            i for i, c in enumerate(report["data"]["per_pe_cycles"])
            if c > 0
        }
        assert active and task_tids >= active

        # identical simulated results without --trace
        rc = main(["sim", "triangle", "--dataset", "Mi", "--emit-json"])
        assert rc == 0
        untraced = json.loads(capsys.readouterr().out)
        assert untraced["data"] == report["data"]

    def test_mine_emit_json(self, capsys):
        rc = main(["mine", "triangle", "--dataset", "As", "--emit-json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["kind"] == "mine"
        assert report["data"]["total"] == report["data"]["counts"][0] > 0
        assert report["data"]["model_seconds"] > 0

    def test_stats_single_and_diff(self, tmp_path, capsys):
        from repro.obs import make_report, write_report

        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        write_report(a, make_report("sim", {"cycles": 100, "tasks": 8}))
        write_report(b, make_report("sim", {"cycles": 50, "tasks": 8}))

        assert main(["stats", a]) == 0
        single = capsys.readouterr().out
        assert "data.cycles" in single and "100" in single

        assert main(["stats", a, b]) == 0
        diff = capsys.readouterr().out
        assert "data.cycles" in diff and "(0.500x)" in diff
        assert "data.tasks" not in diff  # unchanged rows hidden

        assert main(["stats", a, b, "--all"]) == 0
        assert "data.tasks" in capsys.readouterr().out
