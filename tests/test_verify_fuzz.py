"""Tests for the seeded fuzzer and the shrinking loop."""

import numpy as np
import pytest

from repro.graph import CSRGraph, LabeledGraph
from repro.patterns import triangle
from repro.verify import (
    BACKENDS,
    GRAPH_FAMILIES,
    VerifyCase,
    case_to_dict,
    fuzz,
    random_case,
    random_graph,
    random_pattern,
    shrink_case,
)


class TestGenerators:
    @pytest.mark.parametrize("family", GRAPH_FAMILIES)
    def test_families_produce_valid_graphs(self, family):
        rng = np.random.default_rng(42)
        for _ in range(5):
            graph = random_graph(rng, family)
            assert isinstance(graph, CSRGraph)
            # from_edges validated the CSR; spot-check the shape claims.
            assert graph.num_vertices >= 0
            if family == "star" and graph.num_vertices:
                assert graph.degree(0) == graph.num_vertices - 1

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            random_graph(np.random.default_rng(0), "torus")

    def test_random_pattern_bounds(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            pattern = random_pattern(rng, max_vertices=4)
            assert 2 <= pattern.num_vertices <= 4
            assert pattern.is_connected()

    def test_random_pattern_labels(self):
        rng = np.random.default_rng(2)
        saw_labeled = saw_wildcard = False
        for _ in range(30):
            pattern = random_pattern(rng, num_labels=2)
            if pattern.is_labeled:
                saw_labeled = True
                if any(lab is None for lab in pattern.labels):
                    saw_wildcard = True
        assert saw_labeled and saw_wildcard

    def test_case_generation_deterministic(self):
        def draw(seed):
            rng = np.random.default_rng(seed)
            return [
                case_to_dict(random_case(rng, index=i)) for i in range(12)
            ]

        assert draw(9) == draw(9)
        assert draw(9) != draw(10)


class TestShrinking:
    def test_needs_a_failing_case(self):
        case = VerifyCase(
            graph=CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)]),
            pattern=triangle(),
        )
        with pytest.raises(ValueError):
            shrink_case(case, backends=("serial", "materialize"))

    def test_always_failing_backend_shrinks_to_nothing(self):
        def always_wrong(case, plan):
            counts, _ = BACKENDS["serial"](case, plan)
            return tuple(c + 7 for c in counts), None

        case = VerifyCase(
            graph=CSRGraph.from_edges(
                [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (3, 4)]
            ),
            pattern=triangle(),
            name="shrink-me",
        )
        shrunk = shrink_case(
            case,
            backends={
                "serial": BACKENDS["serial"],
                "buggy": always_wrong,
            },
        )
        # The failure reproduces on any graph, so greedy vertex deletion
        # bottoms out at the empty graph.
        assert shrunk.graph.num_vertices == 0
        assert shrunk.graph.num_edges == 0

    def test_shrink_preserves_labels(self):
        def always_wrong(case, plan):
            counts, _ = BACKENDS["serial"](case, plan)
            return tuple(c + 1 for c in counts), None

        topo = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        case = VerifyCase(
            graph=LabeledGraph(topo, np.array([0, 1, 0, 1])),
            pattern=triangle(),
        )
        shrunk = shrink_case(
            case,
            backends={
                "serial": BACKENDS["serial"],
                "buggy": always_wrong,
            },
        )
        assert isinstance(shrunk.graph, LabeledGraph)
        assert len(shrunk.graph.labels) == shrunk.graph.num_vertices

    def test_shrink_clears_stale_expectation(self):
        def always_wrong(case, plan):
            counts, _ = BACKENDS["serial"](case, plan)
            return tuple(c + 1 for c in counts), None

        case = VerifyCase(
            graph=CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)]),
            pattern=triangle(),
            expected=(1,),
        )
        shrunk = shrink_case(
            case,
            backends={
                "serial": BACKENDS["serial"],
                "buggy": always_wrong,
            },
        )
        assert shrunk.expected is None


class TestFuzzLoop:
    def test_clean_run(self):
        report = fuzz(
            seed=1,
            cases=10,
            backends=("serial", "materialize", "kernel-probe"),
        )
        assert report.ok
        assert report.cases_run == 10
        assert report.backends == ("serial", "materialize", "kernel-probe")
        assert report.as_dict()["ok"] is True

    def test_deterministic_verdicts(self):
        kwargs = dict(seed=4, cases=8, backends=("serial", "no-memo"))
        assert fuzz(**kwargs).as_dict() == fuzz(**kwargs).as_dict()
