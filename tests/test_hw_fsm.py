"""Tests for the iterative extender FSM (paper Fig. 10).

The FSM must be exactly equivalent to the recursive reference engine —
that equivalence is what lets the hardware implement DFS without
recursion.
"""

import pytest

from repro.compiler import compile_pattern
from repro.engine import mine
from repro.graph import CSRGraph, complete_graph, erdos_renyi
from repro.hw import ExtenderFSM, PEState
from repro.patterns import (
    diamond,
    four_cycle,
    k_clique,
    tailed_triangle,
    triangle,
)

GRAPH = erdos_renyi(32, 0.3, seed=55)


class TestEquivalenceWithRecursion:
    @pytest.mark.parametrize(
        "pattern,kwargs",
        [
            (triangle(), {}),
            (triangle(), {"use_orientation": False}),
            (k_clique(4), {}),
            (four_cycle(), {}),
            (diamond(), {"use_orientation": False}),
            (tailed_triangle(), {}),
            (four_cycle(), {"induced": True}),
        ],
        ids=lambda x: getattr(x, "name", str(x)),
    )
    def test_counts_match(self, pattern, kwargs):
        plan = compile_pattern(pattern, **kwargs)
        fsm = ExtenderFSM(GRAPH, plan)
        assert fsm.run() == mine(GRAPH, plan).counts[0]

    def test_per_task_counts_match(self):
        plan = compile_pattern(four_cycle())
        fsm = ExtenderFSM(GRAPH, plan)
        from repro.engine import PatternAwareEngine

        for v in range(5):
            engine = PatternAwareEngine(GRAPH, plan)
            engine.run_task(v)
            before = fsm.matches
            fsm.run_task(v)
            assert fsm.matches - before == engine._counts[0]


class TestFsmMechanics:
    def test_returns_to_idle(self):
        fsm = ExtenderFSM(GRAPH, compile_pattern(triangle()))
        fsm.run_task(0)
        assert fsm.state is PEState.IDLE

    def test_isolated_vertex_is_trivial_task(self):
        g = CSRGraph.from_edges([(1, 2)], num_vertices=4)
        fsm = ExtenderFSM(g, compile_pattern(triangle()))
        fsm.run_task(0)
        assert fsm.matches == 0
        assert fsm.state is PEState.IDLE

    def test_complete_graph(self):
        from math import comb

        g = complete_graph(8)
        fsm = ExtenderFSM(g, compile_pattern(k_clique(4)))
        assert fsm.run() == comb(8, 4)

    def test_matches_accumulate_across_tasks(self):
        fsm = ExtenderFSM(GRAPH, compile_pattern(triangle()))
        fsm.run()
        total = fsm.matches
        fsm.run()
        assert fsm.matches == 2 * total
