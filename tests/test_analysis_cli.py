"""CLI tests for ``flexminer check-plan`` and ``flexminer lint``.

Pins the exit-code contract both commands share:

* 0 — analysis ran, no error-severity findings (warnings are fine);
* 1 — analysis ran and found errors;
* 2 — usage error (unknown pattern, missing path, no targets).
"""

import json
import os

from repro.cli import main
from repro.compiler import compile_pattern, emit_ir
from repro.patterns import four_cycle

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


class TestCheckPlan:
    def test_clean_patterns_exit_zero(self, capsys):
        assert main(["check-plan", "triangle", "4-cycle"]) == 0
        out = capsys.readouterr().out
        assert "plan:triangle" in out
        assert "clean" in out
        assert "2 plan(s), 0 error(s)" in out

    def test_ir_file_target(self, tmp_path, capsys):
        ir = tmp_path / "plan.ir"
        ir.write_text(emit_ir(compile_pattern(four_cycle())))
        assert main(["check-plan", str(ir)]) == 0
        assert "plan:4-cycle" in capsys.readouterr().out

    def test_broken_ir_exits_one(self, tmp_path, capsys):
        # Hand-edit the IR the way the paper's Listing 1 tempts you to:
        # drop the symmetry bounds.  The verifier must reject it.
        text = emit_ir(compile_pattern(four_cycle()))
        text = text.replace("pruneBy(v0, {})", "pruneBy(inf, {})")
        text = text.replace("pruneBy(v1, {})", "pruneBy(inf, {})")
        text = text.replace("pruneBy(v0, {v1})", "pruneBy(inf, {v1})")
        ir = tmp_path / "broken.ir"
        ir.write_text(text)
        assert main(["check-plan", str(ir)]) == 1
        out = capsys.readouterr().out
        assert "FM110" in out

    def test_unknown_pattern_exits_two(self, capsys):
        assert main(["check-plan", "octagon-of-doom"]) == 2
        assert "neither a file nor" in capsys.readouterr().err

    def test_no_targets_exits_two(self, capsys):
        assert main(["check-plan"]) == 2
        assert "give pattern names" in capsys.readouterr().err

    def test_missing_corpus_exits_two(self, capsys):
        assert main(["check-plan", "--corpus", "no/such/dir"]) == 2
        assert "check-plan:" in capsys.readouterr().err

    def test_corpus_is_statically_clean(self, capsys):
        assert main(["check-plan", "--corpus", CORPUS_DIR]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_json_envelope(self, capsys):
        assert main(["check-plan", "triangle", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "analysis"
        body = payload["data"]
        assert body["subject"] == "check-plan"
        assert body["ok"] is True
        assert body["errors"] == 0
        assert body["data"]["subjects"] == ["plan:triangle"]

    def test_json_findings_carry_codes(self, tmp_path, capsys):
        text = emit_ir(compile_pattern(four_cycle()))
        text = text.replace("pruneBy(v0, {})", "pruneBy(inf, {})")
        text = text.replace("pruneBy(v1, {})", "pruneBy(inf, {})")
        text = text.replace("pruneBy(v0, {v1})", "pruneBy(inf, {v1})")
        ir = tmp_path / "broken.ir"
        ir.write_text(text)
        assert main(["check-plan", str(ir), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        findings = payload["data"]["findings"]
        assert [f["code"] for f in findings] == ["FM110"]
        assert findings[0]["severity"] == "error"
        assert findings[0]["hint"]


class TestLint:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        mod = tmp_path / "clean.py"
        mod.write_text("x = 1\n")
        assert main(["lint", str(mod)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        mod = tmp_path / "hw" / "bad.py"
        mod.parent.mkdir()
        mod.write_text("import time\n\nt = time.time()\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FM205" in out
        assert "bad.py:3" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "no/such/path.py"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_default_paths_lint_the_package(self, capsys):
        # From a checkout this walks src/repro; the tree ships clean.
        assert main(["lint"]) == 0

    def test_json_envelope(self, tmp_path, capsys):
        mod = tmp_path / "hw" / "bad.py"
        mod.parent.mkdir()
        mod.write_text("import random\n\nr = random.random()\n")
        assert main(["lint", str(tmp_path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "analysis"
        body = payload["data"]
        assert body["ok"] is False
        assert [f["code"] for f in body["findings"]] == ["FM205"]
        assert body["data"]["files"] == 1
