"""Tests for counted set operations, graph sampling, and SimReport."""

import numpy as np
import pytest

from repro.engine import OpCounters
from repro.engine.setops import (
    bound_below,
    difference,
    intersect,
    merge_iterations,
    remove_values,
)
from repro.graph import erdos_renyi, induced_subgraph, random_vertex_sample
from repro.hw.report import SimReport


class TestSetOps:
    def test_intersect(self):
        a = np.array([1, 3, 5, 7])
        b = np.array([3, 4, 5, 6])
        assert intersect(a, b).tolist() == [3, 5]

    def test_difference(self):
        a = np.array([1, 3, 5, 7])
        b = np.array([3, 4, 5])
        assert difference(a, b).tolist() == [1, 7]

    def test_counters_updated(self):
        counters = OpCounters()
        intersect(np.array([1, 2]), np.array([2, 3]), counters)
        difference(np.array([1, 2]), np.array([2]), counters)
        assert counters.set_intersections == 1
        assert counters.set_differences == 1
        assert counters.setop_iterations == 4 + 3

    def test_counters_optional(self):
        out = intersect(np.array([1]), np.array([1]), None)
        assert out.tolist() == [1]

    def test_merge_iterations_model(self):
        assert merge_iterations(5, 7) == 12

    def test_bound_below(self):
        values = np.array([1, 4, 6, 9])
        assert bound_below(values, 6).tolist() == [1, 4]
        assert bound_below(values, 100).tolist() == [1, 4, 6, 9]
        assert bound_below(values, 0).tolist() == []

    def test_remove_values(self):
        values = np.array([1, 4, 6, 9])
        assert remove_values(values, [4, 9, 50]).tolist() == [1, 6]
        assert remove_values(values, []).tolist() == [1, 4, 6, 9]
        assert remove_values(np.array([], dtype=np.int64), [1]).tolist() == []


class TestSampling:
    def test_induced_subgraph_preserves_edges(self):
        g = erdos_renyi(30, 0.3, seed=2)
        sub = induced_subgraph(g, [0, 1, 2, 3, 4])
        for i, u in enumerate([0, 1, 2, 3, 4]):
            for j, v in enumerate([0, 1, 2, 3, 4]):
                if i < j:
                    assert sub.has_edge(i, j) == g.has_edge(u, v)

    def test_duplicate_vertices_collapsed(self):
        g = erdos_renyi(10, 0.5, seed=3)
        sub = induced_subgraph(g, [1, 1, 2])
        assert sub.num_vertices == 2

    def test_random_sample_size(self):
        g = erdos_renyi(50, 0.2, seed=4)
        sub = random_vertex_sample(g, 20, seed=1)
        assert sub.num_vertices == 20

    def test_random_sample_deterministic(self):
        g = erdos_renyi(50, 0.2, seed=4)
        assert random_vertex_sample(g, 20, seed=1) == random_vertex_sample(
            g, 20, seed=1
        )

    def test_oversample_clamped(self):
        g = erdos_renyi(10, 0.2, seed=4)
        assert random_vertex_sample(g, 99, seed=0).num_vertices == 10


def make_report(**overrides):
    defaults = dict(
        counts=(5,),
        cycles=1000.0,
        seconds=1e-6,
        num_pes=4,
        busy_cycles=600.0,
        stall_cycles=400.0,
        pruner_cycles=100.0,
        setop_cycles=300.0,
        cmap_cycles=50.0,
        noc_requests=10,
        dram_accesses=3,
        l2_hits=7,
        l2_misses=3,
        private_hits=90,
        private_misses=10,
        cmap_reads=80,
        cmap_writes=20,
        cmap_overflows=0,
        cmap_fallbacks=0,
        frontier_reads=5,
        tasks=12,
        per_pe_cycles=[900.0, 1000.0, 950.0, 980.0],
    )
    defaults.update(overrides)
    return SimReport(**defaults)


class TestSimReport:
    def test_derived_metrics(self):
        report = make_report()
        assert report.total == 5
        assert report.l2_miss_rate == pytest.approx(0.3)
        assert report.cmap_read_ratio == pytest.approx(0.8)
        assert report.memory_bound_fraction == pytest.approx(0.4)
        assert report.load_imbalance == pytest.approx(1000.0 / 957.5)

    def test_speedup_over(self):
        report = make_report()
        assert report.speedup_over(2e-6) == pytest.approx(2.0)

    def test_zero_division_guards(self):
        report = make_report(
            l2_hits=0,
            l2_misses=0,
            cmap_reads=0,
            cmap_writes=0,
            busy_cycles=0.0,
            stall_cycles=0.0,
            per_pe_cycles=[],
        )
        assert report.l2_miss_rate == 0.0
        assert report.cmap_read_ratio == 0.0
        assert report.memory_bound_fraction == 0.0
        assert report.load_imbalance == 1.0

    def test_summary_mentions_key_fields(self):
        text = make_report().summary()
        for token in ("matches", "NoC", "DRAM", "c-map"):
            assert token in text
