"""Tests for the synthetic graph generators."""

import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    power_law_cluster,
    power_law_exponent,
    rmat,
    star_graph,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: erdos_renyi(60, 0.1, seed=7),
            lambda: rmat(8, 6.0, seed=7),
            lambda: power_law_cluster(100, 3, 0.5, seed=7),
        ],
    )
    def test_same_seed_same_graph(self, make):
        assert make() == make()

    def test_different_seed_different_graph(self):
        assert rmat(8, 6.0, seed=1) != rmat(8, 6.0, seed=2)


class TestErdosRenyi:
    def test_edge_probability_respected(self):
        g = erdos_renyi(200, 0.05, seed=3)
        expected = 0.05 * 200 * 199 / 2
        assert 0.7 * expected < g.num_edges < 1.3 * expected

    def test_p_zero_and_one(self):
        assert erdos_renyi(10, 0.0, seed=1).num_edges == 0
        assert erdos_renyi(10, 1.0, seed=1).num_edges == 45

    def test_invalid_probability(self):
        with pytest.raises(GraphFormatError):
            erdos_renyi(10, 1.5)


class TestRmat:
    def test_size(self):
        g = rmat(9, 8.0, seed=5)
        assert g.num_vertices == 512
        # Duplicates get merged so edges land below the nominal count.
        assert 0.4 * 512 * 4 < g.num_edges <= 512 * 4

    def test_heavy_tail(self):
        g = rmat(11, 8.0, seed=5)
        # Power-law-ish: max degree far above average.
        assert g.max_degree() > 8 * g.avg_degree()
        alpha = power_law_exponent(g)
        assert 1.2 < alpha < 4.0

    def test_invalid_probabilities(self):
        with pytest.raises(GraphFormatError):
            rmat(5, 4.0, a=0.9, b=0.9, c=0.9)


class TestPowerLawCluster:
    def test_high_clustering(self):
        import networkx as nx

        g = power_law_cluster(300, 4, 0.7, seed=9)
        assert nx.average_clustering(g.to_networkx()) > 0.1

    def test_attach_edges_bounds(self):
        with pytest.raises(GraphFormatError):
            power_law_cluster(10, 0, 0.5)
        with pytest.raises(GraphFormatError):
            power_law_cluster(10, 10, 0.5)

    def test_connected(self):
        import networkx as nx

        g = power_law_cluster(150, 3, 0.4, seed=2)
        assert nx.is_connected(g.to_networkx())


class TestStructuredGraphs:
    def test_complete_graph(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in g.vertices())

    def test_star(self):
        g = star_graph(7)
        assert g.num_vertices == 8
        assert g.degree(0) == 7

    def test_cycle_and_path(self):
        assert cycle_graph(5).num_edges == 5
        assert path_graph(5).num_edges == 4
        with pytest.raises(GraphFormatError):
            cycle_graph(2)

    def test_grid_is_triangle_free(self):
        import networkx as nx

        g = grid_graph(4, 5)
        assert g.num_vertices == 20
        assert sum(nx.triangles(g.to_networkx()).values()) == 0

    def test_barbell(self):
        g = barbell_graph(4, 2)
        assert g.num_vertices == 10
        # Two K4s plus the 3-edge connecting chain.
        assert g.num_edges == 2 * 6 + 3
