"""Tests for partitioned mining (paper §VII-D future work)."""

import pytest

from repro.errors import ReproError
from repro.graph import erdos_renyi, induced_subgraph, rmat
from repro.patterns import diamond, four_cycle, k_clique, triangle
from repro.compiler import compile_motifs, compile_pattern
from repro.engine import (
    PartitionedMiner,
    halo_ball,
    mine,
    mine_partitioned,
    partition_vertices,
)

GRAPH = rmat(9, 6.0, seed=19)


class TestPartitioning:
    def test_block_partition_is_disjoint_cover(self):
        parts = partition_vertices(100, 7, method="block")
        ids = sorted(int(v) for part in parts for v in part)
        assert ids == list(range(100))

    def test_stride_partition_balances(self):
        parts = partition_vertices(100, 4, method="stride")
        assert all(len(p) == 25 for p in parts)

    def test_bad_arguments(self):
        with pytest.raises(ReproError):
            partition_vertices(10, 0)
        with pytest.raises(ReproError):
            partition_vertices(10, 2, method="magic")

    def test_more_parts_than_vertices(self):
        parts = partition_vertices(3, 8)
        assert sum(len(p) for p in parts) == 3


class TestHalo:
    def test_zero_hops_is_roots(self):
        ball = halo_ball(GRAPH, [5, 9], 0)
        assert ball.tolist() == [5, 9]

    def test_one_hop_includes_neighbors(self):
        ball = set(halo_ball(GRAPH, [0], 1).tolist())
        assert ball == {0} | set(map(int, GRAPH.neighbors(0)))

    def test_ball_grows_with_hops(self):
        sizes = [len(halo_ball(GRAPH, [0], h)) for h in range(4)]
        assert sizes == sorted(sizes)

    def test_directed_induced_subgraph(self):
        from repro.graph import orient_by_degree

        dag = orient_by_degree(GRAPH)
        sub = induced_subgraph(dag, [0, 1, 2, 3, 4, 5])
        assert sub.directed


class TestPartitionedCounts:
    @pytest.mark.parametrize("num_parts", [1, 2, 5, 16])
    def test_triangles_partition_invariant(self, num_parts):
        plan = compile_pattern(triangle())
        expected = mine(GRAPH, plan).counts[0]
        assert (
            mine_partitioned(GRAPH, plan, num_parts).counts[0] == expected
        )

    @pytest.mark.parametrize(
        "pattern,kwargs",
        [
            (k_clique(4), {}),
            (four_cycle(), {}),
            (diamond(), {"use_orientation": False}),
            (four_cycle(), {"induced": True}),
        ],
        ids=lambda x: getattr(x, "name", str(x)),
    )
    def test_pattern_counts_match(self, pattern, kwargs):
        plan = compile_pattern(pattern, **kwargs)
        expected = mine(GRAPH, plan).counts[0]
        assert mine_partitioned(GRAPH, plan, 4).counts[0] == expected

    def test_stride_method_agrees(self):
        plan = compile_pattern(k_clique(4))
        expected = mine(GRAPH, plan).counts[0]
        assert (
            mine_partitioned(GRAPH, plan, 4, method="stride").counts[0]
            == expected
        )

    def test_multiplan_rejected(self):
        with pytest.raises(ReproError):
            PartitionedMiner(GRAPH, compile_motifs(3), 4)


class TestWorkingSet:
    def test_halo_smaller_than_graph(self):
        # The point of partitioning: each partition's working set is a
        # fraction of the whole graph.
        plan = compile_pattern(triangle())
        miner = PartitionedMiner(GRAPH, plan, 16)
        miner.run()
        assert miner.max_working_set_edges() < GRAPH.num_edges
        assert len(miner.stats) == 16

    def test_stats_account_all_matches(self):
        plan = compile_pattern(triangle())
        miner = PartitionedMiner(GRAPH, plan, 8)
        result = miner.run()
        assert sum(s.matches for s in miner.stats) == result.counts[0]

    def test_orientation_shrinks_halo(self):
        # DAG halos only expand forward, so they are smaller than
        # undirected ones for the same hop count.
        oriented_plan = compile_pattern(triangle())
        symmetric_plan = compile_pattern(triangle(), use_orientation=False)
        a = PartitionedMiner(GRAPH, oriented_plan, 8)
        b = PartitionedMiner(GRAPH, symmetric_plan, 8)
        a.run()
        b.run()
        assert a.max_working_set_edges() <= b.max_working_set_edges()

    def test_empty_partition_handled(self):
        plan = compile_pattern(triangle())
        tiny = erdos_renyi(5, 0.5, seed=1)
        miner = PartitionedMiner(tiny, plan, 10)
        result = miner.run()
        assert result.counts[0] == mine(tiny, plan).counts[0]
