"""Tests for graph IO, orientation, datasets and statistics."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    CSRGraph,
    DATASET_NAMES,
    degree_histogram,
    graph_stats,
    load_dataset,
    load_edge_list,
    load_graph,
    load_mtx,
    orient_by_degree,
    orientation_rank,
    rmat,
    save_edge_list,
    suite_stats,
)


class TestIO:
    def test_edge_list_round_trip(self, tmp_path):
        g = rmat(7, 4.0, seed=4)
        path = tmp_path / "g.el"
        save_edge_list(g, path)
        back = load_edge_list(path)
        assert back.num_edges == g.num_edges
        assert np.array_equal(back.indices, g.indices)

    def test_edge_list_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n% other comment\n1 2\n")
        g = load_edge_list(path)
        assert g.num_edges == 2

    def test_edge_list_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_edge_list_non_integer(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_mtx(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 2\n1 2\n2 3\n"
        )
        g = load_mtx(path)
        assert g.num_vertices == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_load_graph_dispatch(self, tmp_path):
        el = tmp_path / "g.el"
        el.write_text("0 1\n")
        assert load_graph(el).num_edges == 1


class TestOrientation:
    def test_dag_has_each_edge_once(self):
        g = rmat(8, 6.0, seed=6)
        dag = g if False else orient_by_degree(g)
        assert dag.directed
        assert dag.num_directed_edges == g.num_edges

    def test_acyclic_by_rank(self):
        g = rmat(8, 6.0, seed=6)
        rank = orientation_rank(g)
        dag = orient_by_degree(g)
        for u in dag.vertices():
            for v in dag.neighbors(u):
                assert rank[u] < rank[int(v)]

    def test_rank_orders_by_degree_then_id(self):
        g = CSRGraph.from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])
        rank = orientation_rank(g)
        # degrees: v0=3, v1=2, v2=2, v3=1 -> order v3, v1, v2, v0
        assert rank[3] < rank[1] < rank[2] < rank[0]

    def test_triangle_count_preserved_as_ordered_paths(self):
        # Each triangle appears exactly once as u->v, u->w, v->w in the DAG.
        import networkx as nx

        g = rmat(8, 8.0, seed=12)
        dag = orient_by_degree(g)
        count = 0
        for u in dag.vertices():
            nbrs = dag.neighbors(u)
            for v in nbrs:
                vn = dag.neighbors(int(v))
                count += len(np.intersect1d(nbrs, vn))
        expected = sum(nx.triangles(g.to_networkx()).values()) // 3
        assert count == expected


class TestStatsAndDatasets:
    def test_degree_histogram_sums_to_n(self):
        g = rmat(8, 6.0, seed=8)
        hist = degree_histogram(g)
        assert hist.sum() == g.num_vertices

    def test_graph_stats_row(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)], name="tiny")
        row = graph_stats(g).as_row()
        assert row[0] == "tiny" and row[1] == 3 and row[2] == 2

    def test_all_datasets_load_and_cache(self):
        for name in DATASET_NAMES:
            g1 = load_dataset(name)
            g2 = load_dataset(name)
            assert g1 is g2  # cached
            assert g1.num_edges > 0

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_suite_shape_matches_paper(self):
        stats = {s.name: s for s in suite_stats()}
        # Mi is the densest (paper §VII-C); As is the smallest.
        densest = max(stats.values(), key=lambda s: s.avg_degree / 1.0)
        assert densest.name in ("Mi", "Or")
        assert stats["Mi"].avg_degree == max(
            stats[n].avg_degree for n in ("As", "Mi", "Pa", "Yo", "Lj")
        )
        smallest = min(stats.values(), key=lambda s: s.num_vertices)
        assert smallest.name == "As"
        # Pa and Yo are larger and sparser than Mi.
        assert stats["Pa"].num_vertices > stats["Mi"].num_vertices
        assert stats["Pa"].avg_degree < stats["Mi"].avg_degree
