"""Hypothesis property tests on the hardware models.

The hardware c-map is fuzzed against a dict reference with random bulk
insert/remove sequences; the IR parser is fuzzed against the emitter
across random patterns, labelings and options.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler import compile_pattern, emit_ir, parse_ir
from repro.hw import HardwareCMap, SetAssocCache
from repro.patterns import enumerate_motifs

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def insert_sequences(draw):
    """A stack-shaped sequence of bulk inserts (id lists per level)."""
    num_levels = draw(st.integers(min_value=1, max_value=6))
    levels = []
    for _ in range(num_levels):
        ids = draw(
            st.lists(
                st.integers(min_value=0, max_value=300),
                min_size=0,
                max_size=20,
                unique=True,
            )
        )
        levels.append(ids)
    return levels


class TestCMapAgainstReference:
    @SETTINGS
    @given(levels=insert_sequences(), exact=st.booleans())
    def test_matches_dict_reference(self, levels, exact):
        cmap = HardwareCMap(
            1024, exact=exact, occupancy_threshold=1.0
        )
        reference = {}
        accepted_depths = []
        for depth, ids in enumerate(levels):
            outcome = cmap.try_insert(ids, depth)
            if outcome.accepted:
                accepted_depths.append((depth, ids))
                for key in ids:
                    reference[key] = reference.get(key, 0) | (1 << depth)
        for key in range(0, 300, 7):
            assert cmap.query(key) == reference.get(key, 0)
        # Stack unwind restores emptiness.
        for depth, ids in reversed(accepted_depths):
            cmap.remove_level(depth)
        assert cmap.occupancy == 0

    @SETTINGS
    @given(levels=insert_sequences())
    def test_occupancy_equals_distinct_keys(self, levels):
        cmap = HardwareCMap(2048, occupancy_threshold=1.0)
        distinct = set()
        for depth, ids in enumerate(levels):
            if cmap.try_insert(ids, depth).accepted:
                distinct.update(ids)
        assert cmap.occupancy == len(distinct)

    @SETTINGS
    @given(
        ids=st.lists(
            st.integers(min_value=0, max_value=10 ** 6),
            min_size=1,
            max_size=30,
            unique=True,
        )
    )
    def test_rejected_insert_leaves_no_trace(self, ids):
        cmap = HardwareCMap(8, occupancy_threshold=0.5)
        before = cmap.occupancy
        outcome = cmap.try_insert(ids, 0)
        if not outcome.accepted:
            assert cmap.occupancy == before
            for key in ids[:5]:
                assert cmap.query(key) == 0


class TestCacheProperties:
    @SETTINGS
    @given(
        lines=st.lists(
            st.integers(min_value=0, max_value=500),
            min_size=1,
            max_size=200,
        )
    )
    def test_stats_conserved(self, lines):
        cache = SetAssocCache(1024, 2, 64)
        for line in lines:
            cache.access_line(line)
        stats = cache.stats
        assert stats.hits + stats.misses == len(lines)
        assert 0.0 <= stats.miss_rate <= 1.0
        # Resident lines never exceed capacity.
        resident = sum(len(ways) for ways in cache._sets)
        assert resident <= cache.num_sets * cache.assoc

    @SETTINGS
    @given(
        line=st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_immediate_rehit(self, line):
        cache = SetAssocCache(2048, 4, 64)
        cache.access_line(line)
        assert cache.access_line(line)


class TestIrFuzz:
    @SETTINGS
    @given(
        motif_index=st.integers(min_value=0, max_value=5),
        induced=st.booleans(),
        labels=st.one_of(
            st.none(),
            st.lists(
                st.one_of(st.none(), st.integers(0, 3)),
                min_size=4,
                max_size=4,
            ),
        ),
    )
    def test_round_trip_random_patterns(self, motif_index, induced, labels):
        pattern = enumerate_motifs(4)[motif_index]
        if labels is not None:
            pattern = pattern.with_labels(labels)
        plan = compile_pattern(
            pattern, induced=induced, use_orientation=False
        )
        assert parse_ir(emit_ir(plan)) == plan

    @SETTINGS
    @given(data=st.text(max_size=200))
    def test_parser_never_crashes_unhandled(self, data):
        from repro.errors import IRSyntaxError, CompileError

        try:
            parse_ir(data)
        except (IRSyntaxError, CompileError):
            pass  # rejection is the expected path for garbage