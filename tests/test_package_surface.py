"""Package-surface and integration tests.

Checks the things a downstream user hits first: the exception hierarchy,
the public ``__all__`` exports actually resolving, version metadata, and
the examples executing end to end.
"""

import os
import subprocess
import sys

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        for name in (
            "GraphFormatError",
            "PatternError",
            "CompileError",
            "IRSyntaxError",
            "SimulationError",
            "ConfigError",
            "ServeError",
            "ServiceOverloaded",
            "GraphNotRegistered",
            "ServiceClosed",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_ir_error_is_compile_error(self):
        assert issubclass(errors.IRSyntaxError, errors.CompileError)

    def test_single_catch_at_api_boundary(self):
        from repro.patterns import from_name

        with pytest.raises(errors.ReproError):
            from_name("not-a-pattern")


class TestPublicSurface:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graph",
            "repro.patterns",
            "repro.compiler",
            "repro.engine",
            "repro.hw",
            "repro.apps",
            "repro.bench",
            "repro.obs",
            "repro.serve",
        ],
    )
    def test_all_exports_resolve(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_every_public_symbol_documented(self):
        import importlib

        for module_name in ("repro.compiler", "repro.hw", "repro.engine"):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                obj = getattr(module, name)
                if callable(obj) or isinstance(obj, type):
                    assert obj.__doc__, f"{module_name}.{name} undocumented"


@pytest.mark.parametrize(
    "example",
    ["quickstart.py", "social_cliques.py"],
)
def test_example_runs(example):
    """The quick examples must execute cleanly as scripts."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, "examples", example)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
