"""Tests for labeled graph pattern mining.

The paper's motivating application mines *labeled* protein networks;
FlexMiner's interface inherits label support from the software GPM
systems it matches.  A label constraint is one more pruner check, so
every execution path must honor it identically.
"""

import numpy as np
import pytest

from repro.errors import CompileError, GraphFormatError, PatternError
from repro.graph import (
    CSRGraph,
    LabeledGraph,
    assign_degree_labels,
    assign_random_labels,
    erdos_renyi,
)
from repro.patterns import (
    Pattern,
    brute_force_count,
    find_isomorphism,
    triangle,
    wedge,
)
from repro.compiler import compile_multi, compile_pattern, emit_ir, parse_ir
from repro.engine import (
    CMapSoftwareEngine,
    ObliviousEngine,
    PatternAwareEngine,
    mine,
)
from repro.hw import FlexMinerConfig, simulate

BASE = erdos_renyi(26, 0.35, seed=101)
GRAPH = assign_random_labels(BASE, 3, seed=7)


def labeled_triangle(a, b, c):
    return Pattern(3, [(0, 1), (0, 2), (1, 2)], labels=[a, b, c],
                   name="labeled-triangle")


class TestLabeledGraph:
    def test_label_array_validated(self):
        with pytest.raises(GraphFormatError):
            LabeledGraph(BASE, np.zeros(5))
        with pytest.raises(GraphFormatError):
            LabeledGraph(BASE, -np.ones(BASE.num_vertices))

    def test_delegates_topology(self):
        assert GRAPH.num_vertices == BASE.num_vertices
        assert GRAPH.has_edge(*next(iter(BASE.edges())))

    def test_vertices_with_label_partition(self):
        total = sum(
            len(GRAPH.vertices_with_label(lab))
            for lab in range(GRAPH.num_labels)
        )
        assert total == GRAPH.num_vertices

    def test_oriented_keeps_labels(self):
        dag = GRAPH.oriented()
        assert np.array_equal(dag.labels, GRAPH.labels)
        assert dag.directed

    def test_degree_labels(self):
        lg = assign_degree_labels(BASE, thresholds=[3])
        hubs = lg.vertices_with_label(1)
        assert all(BASE.degree(int(v)) >= 3 for v in hubs)


class TestLabeledPattern:
    def test_label_validation(self):
        with pytest.raises(PatternError):
            Pattern(2, [(0, 1)], labels=[0])
        with pytest.raises(PatternError):
            Pattern(2, [(0, 1)], labels=[0, -1])

    def test_is_labeled(self):
        assert labeled_triangle(0, 1, 2).is_labeled
        assert not triangle().is_labeled
        assert Pattern(2, [(0, 1)], labels=[None, None]).is_labeled is False

    def test_automorphisms_respect_labels(self):
        assert len(labeled_triangle(0, 0, 0).automorphisms()) == 6
        assert len(labeled_triangle(0, 0, 1).automorphisms()) == 2
        assert len(labeled_triangle(0, 1, 2).automorphisms()) == 1

    def test_canonical_form_distinguishes_labelings(self):
        a = labeled_triangle(0, 0, 1)
        b = labeled_triangle(0, 1, 1)
        assert a.canonical_form() != b.canonical_form()
        # ... but is invariant under relabelling of vertices.
        assert a.canonical_form() == a.relabel([2, 0, 1]).canonical_form()

    def test_find_isomorphism_checks_labels(self):
        concrete = labeled_triangle(0, 0, 1)
        assert find_isomorphism(concrete, labeled_triangle(1, 0, 0))
        assert not find_isomorphism(concrete, labeled_triangle(1, 1, 0))

    def test_wildcards_match_anything(self):
        wild = Pattern(3, [(0, 1), (0, 2), (1, 2)], labels=[None, 0, 1])
        assert find_isomorphism(wild, labeled_triangle(2, 0, 1))

    def test_equality_includes_labels(self):
        assert labeled_triangle(0, 0, 1) != labeled_triangle(0, 1, 0)
        assert labeled_triangle(0, 0, 1) == labeled_triangle(0, 0, 1)

    def test_with_labels(self):
        assert triangle().with_labels([0, 0, 1]) == labeled_triangle(0, 0, 1)


class TestLabeledCompile:
    def test_steps_carry_labels(self):
        plan = compile_pattern(labeled_triangle(0, 1, 2))
        depth_labels = [plan.root_label] + [s.label for s in plan.steps]
        assert sorted(depth_labels) == [0, 1, 2]

    def test_mixed_label_clique_not_oriented(self):
        plan = compile_pattern(labeled_triangle(0, 0, 1))
        assert not plan.oriented
        with pytest.raises(CompileError):
            compile_pattern(labeled_triangle(0, 0, 1), use_orientation=True)

    def test_uniform_label_clique_oriented(self):
        plan = compile_pattern(labeled_triangle(1, 1, 1))
        assert plan.oriented

    def test_symmetry_matches_label_group(self):
        # Only the two like-labeled vertices are interchangeable.
        plan = compile_pattern(labeled_triangle(0, 0, 1))
        assert len(plan.symmetry_conditions) == 1

    def test_multi_pattern_rejects_labels(self):
        with pytest.raises(CompileError):
            compile_multi([labeled_triangle(0, 0, 0), wedge()])

    def test_ir_round_trip(self):
        plan = compile_pattern(labeled_triangle(0, 0, 1))
        text = emit_ir(plan)
        assert "labels=" in text
        assert parse_ir(text) == plan

    def test_wildcard_ir_round_trip(self):
        p = Pattern(3, [(0, 1), (1, 2)], labels=[0, None, 1])
        plan = compile_pattern(p)
        assert parse_ir(emit_ir(plan)) == plan


class TestLabeledMining:
    @pytest.mark.parametrize(
        "labels",
        [(0, 0, 0), (0, 0, 1), (0, 1, 2), (None, 0, 1)],
    )
    def test_all_paths_agree_with_brute_force(self, labels):
        pattern = labeled_triangle(*labels)
        expected = brute_force_count(GRAPH, pattern, induced=False)
        plan = compile_pattern(pattern)
        assert mine(GRAPH, plan).counts[0] == expected
        assert CMapSoftwareEngine(GRAPH, plan).run().counts[0] == expected
        assert (
            ObliviousEngine(GRAPH, [pattern]).run().counts[0] == expected
        )
        report = simulate(GRAPH, plan, FlexMinerConfig(num_pes=2))
        assert report.counts[0] == expected

    def test_label_partition_identity(self):
        # Triangles partition by label multiset: sum over all labeled
        # variants equals the unlabeled count.
        unlabeled = mine(GRAPH, compile_pattern(triangle())).counts[0]
        total = 0
        for a in range(3):
            for b in range(a, 3):
                for c in range(b, 3):
                    pattern = labeled_triangle(a, b, c)
                    total += mine(GRAPH, compile_pattern(pattern)).counts[0]
        assert total == unlabeled

    def test_vertex_induced_labeled(self):
        pattern = wedge().with_labels([0, 1, 0])
        expected = brute_force_count(GRAPH, pattern, induced=True)
        plan = compile_pattern(pattern, induced=True)
        assert mine(GRAPH, plan).counts[0] == expected

    def test_labeled_plan_on_unlabeled_graph_rejected(self):
        plan = compile_pattern(labeled_triangle(0, 0, 1))
        with pytest.raises(ValueError):
            PatternAwareEngine(BASE, plan)

    def test_unlabeled_pattern_on_labeled_graph(self):
        # Labels on the data graph are ignored without constraints.
        assert (
            mine(GRAPH, compile_pattern(triangle())).counts[0]
            == mine(BASE, compile_pattern(triangle())).counts[0]
        )

    def test_root_label_skips_tasks(self):
        pattern = labeled_triangle(0, 0, 0)
        engine = PatternAwareEngine(GRAPH, compile_pattern(pattern))
        engine.run()
        # Orientation is on (uniform labels); only label-0 roots worked.
        assert engine.counters.tasks == len(GRAPH.vertices_with_label(0))
