"""Tests for fine-grained task splitting (extension to the scheduler).

The paper assigns one task per root vertex; on power-law graphs a single
hub can then serialize the schedule's tail.  The extension splits hub
tasks into slices of the depth-1 candidate list.  Correctness contract:
the chunks partition the task exactly, so counts never change.
"""

import pytest

from repro.compiler import compile_motifs, compile_pattern
from repro.engine import PatternAwareEngine, mine
from repro.graph import CSRGraph, erdos_renyi, star_graph
from repro.hw import FlexMinerConfig, Scheduler, simulate
from repro.patterns import four_cycle, k_clique

GRAPH = erdos_renyi(40, 0.3, seed=91)


class TestEngineChunking:
    @pytest.mark.parametrize("total", [1, 2, 3, 7])
    def test_chunks_partition_task(self, total):
        plan = compile_pattern(four_cycle())
        whole = PatternAwareEngine(GRAPH, plan)
        whole.run_task(0)

        split = PatternAwareEngine(GRAPH, plan)
        for i in range(total):
            split.run_task(0, chunk=(i, total))
        assert split._counts == whole._counts

    def test_chunking_whole_graph(self):
        plan = compile_pattern(k_clique(4))
        expected = mine(GRAPH, plan).counts[0]
        engine = PatternAwareEngine(GRAPH, plan)
        for v in GRAPH.vertices():
            for i in range(3):
                engine.run_task(v, chunk=(i, 3))
        assert engine._counts[0] == expected

    def test_multiplan_chunking_rejected(self):
        engine = PatternAwareEngine(GRAPH, compile_motifs(3))
        with pytest.raises(ValueError):
            engine.run_task(0, chunk=(0, 2))


class TestSchedulerSplitting:
    def test_split_order_covers_all_chunks(self):
        g = star_graph(10)
        tasks = Scheduler.order_tasks(g, split_degree=4)
        hub_chunks = [t for t in tasks if isinstance(t, tuple)]
        assert len(hub_chunks) == 3  # ceil(10 / 4)
        assert {c[1] for c in hub_chunks} == {0, 1, 2}
        # Leaves stay unsplit.
        assert sum(1 for t in tasks if isinstance(t, int)) == 10

    def test_no_split_by_default(self):
        tasks = Scheduler.order_tasks(GRAPH)
        assert all(isinstance(t, int) for t in tasks)


class TestSimulatorSplitting:
    def test_counts_unchanged(self):
        plan = compile_pattern(four_cycle())
        base = simulate(GRAPH, plan, FlexMinerConfig(num_pes=4))
        split = simulate(
            GRAPH,
            plan,
            FlexMinerConfig(num_pes=4, task_split_degree=4),
        )
        assert split.counts == base.counts
        assert split.tasks > base.tasks  # more, smaller tasks

    def test_improves_balance_on_hub_graph(self):
        # One hub dominates the schedule.  The hub needs the *largest*
        # vertex id: the symmetry order (v1 < v0, ...) roots each match
        # at its largest vertex, so a hub with the largest id owns all
        # the heavy work as one task.
        n = 200
        hub = n
        edges = [(hub, i) for i in range(n)]
        edges += [(i, (i + 1) % n) for i in range(n)]
        g = CSRGraph.from_edges(edges)
        plan = compile_pattern(four_cycle())
        base = simulate(g, plan, FlexMinerConfig(num_pes=8))
        split = simulate(
            g, plan, FlexMinerConfig(num_pes=8, task_split_degree=16)
        )
        assert split.counts == base.counts
        assert split.cycles < base.cycles / 2
        assert split.load_imbalance < base.load_imbalance

    def test_multiplan_split_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            simulate(
                GRAPH,
                compile_motifs(3),
                FlexMinerConfig(num_pes=2, task_split_degree=4),
            )

    @pytest.mark.parametrize("kernels", [False, True], ids=["legacy", "fast"])
    def test_split_schedule_parity(self, kernels):
        # Chunked-task parity contract: the split schedule must mine
        # the exact same matches, and its task total must equal the
        # scheduler's (root, chunk) enumeration — no task dropped,
        # duplicated, or double-counted on either timing path.
        plan = compile_pattern(four_cycle())
        base_cfg = FlexMinerConfig(num_pes=4, timing_kernels=kernels)
        split_cfg = FlexMinerConfig(
            num_pes=4, task_split_degree=4, timing_kernels=kernels
        )
        base = simulate(GRAPH, plan, base_cfg)
        split = simulate(GRAPH, plan, split_cfg)

        from repro.graph import orient_by_degree

        work = orient_by_degree(GRAPH) if plan.oriented else GRAPH
        assert split.counts == base.counts
        assert base.tasks == len(Scheduler.order_tasks(work))
        assert split.tasks == len(
            Scheduler.order_tasks(work, split_degree=4)
        )

    def test_split_schedule_parity_parallel_runner(self):
        # The parallel runner replays the same chunked schedule: match
        # counts and task totals stay identical at every worker count.
        from repro.hw import simulate_parallel

        plan = compile_pattern(four_cycle())
        config = FlexMinerConfig(num_pes=4, task_split_degree=4)
        serial = simulate(GRAPH, plan, config)
        for workers in (1, 2):
            parallel = simulate_parallel(
                GRAPH, plan, config, workers=workers
            )
            assert parallel.counts == serial.counts
            assert parallel.tasks == serial.tasks
            assert parallel.as_dict() == serial.as_dict()
