"""Tests for cardinality estimation and data-aware order selection."""

import pytest

from repro.graph import complete_graph, grid_graph, rmat
from repro.patterns import diamond, four_cycle, k_clique, triangle, wedge
from repro.compiler import (
    GraphProfile,
    choose_matching_order_for_graph,
    compile_pattern,
    connected_ancestors,
    estimate_plan,
    measure_levels,
)
from repro.engine import PatternAwareEngine

GRAPH = rmat(9, 6.0, seed=47)


class TestGraphProfile:
    def test_basic_stats(self):
        g = complete_graph(10)
        p = GraphProfile.of(g)
        assert p.num_vertices == 10
        assert p.mean_degree == pytest.approx(9.0)
        assert p.size_biased_degree == pytest.approx(9.0)
        assert p.transitivity == pytest.approx(1.0)

    def test_triangle_free_graph(self):
        p = GraphProfile.of(grid_graph(6, 6))
        assert p.transitivity == 0.0

    def test_size_biased_exceeds_mean_on_power_law(self):
        p = GraphProfile.of(GRAPH)
        assert p.size_biased_degree > p.mean_degree

    def test_empty_graph(self):
        from repro.graph import CSRGraph

        p = GraphProfile.of(CSRGraph.from_edges([], num_vertices=4))
        assert p.mean_degree == 0.0
        assert p.transitivity == 0.0


class TestEstimatePlan:
    def test_level_zero_is_tasks(self):
        plan = compile_pattern(triangle(), use_orientation=False)
        levels = estimate_plan(plan, GRAPH)
        assert levels[0].nodes == GRAPH.num_vertices
        assert len(levels) == 3

    def test_constraints_shrink_levels(self):
        # A triangle's last level (1 closure) is narrower than a
        # wedge's (no closure) on a sparse graph.
        tri = estimate_plan(
            compile_pattern(triangle(), use_orientation=False), GRAPH
        )
        wed = estimate_plan(compile_pattern(wedge()), GRAPH)
        assert tri[-1].nodes < wed[-1].nodes

    def test_order_of_magnitude_on_triangle(self):
        plan = compile_pattern(triangle(), use_orientation=False)
        estimated = estimate_plan(plan, GRAPH)[-1].nodes
        actual = PatternAwareEngine(GRAPH, plan).run().counts[0]
        assert actual / 30 < max(estimated, 1) < actual * 30

    def test_bounds_halve(self):
        # Triangle's symmetry order bounds depth 1 (v1 < v0); the wedge
        # plan leaves depth 1 unbounded.  The estimator must reflect it.
        bounded = compile_pattern(triangle(), use_orientation=False)
        unbounded = compile_pattern(wedge())
        assert bounded.steps[0].upper_bounds
        assert not unbounded.steps[0].upper_bounds
        a = estimate_plan(bounded, GRAPH)[1].nodes
        b = estimate_plan(unbounded, GRAPH)[1].nodes
        assert a == pytest.approx(b / 2)


class TestMeasureLevels:
    def test_exact_final_level_is_match_count(self):
        plan = compile_pattern(four_cycle())
        measured = measure_levels(plan, GRAPH)
        matches = PatternAwareEngine(GRAPH, plan).run().counts[0]
        assert measured[-1].nodes == matches

    def test_sampling_approximates(self):
        plan = compile_pattern(triangle(), use_orientation=False)
        full = measure_levels(plan, GRAPH)
        sampled = measure_levels(plan, GRAPH, sample_roots=256, seed=3)
        assert sampled[-1].nodes == pytest.approx(
            full[-1].nodes, rel=0.5
        )

    def test_levels_monotone_scans(self):
        plan = compile_pattern(k_clique(4))
        measured = measure_levels(plan, GRAPH)
        assert all(lv.candidates_scanned >= 0 for lv in measured)


class TestDataAwareOrderSelection:
    def test_clique_fast_path(self):
        assert choose_matching_order_for_graph(
            k_clique(5), GRAPH
        ) == tuple(range(5))

    def test_diamond_prefers_triangle_first_on_sparse_graph(self):
        order = choose_matching_order_for_graph(diamond(), GRAPH)
        prefix = diamond().induced_subpattern(order[:3])
        assert prefix.num_edges == 3  # triangle before wedge (Fig. 5)

    def test_returns_connected_order(self):
        order = choose_matching_order_for_graph(four_cycle(), GRAPH)
        ca = connected_ancestors(four_cycle(), order)
        assert all(ca[d] for d in range(1, 4))

    def test_selected_order_is_competitive(self):
        # The data-aware choice never loses badly to the static choice.
        pattern = diamond()
        data_aware = choose_matching_order_for_graph(pattern, GRAPH)
        plan_aware = compile_pattern(
            pattern, use_orientation=False, matching_order=data_aware
        )
        plan_static = compile_pattern(pattern, use_orientation=False)
        work_aware = (
            PatternAwareEngine(GRAPH, plan_aware).run()
            .counters.setop_iterations
        )
        work_static = (
            PatternAwareEngine(GRAPH, plan_static).run()
            .counters.setop_iterations
        )
        assert work_aware <= work_static * 2.0
