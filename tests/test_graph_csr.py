"""Tests for the CSR graph representation."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import CSRGraph


def square():
    return CSRGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])


class TestConstruction:
    def test_from_edges_basic(self):
        g = square()
        assert g.num_vertices == 4
        assert g.num_edges == 4
        assert g.num_directed_edges == 8

    def test_neighbor_lists_sorted(self):
        g = CSRGraph.from_edges([(0, 3), (0, 1), (0, 2)])
        assert g.neighbors(0).tolist() == [1, 2, 3]

    def test_duplicate_edges_dropped(self):
        g = CSRGraph.from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges([(0, 0), (0, 1)])
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], num_vertices=5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.degree(3) == 0

    def test_isolated_vertices_preserved(self):
        g = CSRGraph.from_edges([(0, 1)], num_vertices=10)
        assert g.num_vertices == 10
        assert g.degree(9) == 0

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges([(-1, 2)])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges([(0, 5)], num_vertices=3)

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges([(0, 1, 2)])

    def test_from_adjacency(self):
        g = CSRGraph.from_adjacency([[1, 2], [0], [0]])
        assert g.num_edges == 2
        assert g.has_edge(0, 2) and g.has_edge(2, 0)

    def test_directed_from_edges(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)], directed=True)
        assert g.num_edges == 2
        assert g.neighbors(1).tolist() == [2]
        assert g.degree(2) == 0


class TestValidation:
    def test_unsorted_rows_rejected(self):
        indptr = np.array([0, 2, 3, 4])
        indices = np.array([2, 1, 0, 0])
        with pytest.raises(GraphFormatError):
            CSRGraph(indptr, indices, directed=True)

    def test_asymmetric_undirected_rejected(self):
        indptr = np.array([0, 1, 1])
        indices = np.array([1])
        with pytest.raises(GraphFormatError):
            CSRGraph(indptr, indices, directed=False)

    def test_bad_indptr_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([1, 2]), np.array([0]), directed=True)

    def test_self_loop_in_csr_rejected(self):
        indptr = np.array([0, 1])
        indices = np.array([0])
        with pytest.raises(GraphFormatError):
            CSRGraph(indptr, indices, directed=True)


class TestAccessors:
    def test_degrees(self):
        g = CSRGraph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert g.degrees().tolist() == [3, 1, 1, 1]
        assert g.max_degree() == 3
        assert g.avg_degree() == pytest.approx(1.5)

    def test_has_edge(self):
        g = square()
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_edges_iteration_unique(self):
        g = square()
        edges = list(g.edges())
        assert len(edges) == 4
        assert all(u < v for u, v in edges)

    def test_neighbor_view_is_read_only(self):
        g = square()
        view = g.neighbors(0)
        with pytest.raises(ValueError):
            view[0] = 99

    def test_edgelist_bytes(self):
        g = square()
        assert g.edgelist_bytes(0) == 8  # two neighbors, 4 bytes each

    def test_equality(self):
        assert square() == square()
        assert square() != CSRGraph.from_edges([(0, 1)])

    def test_repr_mentions_shape(self):
        text = repr(square())
        assert "|V|=4" in text and "|E|=4" in text


class TestDegreesCachingAndEdgeCases:
    def test_degrees_cached_same_object(self):
        g = square()
        first = g.degrees()
        assert g.degrees() is first  # computed once, then cached

    def test_degrees_read_only(self):
        g = square()
        with pytest.raises(ValueError):
            g.degrees()[0] = 99

    def test_degrees_empty_graph(self):
        g = CSRGraph.from_edges([], num_vertices=0)
        assert g.degrees().tolist() == []
        assert g.max_degree() == 0
        assert g.avg_degree() == 0.0

    def test_degrees_single_vertex(self):
        g = CSRGraph.from_edges([], num_vertices=1)
        assert g.degrees().tolist() == [0]
        assert g.degrees() is g.degrees()

    def test_degrees_with_isolated_vertices(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)], num_vertices=6)
        assert g.degrees().tolist() == [1, 2, 1, 0, 0, 0]

    def test_degrees_after_duplicate_edge_input(self):
        g = CSRGraph.from_edges([(0, 1), (1, 0), (0, 1), (1, 2)])
        assert g.degrees().tolist() == [1, 2, 1]

    def test_orientation_empty_graph(self):
        from repro.graph import orient_by_degree

        g = CSRGraph.from_edges([], num_vertices=0)
        dag = orient_by_degree(g)
        assert dag.num_vertices == 0
        assert dag.num_directed_edges == 0

    def test_orientation_single_vertex(self):
        from repro.graph import orient_by_degree

        g = CSRGraph.from_edges([], num_vertices=1)
        dag = orient_by_degree(g)
        assert dag.num_vertices == 1
        assert dag.degree(0) == 0

    def test_orientation_preserves_isolated_vertices(self):
        from repro.graph import orient_by_degree

        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)], num_vertices=7)
        dag = orient_by_degree(g)
        assert dag.num_vertices == 7
        assert dag.num_directed_edges == g.num_edges
        assert all(dag.degree(v) == 0 for v in range(3, 7))

    def test_orientation_after_duplicate_edge_input(self):
        from repro.graph import orient_by_degree

        g = CSRGraph.from_edges(
            [(0, 1), (1, 0), (0, 1), (1, 2), (2, 1), (0, 2)]
        )
        dag = orient_by_degree(g)
        # Dedup first: 3 undirected edges become exactly 3 arcs.
        assert dag.num_directed_edges == 3
        # Each undirected edge appears as exactly one arc.
        arcs = {
            (u, int(w)) for u in dag.vertices() for w in dag.neighbors(u)
        }
        assert len(arcs) == 3
        assert all((v, u) not in arcs for u, v in arcs)


class TestNetworkxInterop:
    def test_round_trip(self):
        g = square()
        back = CSRGraph.from_networkx(g.to_networkx())
        assert back == g

    def test_triangle_count_agrees(self):
        import networkx as nx

        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        assert sum(nx.triangles(g.to_networkx()).values()) // 3 == 1


class TestSharedArrays:
    def test_share_attach_round_trip(self):
        from repro.graph import attach_array, share_array

        arr = np.arange(7, dtype=np.int64)
        shm, spec = share_array(arr)
        try:
            view, handle = attach_array(spec)
            assert np.array_equal(view, arr)
            handle.close()
        finally:
            shm.close()
            shm.unlink()

    def test_share_array_reaps_segment_when_copy_fails(self, monkeypatch):
        # Regression (FM301): if the copy into the fresh segment raises,
        # the caller never saw the handle — share_array must close AND
        # unlink before re-raising, or the segment outlives the process.
        from multiprocessing import shared_memory

        from repro.graph import share_array

        arr = np.arange(5, dtype=np.int64)
        created = []
        real_shm = shared_memory.SharedMemory

        class Recording(real_shm):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self.name)

        def boom(*args, **kwargs):
            raise RuntimeError("view boom")

        monkeypatch.setattr(shared_memory, "SharedMemory", Recording)
        monkeypatch.setattr(np, "ndarray", boom)
        try:
            with pytest.raises(RuntimeError, match="view boom"):
                share_array(arr)
        finally:
            monkeypatch.undo()
        assert len(created) == 1
        with pytest.raises(FileNotFoundError):
            real_shm(name=created[0])
