"""Tests for finding baselines (repro.analysis.baseline) and SARIF
export (repro.analysis.sarif), plus their ``flexminer lint`` wiring.

The baseline contract: recorded findings stop gating, new findings
still gate, and a recorded finding that disappears turns into an FM299
*error* — stale suppressions are debt that must be deleted, not
ballast the gate quietly carries forever.
"""

import json
import os

import pytest

from repro.analysis import (
    AnalysisReport,
    apply_baseline,
    baseline_from_report,
    lint_source,
    load_baseline,
    save_baseline,
    to_sarif,
)
from repro.cli import main

LEAKY = (
    "def leak(n):\n"
    "    shm = SharedMemory(create=True, size=n)\n"
    "    return None\n"
)


def leaky_report():
    rep = AnalysisReport(subject="fmlint:test")
    rep.extend(lint_source(LEAKY, path="src/repro/engine/leaky.py"))
    assert rep.findings  # FM204 + FM300
    return rep


class TestBaseline:
    def test_round_trip(self, tmp_path):
        rep = leaky_report()
        base = baseline_from_report(rep)
        path = str(tmp_path / "baseline.json")
        save_baseline(path, base)
        loaded = load_baseline(path)
        assert loaded.entries == base.entries
        assert len(loaded) == len(rep.findings)

    def test_recorded_findings_stop_gating(self):
        rep = leaky_report()
        base = baseline_from_report(rep)
        filtered = apply_baseline(rep, base)
        assert filtered.findings == []
        assert filtered.ok
        assert filtered.data["baseline"]["suppressed"] == len(rep.findings)
        assert filtered.data["baseline"]["stale"] == 0

    def test_new_findings_still_gate(self):
        base = baseline_from_report(AnalysisReport(subject="empty"))
        rep = leaky_report()
        filtered = apply_baseline(rep, base)
        assert [d.code for d in filtered.findings] == [
            d.code for d in rep.findings
        ]
        assert not filtered.ok

    def test_stale_entry_fails_as_fm299(self):
        rep = leaky_report()
        base = baseline_from_report(rep)
        clean = AnalysisReport(subject="fmlint:test")
        filtered = apply_baseline(clean, base)
        assert {d.code for d in filtered.findings} == {"FM299"}
        assert not filtered.ok
        assert filtered.data["baseline"]["stale"] == len(rep.findings)

    def test_fingerprint_ignores_line_drift(self):
        rep = leaky_report()
        base = baseline_from_report(rep)
        shifted = AnalysisReport(subject="fmlint:test")
        shifted.extend(
            lint_source("\n\n" + LEAKY, path="src/repro/engine/leaky.py")
        )
        filtered = apply_baseline(shifted, base)
        assert filtered.findings == []

    def test_duplicate_findings_counted_not_collapsed(self):
        double = LEAKY + LEAKY.replace("def leak", "def leak2")
        rep = AnalysisReport(subject="fmlint:test")
        rep.extend(lint_source(double, path="src/repro/engine/leaky.py"))
        base = baseline_from_report(rep)
        # the same multiset passes...
        assert apply_baseline(rep, base).findings == []
        # ...but one occurrence fewer turns the spare entries stale
        single = AnalysisReport(subject="fmlint:test")
        single.extend(lint_source(LEAKY, path="src/repro/engine/leaky.py"))
        filtered = apply_baseline(single, base)
        assert {d.code for d in filtered.findings} == {"FM299"}

    def test_bad_payload_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError, match="version"):
            load_baseline(str(path))


class TestSarif:
    def test_minimal_valid_shape(self):
        log = to_sarif(leaky_report(), tool_version="1.2.3")
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "flexminer-lint"
        assert driver["version"] == "1.2.3"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert "FM300" in rule_ids

    def test_results_reference_rules_and_locations(self):
        log = to_sarif(leaky_report())
        (run,) = log["runs"]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        for result in run["results"]:
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            assert result["level"] in ("error", "warning", "note")
            (loc,) = result["locations"]
            phys = loc["physicalLocation"]
            assert phys["artifactLocation"]["uri"] == (
                "src/repro/engine/leaky.py"
            )
            assert phys["region"]["startLine"] >= 1

    def test_severity_level_mapping(self):
        rep = AnalysisReport(subject="s")
        rep.add("FM300", "e", location="a/b.py:1")
        rep.add("FM303", "w", location="a/b.py:2")  # warning severity
        rep.add("FM170", "i")  # info severity, no physical location
        log = to_sarif(rep)
        levels = [r["level"] for r in log["runs"][0]["results"]]
        assert levels == ["error", "warning", "note"]
        assert "locations" not in log["runs"][0]["results"][2]

    def test_empty_report(self):
        log = to_sarif(AnalysisReport(subject="s"))
        (run,) = log["runs"]
        assert run["results"] == []
        assert run["tool"]["driver"]["rules"] == []


class TestLintCli:
    def _leaky_tree(self, tmp_path):
        pkg = tmp_path / "engine"
        pkg.mkdir()
        (pkg / "leaky.py").write_text(LEAKY)
        return str(tmp_path)

    def test_update_then_pass(self, tmp_path, capsys):
        tree = self._leaky_tree(tmp_path)
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", tree]) == 1  # gate fails without baseline
        assert main(["lint", tree, "--update-baseline", baseline]) == 0
        assert main(["lint", tree, "--baseline", baseline]) == 0

    def test_stale_baseline_fails(self, tmp_path, capsys):
        tree = self._leaky_tree(tmp_path)
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", tree, "--update-baseline", baseline]) == 0
        os.remove(os.path.join(tree, "engine", "leaky.py"))
        (tmp_path / "engine" / "clean.py").write_text("x = 1\n")
        assert main(["lint", tree, "--baseline", baseline]) == 1
        assert "FM299" in capsys.readouterr().out

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        tree = self._leaky_tree(tmp_path)
        assert main(["lint", tree, "--baseline", "no/such.json"]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_format_sarif(self, tmp_path, capsys):
        tree = self._leaky_tree(tmp_path)
        assert main(["lint", tree, "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"]

    def test_format_json_matches_json_flag(self, tmp_path, capsys):
        tree = self._leaky_tree(tmp_path)
        assert main(["lint", tree, "--format", "json"]) == 1
        via_format = json.loads(capsys.readouterr().out)
        assert main(["lint", tree, "--json"]) == 1
        via_flag = json.loads(capsys.readouterr().out)
        assert via_format["data"]["findings"] == via_flag["data"]["findings"]

    def test_checked_in_baseline_is_current(self):
        # The committed baseline must stay in sync with the tree: zero
        # entries while the tree lints clean, and never stale.
        repo_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        path = os.path.join(repo_root, "analysis-baseline.json")
        assert os.path.exists(path)
        baseline = load_baseline(path)
        assert len(baseline) == 0
