"""Tests for the plan data model, compiler facade, hints, and textual IR."""

import pytest

from repro.errors import CompileError, IRSyntaxError
from repro.patterns import (
    Pattern,
    diamond,
    enumerate_motifs,
    four_cycle,
    k_clique,
    tailed_triangle,
    triangle,
    wedge,
)
from repro.compiler import (
    ExecutionPlan,
    VertexStep,
    cmap_insert_hints,
    cmap_needed_depths,
    compile_motifs,
    compile_multi,
    compile_pattern,
    emit_ir,
    emit_multi_ir,
    parse_ir,
)


class TestVertexStep:
    def test_valid_step(self):
        s = VertexStep(depth=3, extender=2, connected=(1,), upper_bounds=(0,))
        assert s.full_connected == (1, 2)

    def test_forward_reference_rejected(self):
        with pytest.raises(CompileError):
            VertexStep(depth=2, extender=2)

    def test_extender_in_connected_rejected(self):
        with pytest.raises(CompileError):
            VertexStep(depth=2, extender=1, connected=(1,))

    def test_conflicting_constraints_rejected(self):
        with pytest.raises(CompileError):
            VertexStep(
                depth=3, extender=2, connected=(0,), disconnected=(0,)
            )

    def test_depth_zero_rejected(self):
        with pytest.raises(CompileError):
            VertexStep(depth=0, extender=0)

    def test_bad_base_step(self):
        with pytest.raises(CompileError):
            VertexStep(depth=2, extender=1, base_step=5)

    def test_remainders_require_base(self):
        with pytest.raises(CompileError):
            VertexStep(depth=2, extender=1, extra_connected=(0,))

    def test_remainders_must_be_constraints(self):
        with pytest.raises(CompileError):
            VertexStep(
                depth=3,
                extender=2,
                connected=(1,),
                base_step=1,
                extra_connected=(0,),
            )


class TestCompile:
    def test_clique_auto_orients(self):
        plan = compile_pattern(k_clique(4))
        assert plan.oriented
        assert all(not s.upper_bounds for s in plan.steps)

    def test_non_clique_never_orients(self):
        plan = compile_pattern(four_cycle())
        assert not plan.oriented
        with pytest.raises(CompileError):
            compile_pattern(four_cycle(), use_orientation=True)

    def test_clique_can_disable_orientation(self):
        plan = compile_pattern(triangle(), use_orientation=False)
        assert not plan.oriented
        assert plan.symmetry_conditions  # symmetry order instead

    def test_induced_steps_carry_disconnected(self):
        plan = compile_pattern(four_cycle(), induced=True)
        assert any(s.disconnected for s in plan.steps)
        edge_plan = compile_pattern(four_cycle(), induced=False)
        assert all(not s.disconnected for s in edge_plan.steps)

    def test_matching_order_override(self):
        plan = compile_pattern(diamond(), matching_order=(0, 1, 2, 3))
        assert plan.matching_order == (0, 1, 2, 3)

    def test_bad_override_rejected(self):
        with pytest.raises(CompileError):
            compile_pattern(diamond(), matching_order=(0, 0, 1, 2))
        # Disconnected order: leaf of tailed-triangle before its anchor.
        with pytest.raises(CompileError):
            compile_pattern(
                tailed_triangle(), matching_order=(3, 0, 1, 2)
            )

    def test_single_vertex_rejected(self):
        with pytest.raises(CompileError):
            compile_pattern(Pattern(1, []))

    def test_disconnected_rejected(self):
        with pytest.raises(CompileError):
            compile_pattern(Pattern(4, [(0, 1), (2, 3)]))

    def test_diamond_frontier_reuse(self):
        # §V-C: v2 and v3 come from the same adj(v0) ∩ adj(v1) set, so
        # the last step reuses the depth-2 frontier with no extra work.
        plan = compile_pattern(diamond(), use_orientation=False)
        last = plan.steps[-1]
        assert last.base_step == 2
        assert last.extra_connected == ()
        assert last.extra_disconnected == ()
        assert plan.steps[1].memoize_frontier

    def test_clique_incremental_composition(self):
        # GraphZero-style S_{d} = S_{d-1} ∩ N(v_{d-1}) for cliques.
        plan = compile_pattern(k_clique(5))
        for step in plan.steps[2:]:
            assert step.base_step == step.depth - 1
            assert step.extra_connected == (step.depth - 1,)

    def test_four_cycle_has_no_frontier_reuse(self):
        # §VII-C: "there is no frontier list reuse in 4-cycle".
        plan = compile_pattern(four_cycle())
        assert all(s.base_step is None for s in plan.steps)

    def test_plan_without_cmap(self):
        plan = compile_pattern(four_cycle())
        assert plan.cmap_insert_depths
        bare = plan.without_cmap()
        assert not bare.cmap_insert_depths


class TestHints:
    def test_needed_depths_exclude_extender(self):
        s = VertexStep(depth=3, extender=2, connected=(0,), disconnected=(1,))
        assert cmap_needed_depths(s) == (0, 1)

    def test_insert_only_consumed_depths(self):
        # 4-cycle: exactly one ancestor's connectivity is consumed (§VI-B).
        plan = compile_pattern(four_cycle())
        assert len(plan.cmap_insert_depths) == 1

    def test_filter_requires_common_earlier_bound(self):
        steps = (
            VertexStep(depth=1, extender=0),
            VertexStep(depth=2, extender=1, connected=(0,), upper_bounds=(1,)),
        )
        depths, filters = cmap_insert_hints(steps)
        assert depths == (0,)
        # Bound depth 1 is not known when depth 0 is inserted.
        assert filters[0] is None

    def test_filter_applied_when_safe(self):
        steps = (
            VertexStep(depth=1, extender=0),
            VertexStep(depth=2, extender=0),
            VertexStep(
                depth=3, extender=2, connected=(1,), upper_bounds=(0,)
            ),
        )
        depths, filters = cmap_insert_hints(steps)
        assert filters[1] == 0


class TestMultiPlan:
    def test_motif_plans_cover_all_patterns(self):
        plan = compile_motifs(4)
        assert plan.num_patterns == 6
        assert plan.leaf_count() == 6
        assert plan.max_depth() == 3

    def test_prefix_sharing_reduces_nodes(self):
        plan = compile_motifs(4)
        unshared = sum(p.num_vertices - 1 for p in plan.patterns)
        assert plan.node_count() - 1 < unshared

    def test_same_size_required(self):
        with pytest.raises(CompileError):
            compile_multi([triangle(), four_cycle()])

    def test_duplicate_patterns_rejected(self):
        with pytest.raises(CompileError):
            compile_multi([wedge(), wedge()])

    def test_empty_rejected(self):
        with pytest.raises(CompileError):
            compile_multi([])


class TestIR:
    @pytest.mark.parametrize(
        "pattern,kwargs",
        [
            (triangle(), {}),
            (k_clique(5), {}),
            (four_cycle(), {}),
            (diamond(), {"use_orientation": False}),
            (four_cycle(), {"induced": True}),
            (tailed_triangle(), {}),
        ],
        ids=lambda x: getattr(x, "name", str(x)),
    )
    def test_round_trip(self, pattern, kwargs):
        plan = compile_pattern(pattern, **kwargs)
        again = parse_ir(emit_ir(plan))
        assert again == plan

    def test_listing1_shape(self):
        # The 4-cycle IR has the Listing 1 structure: a bounded wedge
        # prefix and a doubly-constrained last step.
        text = emit_ir(compile_pattern(four_cycle()))
        assert "v0 in V pruneBy(inf, {})" in text
        assert "pruneBy(v0, {})" in text
        assert "cmap:" in text

    def test_parse_rejects_garbage(self):
        with pytest.raises(IRSyntaxError):
            parse_ir("not an ir\n")
        with pytest.raises(IRSyntaxError):
            parse_ir("")

    def test_parse_rejects_bad_step(self):
        plan_text = emit_ir(compile_pattern(triangle(), use_orientation=False))
        broken = plan_text.replace("pruneBy", "pruneXX")
        with pytest.raises(IRSyntaxError):
            parse_ir(broken)

    def test_parse_rejects_text_outside_section(self):
        plan_text = emit_ir(compile_pattern(triangle(), use_orientation=False))
        with pytest.raises(IRSyntaxError):
            parse_ir(plan_text.replace("vertex:", "vertices:"))

    def test_multi_ir_mentions_all_patterns(self):
        text = emit_multi_ir(compile_motifs(3))
        assert "# matches wedge" in text
        assert "# matches triangle" in text
