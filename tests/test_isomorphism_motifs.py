"""Tests for isomorphism utilities and motif enumeration."""

import pytest

from repro.graph import complete_graph, cycle_graph, star_graph
from repro.patterns import (
    NUM_MOTIFS,
    Pattern,
    are_isomorphic,
    brute_force_count,
    classify_motif,
    diamond,
    enumerate_motifs,
    find_isomorphism,
    four_cycle,
    k_clique,
    motif_names,
    tailed_triangle,
    triangle,
    wedge,
)


class TestIsomorphism:
    def test_same_pattern(self):
        assert are_isomorphic(triangle(), k_clique(3))

    def test_relabelled(self):
        p = diamond()
        assert are_isomorphic(p, p.relabel([3, 2, 1, 0]))

    def test_different_shapes(self):
        assert not are_isomorphic(four_cycle(), diamond())
        assert not are_isomorphic(four_cycle(), tailed_triangle())

    def test_different_sizes(self):
        assert not are_isomorphic(triangle(), k_clique(4))

    def test_mapping_is_valid(self):
        p = four_cycle()
        q = p.relabel([2, 0, 3, 1])
        perm = find_isomorphism(p, q)
        assert perm is not None
        for u, v in p.edges:
            assert q.has_edge(perm[u], perm[v])

    def test_no_mapping_for_non_isomorphic(self):
        assert find_isomorphism(four_cycle(), diamond()) is None

    def test_degree_sequence_shortcut(self):
        # Same edge count, different degree sequence.
        p = Pattern(4, [(0, 1), (1, 2), (2, 3)])
        q = Pattern(4, [(0, 1), (0, 2), (0, 3)])
        assert not are_isomorphic(p, q)


class TestClassifyMotif:
    def test_classifies_into_fig3_classes(self):
        motifs = enumerate_motifs(4)
        assert classify_motif(four_cycle(), motifs) == motifs.index(
            next(m for m in motifs if m.name == "4-cycle")
        )

    def test_unknown_returns_none(self):
        assert classify_motif(triangle(), enumerate_motifs(4)) is None


class TestMotifEnumeration:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_counts_match_oeis(self, k):
        assert len(enumerate_motifs(k)) == NUM_MOTIFS[k]

    def test_all_connected_and_distinct(self):
        motifs = enumerate_motifs(4)
        assert all(m.is_connected() for m in motifs)
        forms = {m.canonical_form() for m in motifs}
        assert len(forms) == len(motifs)

    def test_three_motifs_are_wedge_and_triangle(self):
        names = motif_names(3)
        assert names == ["wedge", "triangle"]

    def test_four_motif_names(self):
        assert set(motif_names(4)) == {
            "3-star",
            "4-path",
            "4-cycle",
            "tailed-triangle",
            "diamond",
            "4-clique",
        }

    def test_cached_copy_is_fresh_list(self):
        a = enumerate_motifs(3)
        a.append(None)
        assert len(enumerate_motifs(3)) == 2


class TestBruteForce:
    def test_triangles_in_k4(self):
        g = complete_graph(4)
        assert brute_force_count(g, triangle(), induced=True) == 4

    def test_cliques_in_kn(self):
        from math import comb

        g = complete_graph(6)
        for k in (3, 4, 5):
            assert brute_force_count(g, k_clique(k), induced=False) == comb(6, k)

    def test_four_cycles(self):
        g = cycle_graph(4)
        assert brute_force_count(g, four_cycle(), induced=True) == 1

    def test_wedges_in_star(self):
        from math import comb

        g = star_graph(5)
        assert brute_force_count(g, wedge(), induced=True) == comb(5, 2)

    def test_edge_vs_vertex_induced(self):
        # K4 contains 3 four-cycles edge-induced but 0 vertex-induced.
        g = complete_graph(4)
        assert brute_force_count(g, four_cycle(), induced=False) == 3
        assert brute_force_count(g, four_cycle(), induced=True) == 0

    def test_diamond_in_k4(self):
        g = complete_graph(4)
        # Every K4 contains 6 edge-induced diamonds (choose the missing edge).
        assert brute_force_count(g, diamond(), induced=False) == 6
        assert brute_force_count(g, diamond(), induced=True) == 0
