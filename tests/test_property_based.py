"""Hypothesis property tests on core invariants.

These are randomized cross-checks of the central correctness properties:
mining counts agree across every execution path, symmetry breaking is
exact, and data structures respect their invariants.
"""

from math import comb

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph
from repro.patterns import (
    Pattern,
    brute_force_count,
    diamond,
    enumerate_motifs,
    four_cycle,
    k_clique,
    triangle,
    wedge,
)
from repro.compiler import (
    choose_matching_order,
    compile_motifs,
    compile_pattern,
    connected_ancestors,
    symmetry_conditions,
)
from repro.engine import (
    CMapSoftwareEngine,
    PatternAwareEngine,
    mine,
    mine_multi,
    mine_oblivious,
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_graphs(draw, max_vertices=14):
    n = draw(st.integers(min_value=4, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    mask = draw(
        st.lists(st.booleans(), min_size=len(possible), max_size=len(possible))
    )
    edges = [e for e, keep in zip(possible, mask) if keep]
    return CSRGraph.from_edges(edges, num_vertices=n)


@st.composite
def small_patterns(draw):
    """A random connected pattern on 3-4 vertices."""
    k = draw(st.integers(min_value=3, max_value=4))
    motifs = enumerate_motifs(k)
    return draw(st.sampled_from(motifs))


class TestMiningCorrectness:
    @SETTINGS
    @given(graph=small_graphs(), pattern=small_patterns())
    def test_pattern_aware_matches_brute_force_edge_induced(
        self, graph, pattern
    ):
        plan = compile_pattern(pattern)
        assert mine(graph, plan).counts[0] == brute_force_count(
            graph, pattern, induced=False
        )

    @SETTINGS
    @given(graph=small_graphs(), pattern=small_patterns())
    def test_pattern_aware_matches_brute_force_vertex_induced(
        self, graph, pattern
    ):
        plan = compile_pattern(pattern, induced=True, use_orientation=False)
        assert mine(graph, plan).counts[0] == brute_force_count(
            graph, pattern, induced=True
        )

    @SETTINGS
    @given(graph=small_graphs(), pattern=small_patterns())
    def test_cmap_engine_agrees(self, graph, pattern):
        plan = compile_pattern(pattern, use_orientation=False)
        base = PatternAwareEngine(graph, plan).run().counts
        with_cmap = CMapSoftwareEngine(graph, plan).run().counts
        assert base == with_cmap

    @SETTINGS
    @given(graph=small_graphs(max_vertices=11), pattern=small_patterns())
    def test_oblivious_agrees(self, graph, pattern):
        plan = compile_pattern(pattern)
        aware = mine(graph, plan).counts[0]
        oblivious = mine_oblivious(graph, pattern).counts[0]
        assert aware == oblivious

    @SETTINGS
    @given(graph=small_graphs(max_vertices=11))
    def test_motif_counting_partitions_subgraphs(self, graph):
        # Vertex-induced motif counts partition the set of connected
        # induced 3-subgraphs: wedges + triangles = all of them.
        plan = compile_motifs(3)
        counts = mine_multi(graph, plan).counts
        expected = tuple(
            brute_force_count(graph, m, induced=True)
            for m in plan.patterns
        )
        assert counts == expected

    @SETTINGS
    @given(graph=small_graphs())
    def test_triangle_orientation_equivalence(self, graph):
        oriented = mine(graph, compile_pattern(triangle())).counts[0]
        symmetric = mine(
            graph, compile_pattern(triangle(), use_orientation=False)
        ).counts[0]
        assert oriented == symmetric

    @SETTINGS
    @given(graph=small_graphs())
    def test_frontier_memo_neutral_for_counts(self, graph):
        plan = compile_pattern(diamond(), use_orientation=False)
        memo = PatternAwareEngine(graph, plan, use_frontier_memo=True)
        plain = PatternAwareEngine(graph, plan, use_frontier_memo=False)
        assert memo.run().counts == plain.run().counts


class TestCompilerProperties:
    @SETTINGS
    @given(pattern=small_patterns())
    def test_matching_order_is_connected(self, pattern):
        order = choose_matching_order(pattern)
        ca = connected_ancestors(pattern, order)
        assert all(ca[d] for d in range(1, pattern.num_vertices))

    @SETTINGS
    @given(pattern=small_patterns())
    def test_symmetry_conditions_acyclic(self, pattern):
        order = choose_matching_order(pattern)
        conditions = symmetry_conditions(pattern, order)
        # (a, b) with a < b only: trivially acyclic, never self-referential.
        assert all(a < b for a, b in conditions)

    @SETTINGS
    @given(pattern=small_patterns())
    def test_ir_round_trip(self, pattern):
        from repro.compiler import emit_ir, parse_ir

        plan = compile_pattern(pattern, use_orientation=False)
        assert parse_ir(emit_ir(plan)) == plan


class TestOracleAgreement:
    """Satellite of the differential subsystem: the engine must agree
    with the compiler-independent ESU oracle on every named pattern up
    to 4 vertices, on unlabeled AND random labeled graphs."""

    NAMED_PATTERNS = [
        "edge",
        "wedge",
        "triangle",
        "4-cycle",
        "diamond",
        "tailed-triangle",
        "4-clique",
    ]

    @SETTINGS
    @given(graph=small_graphs(max_vertices=10))
    def test_engine_matches_oracle_all_named_patterns(self, graph):
        from repro.patterns import from_name
        from repro.verify import oracle_count

        for name in self.NAMED_PATTERNS:
            pattern = from_name(name)
            plan = compile_pattern(pattern)
            assert mine(graph, plan).counts[0] == oracle_count(
                graph, pattern, induced=False
            ), f"engine vs oracle diverged on {name}"

    @SETTINGS
    @given(
        graph=small_graphs(max_vertices=10),
        labels=st.lists(
            st.integers(min_value=0, max_value=2), min_size=14, max_size=14
        ),
        pattern=small_patterns(),
        pattern_labels=st.lists(
            st.one_of(st.none(), st.integers(min_value=0, max_value=2)),
            min_size=4,
            max_size=4,
        ),
    )
    def test_engine_matches_oracle_labeled(
        self, graph, labels, pattern, pattern_labels
    ):
        from repro.graph import LabeledGraph
        from repro.verify import oracle_count

        labeled_graph = LabeledGraph(
            graph, np.asarray(labels[: graph.num_vertices])
        )
        plabels = pattern_labels[: pattern.num_vertices]
        if any(lab is not None for lab in plabels):
            pattern = pattern.with_labels(plabels)
        for induced in (False, True):
            plan = compile_pattern(
                pattern, induced=induced, use_orientation=False
            )
            engine = PatternAwareEngine(labeled_graph, plan).run().counts[0]
            assert engine == oracle_count(
                labeled_graph, pattern, induced=induced
            )


class TestGraphProperties:
    @SETTINGS
    @given(graph=small_graphs())
    def test_csr_degree_sum(self, graph):
        assert int(graph.degrees().sum()) == 2 * graph.num_edges

    @SETTINGS
    @given(graph=small_graphs())
    def test_orientation_halves_entries(self, graph):
        from repro.graph import orient_by_degree

        dag = orient_by_degree(graph)
        assert dag.num_directed_edges == graph.num_edges

    @SETTINGS
    @given(graph=small_graphs())
    def test_wedge_count_closed_form(self, graph):
        expected = sum(comb(graph.degree(v), 2) for v in graph.vertices())
        plan = compile_pattern(wedge(), induced=False)
        assert mine(graph, plan).counts[0] == expected
