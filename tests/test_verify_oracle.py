"""Tests for the ESU-based enumeration oracle (repro.verify.oracle).

The oracle is the ground truth of the differential subsystem, so it is
itself validated two ways: the ESU connected-set enumeration against a
brute-force combinations filter, and the final counts against the
independent ``brute_force_count`` enumerator from ``repro.patterns``.
"""

from itertools import combinations
from math import comb

import numpy as np
import pytest

from repro.graph import CSRGraph, LabeledGraph, erdos_renyi
from repro.patterns import (
    Pattern,
    brute_force_count,
    diamond,
    edge,
    four_cycle,
    k_clique,
    tailed_triangle,
    triangle,
    wedge,
)
from repro.verify import connected_vertex_sets, oracle_count


def _connected_sets_brute(graph, k):
    """Ground truth: filter all C(n, k) subsets by connectivity."""
    out = []
    for combo in combinations(range(graph.num_vertices), k):
        if k == 1:
            out.append(combo)
            continue
        seen = {combo[0]}
        frontier = [combo[0]]
        members = set(combo)
        while frontier:
            v = frontier.pop()
            for w in graph.neighbors(v):
                w = int(w)
                if w in members and w not in seen:
                    seen.add(w)
                    frontier.append(w)
        if seen == members:
            out.append(combo)
    return sorted(out)


class TestConnectedVertexSets:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_matches_brute_force_filter(self, seed, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 12))
        graph = erdos_renyi(n, float(rng.uniform(0.2, 0.6)), seed=seed)
        found = sorted(connected_vertex_sets(graph, k))
        assert found == _connected_sets_brute(graph, k)

    def test_no_duplicates(self):
        graph = erdos_renyi(10, 0.5, seed=3)
        sets = list(connected_vertex_sets(graph, 3))
        assert len(sets) == len(set(sets))

    def test_empty_graph(self):
        graph = CSRGraph.from_edges([], num_vertices=6)
        assert list(connected_vertex_sets(graph, 2)) == []
        # Singletons are trivially connected even without edges.
        assert len(list(connected_vertex_sets(graph, 1))) == 6

    def test_star_sets_contain_center(self):
        leaves = 6
        graph = CSRGraph.from_edges([(0, i) for i in range(1, leaves + 1)])
        for k in (2, 3, 4):
            sets = list(connected_vertex_sets(graph, k))
            # Every connected k-set of a star includes the center.
            assert all(0 in s for s in sets)
            assert len(sets) == comb(leaves, k - 1)

    def test_clique_has_all_subsets(self):
        n = 6
        graph = CSRGraph.from_edges(
            [(u, v) for u in range(n) for v in range(u + 1, n)]
        )
        assert len(list(connected_vertex_sets(graph, 3))) == comb(n, 3)


PATTERNS = [
    edge(),
    wedge(),
    triangle(),
    four_cycle(),
    diamond(),
    tailed_triangle(),
    k_clique(4),
]


class TestOracleCounts:
    @pytest.mark.parametrize(
        "pattern", PATTERNS, ids=lambda p: p.name or "pattern"
    )
    @pytest.mark.parametrize("induced", [False, True])
    def test_agrees_with_brute_force(self, pattern, induced):
        for seed in range(3):
            graph = erdos_renyi(9, 0.45, seed=seed)
            assert oracle_count(
                graph, pattern, induced=induced
            ) == brute_force_count(graph, pattern, induced=induced)

    def test_labeled_graph(self):
        rng = np.random.default_rng(7)
        topo = erdos_renyi(10, 0.5, seed=7)
        graph = LabeledGraph(topo, rng.integers(0, 2, size=10))
        pattern = triangle().with_labels([0, 1, None])
        for induced in (False, True):
            assert oracle_count(
                graph, pattern, induced=induced
            ) == brute_force_count(graph, pattern, induced=induced)

    def test_disconnected_pattern_falls_back(self):
        # Two disjoint edges: ESU cannot cover it, so the oracle must
        # fall back to the plain brute-force path and still be right.
        pattern = Pattern(4, [(0, 1), (2, 3)], name="2xedge")
        graph = erdos_renyi(8, 0.4, seed=11)
        assert oracle_count(graph, pattern) == brute_force_count(
            graph, pattern, induced=False
        )

    def test_degenerate_graphs(self):
        empty = CSRGraph.from_edges([], num_vertices=4)
        single = CSRGraph.from_edges([], num_vertices=1)
        for graph in (empty, single):
            assert oracle_count(graph, triangle()) == 0
            assert oracle_count(graph, edge()) == 0

    def test_exact_small_counts(self):
        # K4: 4 triangles, 3 four-cycles (edge-induced), 1 four-clique.
        k4 = CSRGraph.from_edges(
            [(u, v) for u in range(4) for v in range(u + 1, 4)]
        )
        assert oracle_count(k4, triangle()) == 4
        assert oracle_count(k4, four_cycle()) == 3
        assert oracle_count(k4, k_clique(4)) == 1
        assert oracle_count(k4, four_cycle(), induced=True) == 0

    def test_deterministic(self):
        graph = erdos_renyi(12, 0.4, seed=2)
        first = oracle_count(graph, diamond())
        assert all(
            oracle_count(graph, diamond()) == first for _ in range(3)
        )
