"""Tests for the static plan verifier (repro.analysis.plancheck).

Two halves mirror the verifier's contract:

* **acceptance** — every plan the compiler can produce (all library
  patterns, both semantics, every enumerable matching order, the motif
  multi-plans) passes with zero findings;
* **mutation** — each documented FM1xx code fires on a minimal
  hand-broken plan, with the exact code(s) pinned.

The sym-stripped 4-cycle is the same bug PR 3's fuzzer had to find
*dynamically* (and shrink to the 4-vertex cycle); here it is rejected
in milliseconds without running anything.
"""

import copy
import os
from dataclasses import replace

import pytest

from repro.analysis import check_multi_plan, check_plan, plan_shape
from repro.compiler import (
    PlanNode,
    VertexStep,
    compile_motifs,
    compile_pattern,
    enumerate_matching_orders,
)
from repro.hw.config import FlexMinerConfig
from repro.patterns import (
    PATTERN_NAMES,
    diamond,
    four_cycle,
    from_name,
    k_clique,
    path,
    triangle,
)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


# ----------------------------------------------------------------------
# Acceptance: everything the compiler emits is statically clean
# ----------------------------------------------------------------------
class TestLibraryAcceptance:
    @pytest.mark.parametrize("name", sorted(PATTERN_NAMES))
    @pytest.mark.parametrize("induced", [False, True])
    def test_library_plan_clean(self, name, induced):
        plan = compile_pattern(from_name(name), induced=induced)
        rep = check_plan(plan, config=FlexMinerConfig())
        assert rep.findings == [], rep.render()

    def test_every_matching_order_clean(self):
        # The fuzzer draws random orders from this enumeration, so all
        # of them — not just the compiler's pick — must verify.
        for name in sorted(PATTERN_NAMES):
            pattern = from_name(name)
            if pattern.num_vertices > 4:
                continue  # keep the k! sweep cheap
            for induced in (False, True):
                for order in enumerate_matching_orders(pattern):
                    plan = compile_pattern(
                        pattern, induced=induced, matching_order=order
                    )
                    rep = check_plan(plan)
                    assert rep.findings == [], (name, order, rep.render())

    @pytest.mark.parametrize("k", [3, 4])
    def test_motif_multiplan_clean(self, k):
        rep = check_multi_plan(compile_motifs(k))
        assert rep.findings == [], rep.render()

    def test_labeled_plan_clean(self):
        plan = compile_pattern(triangle().with_labels([0, 0, 1]))
        assert check_plan(plan).findings == []

    def test_shape_summary_attached(self):
        plan = compile_pattern(four_cycle())
        rep = check_plan(plan)
        shape = rep.data["shape"]
        assert shape == plan_shape(plan)
        assert shape["levels"] == 4
        assert shape["symmetry_bounds"] == len(plan.symmetry_conditions)

    def test_estimate_attached_with_graph(self):
        from repro.graph import erdos_renyi

        graph = erdos_renyi(50, 0.2, seed=0)
        rep = check_plan(compile_pattern(triangle()), graph=graph)
        levels = rep.data["estimate"]
        assert [lv["depth"] for lv in levels] == [0, 1, 2]
        assert all(lv["nodes"] >= 0 for lv in levels)


# ----------------------------------------------------------------------
# Mutations: every code fires on its minimal broken plan
# ----------------------------------------------------------------------
class TestStructureMutations:
    def test_fm100_non_permutation_order(self):
        plan = compile_pattern(four_cycle())
        broken = replace(plan)
        object.__setattr__(broken, "matching_order", (0, 0, 1, 2))
        rep = check_plan(broken)
        assert rep.codes() == ("FM100",)  # deeper passes short-circuit

    def test_fm101_fm102_reversed_path_order(self):
        plan = compile_pattern(path(4))
        broken = replace(
            plan, matching_order=tuple(reversed(plan.matching_order))
        )
        assert check_plan(broken).codes() == ("FM101", "FM102")

    def test_fm103_induced_exclusions_dropped(self):
        plan = compile_pattern(four_cycle(), induced=True)
        steps = list(plan.steps)
        idx = next(i for i, s in enumerate(steps) if s.disconnected)
        steps[idx] = replace(
            steps[idx], disconnected=(), extra_disconnected=()
        )
        broken = replace(plan, steps=tuple(steps))
        assert check_plan(broken).codes() == ("FM103",)

    def test_fm104_wrong_step_label(self):
        plan = compile_pattern(triangle().with_labels([0, 0, 1]))
        steps = list(plan.steps)
        steps[0] = replace(steps[0], label=(steps[0].label or 0) + 1)
        broken = replace(plan, steps=tuple(steps))
        assert check_plan(broken).codes() == ("FM104",)


class TestSymmetryMutations:
    def test_fm110_stripped_bounds_double_count(self):
        """PR 3's injected bug, caught statically.

        test_verify_differential.py strips the same bounds from a
        backend and needs a data graph + the oracle to notice; the
        group-theoretic check rejects the plan outright.
        """
        plan = compile_pattern(four_cycle())
        broken = replace(
            plan,
            steps=tuple(replace(s, upper_bounds=()) for s in plan.steps),
            symmetry_conditions=(),
        )
        rep = check_plan(broken)
        assert rep.codes() == ("FM110",)
        assert not rep.ok
        [diag] = rep.errors
        assert "automorphism" in diag.title

    def test_fm111_fm112_extra_bound_excludes_embeddings(self):
        plan = compile_pattern(diamond(), use_orientation=False)
        target = plan.steps[1]
        assert not target.upper_bounds
        broken = replace(
            plan,
            steps=(plan.steps[0], replace(target, upper_bounds=(0,)))
            + plan.steps[2:],
        )
        # FM112: declared conditions no longer match the step bounds;
        # FM111: the extra bound kills legitimate id-orderings.
        assert check_plan(broken).codes() == ("FM112", "FM111")

    def test_fm112_alone_when_declaration_drifts(self):
        plan = compile_pattern(four_cycle())
        broken = replace(plan, symmetry_conditions=())
        rep = check_plan(broken)
        assert rep.codes() == ("FM112",)

    def test_fm113_skip_warning_on_large_pattern(self):
        rep = check_plan(compile_pattern(path(10)))
        assert rep.has("FM113")
        assert rep.ok  # a skip is a warning, not a rejection

    def test_fm130_fm131_bogus_orientation(self):
        plan = compile_pattern(four_cycle())
        broken = replace(plan, oriented=True)
        assert check_plan(broken).codes() == ("FM130", "FM131")

    def test_oriented_clique_plan_is_legal(self):
        plan = compile_pattern(k_clique(4))
        assert plan.oriented  # compiler picks orientation for cliques
        assert check_plan(plan).findings == []


class TestInjectivityMutations:
    def test_fm120_inconsistent_skip_flag(self):
        plan = compile_pattern(four_cycle())
        broken = replace(
            plan, steps=tuple(copy.deepcopy(s) for s in plan.steps)
        )
        step = broken.steps[1]
        object.__setattr__(
            step, "covers_all_ancestors", not step.covers_all_ancestors
        )
        assert check_plan(broken).codes() == ("FM120",)


class TestFrontierMutations:
    def test_fm140_base_not_memoized(self):
        plan = compile_pattern(k_clique(4), use_orientation=False)
        user = next(s for s in plan.steps if s.base_step is not None)
        broken = replace(
            plan,
            steps=tuple(
                replace(s, memoize_frontier=False)
                if s.depth == user.base_step
                else s
                for s in plan.steps
            ),
        )
        assert check_plan(broken).codes() == ("FM140",)

    def test_fm141_remainder_mismatch(self):
        plan = compile_pattern(k_clique(4), use_orientation=False)
        user = next(
            s
            for s in plan.steps
            if s.base_step is not None and s.extra_connected
        )
        broken = replace(
            plan,
            steps=tuple(
                replace(s, extra_connected=())
                if s.depth == user.depth
                else s
                for s in plan.steps
            ),
        )
        assert check_plan(broken).codes() == ("FM141",)

    def test_fm142_memoized_never_reused_warns(self):
        plan = compile_pattern(path(4))
        broken = replace(
            plan,
            steps=tuple(
                replace(s, memoize_frontier=True) if s.depth == 1 else s
                for s in plan.steps
            ),
        )
        rep = check_plan(broken)
        assert rep.codes() == ("FM142",)
        assert rep.ok  # warning only


class TestCmapMutations:
    def test_fm150_insert_never_consumed_warns(self):
        plan = compile_pattern(path(4))
        assert plan.cmap_insert_depths == ()  # compiler already prunes
        rep = check_plan(replace(plan, cmap_insert_depths=(1,)))
        assert rep.codes() == ("FM150",)
        assert rep.ok

    def test_fm151_nonexistent_level(self):
        plan = compile_pattern(four_cycle())
        broken = replace(
            plan, cmap_insert_depths=plan.cmap_insert_depths + (7,)
        )
        assert check_plan(broken).codes() == ("FM151",)

    def test_fm151_filter_not_earlier(self):
        plan = compile_pattern(four_cycle())
        broken = replace(
            plan, cmap_insert_filter={**plan.cmap_insert_filter, 1: 2}
        )
        assert check_plan(broken).codes() == ("FM151",)

    def test_fm152_depth_beyond_value_width(self):
        plan = compile_pattern(path(10))
        rep = check_plan(
            replace(plan, cmap_insert_depths=(8,)),
            config=FlexMinerConfig(),
        )
        assert rep.has("FM152")
        assert rep.ok  # overflow-to-SIU is slow, not wrong

    def test_fm153_hints_without_cmap(self):
        plan = compile_pattern(four_cycle())
        rep = check_plan(plan, config=FlexMinerConfig(cmap_bytes=0))
        assert rep.codes() == ("FM153",)
        assert rep.ok


class TestMultiPlanMutations:
    @staticmethod
    def _some_leaf(node):
        if node.pattern_index is not None:
            return node
        for child in node.children:
            found = TestMultiPlanMutations._some_leaf(child)
            if found is not None:
                return found
        return None

    def test_fm121_counting_node_with_children(self):
        plan = copy.deepcopy(compile_motifs(3))
        leaf = self._some_leaf(plan.root)
        leaf.children.append(
            PlanNode(step=VertexStep(depth=leaf.depth + 1, extender=0))
        )
        assert check_multi_plan(plan).codes() == ("FM121",)

    def test_fm160_pattern_never_completes(self):
        plan = copy.deepcopy(compile_motifs(3))
        self._some_leaf(plan.root).pattern_index = None
        assert check_multi_plan(plan).codes() == ("FM160",)

    def test_fm161_depth_discontinuity(self):
        plan = copy.deepcopy(compile_motifs(3))
        node = plan.root.children[0]
        assert node.children
        node.children[0].step = replace(node.children[0].step, depth=3)
        assert check_multi_plan(plan).codes() == ("FM161",)


# ----------------------------------------------------------------------
# The differential bridge: static-pass ⇒ oracle-pass
# ----------------------------------------------------------------------
class TestStaticDynamicInvariant:
    def test_corpus_plans_statically_clean(self):
        from repro.compiler import MultiPlan
        from repro.verify import load_corpus

        cases = load_corpus(CORPUS_DIR)
        assert cases
        for path_, case in cases:
            plan = case.compile()
            rep = (
                check_multi_plan(plan)
                if isinstance(plan, MultiPlan)
                else check_plan(plan)
            )
            assert rep.ok, f"{path_}: {rep.render()}"

    def test_fuzz_static_pass_implies_oracle_pass(self):
        # run_case embeds the invariant: a plan the verifier rejects
        # must also mismatch dynamically, and vice versa a statically
        # clean plan must match the oracle.  200 fresh cases, so a
        # false-positive static rule shows up as a static-dynamic
        # mismatch here, not in production.
        from repro.verify import fuzz

        report = fuzz(
            seed=1105, cases=200, backends=["serial"], shrink=False
        )
        assert report.ok, [
            m.as_dict()
            for f in report.failures
            for m in f.report.mismatches
        ]

    def test_statically_rejected_plan_fails_dynamically(self):
        from repro.verify import VerifyCase, run_case
        from repro.graph import erdos_renyi

        case = VerifyCase(
            graph=erdos_renyi(24, 0.3, seed=5),
            pattern=four_cycle(),
            name="sym-stripped",
        )
        plan = compile_pattern(four_cycle())
        broken = replace(
            plan,
            steps=tuple(replace(s, upper_bounds=()) for s in plan.steps),
            symmetry_conditions=(),
        )
        object.__setattr__(case, "compile", lambda: broken)
        result = run_case(case, backends=["serial"])
        assert result.static_codes == ("FM110",)
        kinds = {m.kind for m in result.mismatches}
        assert "count" in kinds  # the double count really happens
        assert "static-dynamic" not in kinds  # invariant holds


# ----------------------------------------------------------------------
# FM17x: batch-frontier legality proofs
# ----------------------------------------------------------------------
class TestBatchFrontierProofs:
    def _proof(self, rep):
        proof = rep.data.get("batch_frontier")
        assert proof is not None, "proof section must always be attached"
        return proof

    def test_proof_section_always_attached(self):
        rep = check_plan(compile_pattern(triangle()))
        proof = self._proof(rep)
        assert proof["eligible"] is True
        assert proof["decision"] == "batch"
        assert proof["leaf_shape"] == {"kind": "direct", "fixed_slot": 0}
        statuses = {o["code"]: o["status"] for o in proof["obligations"]}
        assert statuses["FM171"] == "proved"
        assert statuses["FM172"] == "proved"
        assert statuses["FM173"] == "proved"
        assert statuses["FM174"] == "unverified"  # needs a graph

    def test_fm174_proved_with_graph(self):
        from repro.graph import erdos_renyi

        rep = check_plan(
            compile_pattern(triangle()), graph=erdos_renyi(40, 0.2, seed=1)
        )
        statuses = {
            o["code"]: o["status"]
            for o in self._proof(rep)["obligations"]
        }
        assert statuses["FM174"] == "proved"

    def test_fm170_two_vertex_plan_ineligible(self):
        from repro.patterns import edge

        plan = compile_pattern(edge())
        # silent without the opt-in (the recursive path is the default)
        assert check_plan(plan).codes() == ()
        rep = check_plan(plan, batch_frontier=True)
        assert rep.codes() == ("FM170",)
        assert rep.ok  # info: the engine falls back, it does not break
        assert self._proof(rep)["decision"] == "recursive"

    def test_fm171_leaf_shape_fallback(self):
        plan = compile_pattern(four_cycle(), induced=True)
        assert check_plan(plan).codes() == ()
        rep = check_plan(plan, batch_frontier=True)
        assert rep.codes() == ("FM171",)
        assert rep.ok  # warning: per-vertex leaves, still batch-legal
        proof = self._proof(rep)
        assert proof["decision"] == "batch"
        assert proof["leaf_shape"]["kind"] is None

    def test_fm172_base_step_without_level_store(self):
        plan = compile_pattern(diamond())
        idx = next(
            i for i, s in enumerate(plan.steps)
            if s.base_step is not None
        )
        # PlanStep.__post_init__ rejects base_step=0, so a corrupted
        # plan (hand-built, or deserialized around the dataclass) is
        # forged the same way: mutate the frozen field in place.
        mutant = replace(plan.steps[idx])
        object.__setattr__(mutant, "base_step", 0)
        bad = replace(
            plan,
            steps=plan.steps[:idx] + (mutant,) + plan.steps[idx + 1:],
        )
        rep = check_plan(bad)
        assert "FM172" in rep.codes()
        assert not rep.ok

    def test_fm173_row_limit_must_admit_a_row(self):
        rep = check_plan(compile_pattern(triangle()), frontier_row_limit=0)
        assert rep.codes() == ("FM173",)
        assert not rep.ok

    def test_fm174_segment_key_overflow(self):
        from repro.graph import erdos_renyi

        rep = check_plan(
            compile_pattern(triangle()),
            graph=erdos_renyi(40, 0.2, seed=1),
            frontier_row_limit=2 ** 62,
        )
        assert rep.codes() == ("FM174",)
        assert not rep.ok

    def test_fm175_multi_pattern_forced_recursive(self):
        plan = compile_motifs(3)
        assert check_multi_plan(plan).codes() == ()
        rep = check_multi_plan(plan, batch_frontier=True)
        assert rep.codes() == ("FM175",)
        assert rep.ok
        assert rep.data["batch_frontier"]["decision"] == "recursive"

    def test_decisions_match_engine_routing(self):
        # The proof's batch/recursive decision must agree with what the
        # engine actually does under batch_frontier=True.
        from repro.engine.explore import PatternAwareEngine
        from repro.graph import erdos_renyi
        from repro.patterns import edge

        graph = erdos_renyi(30, 0.2, seed=7)
        for pattern, induced in [
            (triangle(), False),
            (four_cycle(), True),
            (edge(), False),
            (k_clique(4), False),
        ]:
            plan = compile_pattern(pattern, induced=induced)
            rep = check_plan(plan, batch_frontier=True)
            decision = rep.data["batch_frontier"]["decision"]
            engine = PatternAwareEngine(graph, plan, batch_frontier=True)
            routed = "batch" if engine._frontier_ok else "recursive"
            assert decision == routed, pattern


class TestBatchFrontierFallbackParity:
    """FM17x-flagged plans must *fall back*, not drift: running them
    with batch_frontier=True has to be bit-identical to the recursive
    path (counts and op counters)."""

    def _parity(self, plan, graph, **engine_kwargs):
        from repro.engine import PatternAwareEngine

        base = PatternAwareEngine(graph, plan).run()
        batch = PatternAwareEngine(
            graph, plan, batch_frontier=True, **engine_kwargs
        ).run()
        assert batch.counts == base.counts
        assert batch.counters.as_dict() == base.counters.as_dict()

    def test_fm170_ineligible_plan_identical(self):
        from repro.graph import erdos_renyi
        from repro.patterns import edge

        self._parity(compile_pattern(edge()), erdos_renyi(40, 0.2, seed=2))

    def test_fm171_fallback_leaf_identical(self):
        from repro.graph import erdos_renyi

        self._parity(
            compile_pattern(four_cycle(), induced=True),
            erdos_renyi(40, 0.2, seed=3),
        )

    def test_fm173_tiny_row_limit_identical(self):
        # A row limit the estimate says will engage the fallback: the
        # engine must chunk, not diverge.
        from repro.graph import erdos_renyi

        self._parity(
            compile_pattern(triangle()),
            erdos_renyi(60, 0.15, seed=4),
            frontier_row_limit=4,
        )

    def test_fuzzed_flagged_plans_fall_back_identically(self):
        # Randomized sweep across the library: every plan the proof
        # routes recursive (or flags for fallback) under the opt-in
        # stays bit-identical when actually run with batch_frontier.
        from repro.graph import erdos_renyi
        from repro.patterns import PATTERN_NAMES, from_name

        graph = erdos_renyi(36, 0.18, seed=11)
        flagged = 0
        for name in PATTERN_NAMES:
            for induced in (False, True):
                plan = compile_pattern(from_name(name), induced=induced)
                rep = check_plan(plan, batch_frontier=True)
                if not rep.findings:
                    continue
                flagged += 1
                self._parity(plan, graph)
        assert flagged >= 3  # the sweep actually exercised fallbacks
