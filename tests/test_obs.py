"""Unit tests for the observability layer (``repro.obs``)."""

import json
import logging

import pytest

from repro.obs import (
    HOST_PID,
    NULL_REGISTRY,
    NULL_TRACER,
    SIM_PID,
    DiffRow,
    MetricsRegistry,
    Tracer,
    diff_reports,
    flatten,
    get_logger,
    load_report,
    make_report,
    render_diff,
    render_report,
    validate_trace,
    write_report,
)
from repro.obs.metrics import metric_key


class TestMetrics:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("events")
        c.inc()
        c.inc(4)
        assert c.get() == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_instruments_memoized(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g", pe=3) is reg.gauge("g", pe=3)
        assert reg.gauge("g", pe=3) is not reg.gauge("g", pe=4)

    def test_metric_key_label_order(self):
        assert metric_key("x", {"b": 2, "a": 1}) == "x{a=1,b=2}"
        assert metric_key("x", {}) == "x"

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("n")
        with pytest.raises(TypeError):
            reg.gauge("n")

    def test_gauge(self):
        g = MetricsRegistry().gauge("occupancy")
        g.set(7)
        g.add(-2)
        assert g.get() == 5

    def test_histogram(self):
        h = MetricsRegistry().histogram("lat")
        for v in (1, 2, 3, 100):
            h.observe(v)
        got = h.get()
        assert got["count"] == 4
        assert got["sum"] == 106
        assert got["min"] == 1
        assert got["max"] == 100
        assert got["mean"] == pytest.approx(26.5)
        # 1 -> bucket 0, 2 -> 1, 3 -> 2, 100 -> 7
        assert h.buckets == {0: 1, 1: 1, 2: 1, 7: 1}

    def test_histogram_quantiles_in_get(self):
        h = MetricsRegistry().histogram("lat")
        for v in range(1, 9):
            h.observe(v)
        got = h.get()
        assert got["p50"] == pytest.approx(4.0)
        assert got["p90"] <= got["p99"] <= 8.0
        assert got["p50"] <= got["p90"]

    def test_quantile_exact_for_single_valued_bucket(self):
        h = MetricsRegistry().histogram("lat")
        for _ in range(8):
            h.observe(4)
        # interpolation lands inside (2, 4]; min/max clamp makes the
        # single-valued distribution exact at every quantile
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 4.0

    def test_quantile_clamped_to_observed_range(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(3)
        h.observe(100)
        assert h.quantile(0.0) == 3.0
        assert h.quantile(1.0) == 100.0
        assert 3.0 <= h.quantile(0.5) <= 100.0

    def test_quantile_empty_and_invalid(self):
        h = MetricsRegistry().histogram("lat")
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_snapshot_and_as_dict(self):
        reg = MetricsRegistry()
        reg.counter("c", pe=1).inc(3)
        reg.histogram("h").observe(5)
        snap = reg.snapshot()
        assert snap["c{pe=1}"] == 3
        assert snap["h"]["count"] == 1
        full = reg.as_dict()
        assert full["c{pe=1}"]["kind"] == "counter"
        assert full["c{pe=1}"]["labels"] == {"pe": 1}
        assert full["h"]["kind"] == "histogram"
        assert full["h"]["buckets"] == {3: 1}

    def test_diff_skips_histograms(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.histogram("h").observe(1)
        before = reg.snapshot()
        reg.counter("c").inc(3)
        reg.counter("new").inc(1)
        reg.histogram("h").observe(1)
        assert reg.diff(before) == {"c": 3, "new": 1}

    def test_absorb_nested(self):
        reg = MetricsRegistry()
        reg.absorb(
            {"cycles": 10, "cache": {"hits": 3}, "name": "skip",
             "list": [1, 2]},
            prefix="sim.",
        )
        snap = reg.snapshot()
        assert snap == {"sim.cycles": 10, "sim.cache.hits": 3}

    def test_disabled_registry_is_inert(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("c")
        c.inc(5)
        assert c.get() == 0
        # every instrument of a disabled registry is one shared null
        assert reg.counter("c") is reg.gauge("g") is reg.histogram("h")
        assert len(reg) == 0
        assert reg.snapshot() == {}
        assert NULL_REGISTRY.enabled is False

    def test_clear_and_len(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b")
        assert len(reg) == 2
        assert sorted(reg) == ["a", "b"]
        reg.clear()
        assert len(reg) == 0


class TestTracer:
    def test_span_emits_matched_pair(self):
        t = Tracer()
        with t.span("compile", pattern="triangle"):
            pass
        events = t.events()
        assert [e["ph"] for e in events] == ["B", "E"]
        assert events[0]["name"] == events[1]["name"] == "compile"
        assert events[0]["args"] == {"pattern": "triangle"}
        assert validate_trace(events) == []

    def test_primitives(self):
        t = Tracer()
        t.complete("task", 10.0, 5.0, pid=SIM_PID, tid=2, cat="task")
        t.instant("overflow", 12.0, pid=SIM_PID, tid=2)
        t.counter("noc", 13.0, {"requests": 7}, pid=SIM_PID)
        x, i, c = t.events()
        assert (x["ph"], x["dur"], x["tid"]) == ("X", 5.0, 2)
        assert (i["ph"], i["s"]) == ("i", "t")
        assert (c["ph"], c["args"]) == ("C", {"requests": 7})

    def test_export_sorted_and_metadata_first(self):
        t = Tracer()
        t.thread_name("PE 0", pid=SIM_PID, tid=0)
        t.complete("b", 20.0, 1.0, pid=SIM_PID)
        t.complete("a", 5.0, 1.0, pid=SIM_PID, tid=1)
        events = t.events()
        assert events[0]["ph"] == "M"
        assert [e["ts"] for e in events[1:]] == [5.0, 20.0]
        assert validate_trace(t.to_dict()) == []

    def test_json_round_trip(self, tmp_path):
        t = Tracer()
        with t.span("phase"):
            t.complete("work", t.now_us(), 1.0)
        loaded = json.loads(t.to_json())
        assert loaded["otherData"]["tool"] == "flexminer"
        path = tmp_path / "trace.json"
        t.write(str(path))
        with open(path) as f:
            on_disk = json.load(f)
        assert on_disk == loaded
        assert validate_trace(on_disk) == []

    def test_max_events_drops(self):
        t = Tracer(max_events=2)
        for i in range(5):
            t.instant("e", float(i))
        assert len(t._events) == 2
        assert t.dropped == 3
        assert t.to_dict()["otherData"]["dropped_events"] == 3

    def test_null_tracer_is_inert(self):
        NULL_TRACER.begin("x", 0)
        NULL_TRACER.complete("x", 0, 1)
        with NULL_TRACER.span("x"):
            pass
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.to_dict() == {"traceEvents": []}

    def test_pid_constants_distinct(self):
        assert HOST_PID != SIM_PID

    def test_validate_catches_problems(self):
        bad = [
            {"name": "a", "ph": "B", "ts": 2.0, "pid": 0, "tid": 0},
            {"name": "b", "ph": "E", "ts": 1.0, "pid": 0, "tid": 0},
            {"name": "c", "ph": "E", "ts": 3.0, "pid": 0, "tid": 1},
            {"name": "d", "ph": "X", "ts": 4.0, "pid": 0, "tid": 0},
            {"name": "e", "ph": "B", "ts": -1, "pid": 0, "tid": 0},
            {"name": "f", "ph": "B", "ts": 5.0, "pid": 0, "tid": 0},
        ]
        problems = validate_trace(bad)
        assert any("non-monotonic" in p for p in problems)  # b after a
        assert any("closes" in p for p in problems)  # b closes a
        assert any("no open span" in p for p in problems)  # c
        assert any("without dur" in p for p in problems)  # d
        assert any("bad ts" in p for p in problems)  # e
        assert any("never closed" in p for p in problems)  # f left open


class TestReports:
    def test_envelope(self):
        report = make_report("sim", {"cycles": 5}, meta={"dataset": "Mi"})
        assert report["schema"] == "flexminer.run/1"
        assert report["kind"] == "sim"
        assert report["meta"] == {"dataset": "Mi"}
        assert report["data"] == {"cycles": 5}

    def test_write_load_round_trip(self, tmp_path):
        path = str(tmp_path / "r.json")
        report = make_report("sim", {"cycles": 5})
        assert write_report(path, report) == path
        assert load_report(path) == report

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_report(str(path))

    def test_flatten(self):
        flat = flatten({
            "schema": "dropped",
            "a": {"b": 1},
            "counts": [10, 20],
            "mixed": [1, {"x": 2}],
            "none": None,
        })
        assert flat == {"a.b": 1, "counts.0": 10, "counts.1": 20,
                        "none": None}

    def test_diff_rows(self):
        rows = diff_reports({"a": 1, "b": 2}, {"a": 1, "b": 4, "c": 9})
        by_key = {r.key: r for r in rows}
        assert not by_key["a"].changed
        assert by_key["b"].delta == 2
        assert by_key["b"].ratio == 2.0
        assert by_key["c"].before is None
        assert by_key["c"].ratio is None

    def test_zero_baseline_has_no_ratio(self):
        assert DiffRow("k", 0, 5).ratio is None
        assert DiffRow("k", 0, 5).delta == 5

    def test_render_report(self):
        text = render_report(make_report("sim", {"cycles": 5}))
        assert "data.cycles" in text
        assert ": 5" in text

    def test_render_diff_hides_unchanged(self):
        rows = diff_reports({"a": 1, "b": 2}, {"a": 1, "b": 4})
        text = render_diff(rows)
        assert len(text.splitlines()) == 1
        assert text.startswith("b")
        assert "(2.000x)" in text
        assert len(render_diff(rows, all_rows=True).splitlines()) == 2
        assert render_diff([DiffRow("a", 1, 1)]) == "no differences"


class TestLog:
    def test_namespacing(self):
        assert get_logger("bench").name == "repro.bench"
        assert get_logger("repro.hw").name == "repro.hw"

    def test_records_propagate_to_caplog(self, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro"):
            get_logger("test_channel").debug("hello %d", 7)
        assert "hello 7" in caplog.text

    def test_env_var_attaches_handler(self, monkeypatch):
        from repro.obs import log as obslog

        logger = logging.getLogger("repro")
        before_handlers = list(logger.handlers)
        before_level = logger.level
        monkeypatch.setenv(obslog.ENV_VAR, "debug")
        try:
            configured = obslog.configure(force=True)
            assert configured.level == logging.DEBUG
            assert any(
                isinstance(h, logging.StreamHandler)
                for h in configured.handlers
            )
        finally:
            monkeypatch.delenv(obslog.ENV_VAR, raising=False)
            logger.handlers[:] = before_handlers
            logger.setLevel(before_level)
            obslog.configure(force=True)  # re-settle without the env var

    def test_bad_level_rejected(self):
        from repro.obs.log import _coerce_level

        with pytest.raises(ValueError):
            _coerce_level("not-a-level")
        assert _coerce_level("info") == logging.INFO
        assert _coerce_level(10) == 10
