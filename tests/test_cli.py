"""Tests for the flexminer command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "flexminer" in capsys.readouterr().out


class TestCompile:
    def test_prints_ir(self, capsys):
        assert main(["compile", "4-cycle"]) == 0
        out = capsys.readouterr().out
        assert "pruneBy" in out
        assert "cmap:" in out

    def test_induced_flag(self, capsys):
        assert main(["compile", "4-cycle", "--induced"]) == 0
        assert "notAdj" in capsys.readouterr().out

    def test_unknown_pattern(self):
        from repro.errors import PatternError

        with pytest.raises(PatternError):
            main(["compile", "octagon-of-doom"])


class TestMineAndSim:
    def test_mine_dataset(self, capsys):
        assert main(["mine", "triangle", "--dataset", "As"]) == 0
        out = capsys.readouterr().out
        assert "matches:" in out

    def test_mine_file(self, tmp_path, capsys):
        path = tmp_path / "g.el"
        path.write_text("0 1\n1 2\n0 2\n")
        assert main(["mine", "triangle", "--graph", str(path)]) == 0
        assert "matches: 1" in capsys.readouterr().out

    def test_sim(self, capsys):
        assert main(
            ["sim", "triangle", "--dataset", "As", "--pes", "4",
             "--cmap-kb", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "PEs          : 4" in out
        assert "NoC requests" in out

    def test_sim_and_mine_agree(self, capsys):
        main(["mine", "triangle", "--dataset", "As"])
        mine_out = capsys.readouterr().out
        main(["sim", "triangle", "--dataset", "As", "--pes", "2"])
        sim_out = capsys.readouterr().out
        mined = int(mine_out.split("matches:")[1].split()[0])
        simmed = int(sim_out.split("matches      :")[1].split()[0])
        assert mined == simmed


class TestMineParallel:
    def test_workers_flag_agrees_with_serial(self, capsys):
        assert main(["mine", "triangle", "--dataset", "As"]) == 0
        serial_out = capsys.readouterr().out
        assert main(
            ["mine", "triangle", "--dataset", "As", "--workers", "2"]
        ) == 0
        parallel_out = capsys.readouterr().out
        serial = int(serial_out.split("matches:")[1].split()[0])
        parallel = int(parallel_out.split("matches:")[1].split()[0])
        assert serial == parallel

    def test_split_degree_routes_to_parallel_miner(self, capsys):
        # --split-degree alone (workers=1) must still take the
        # ParallelMiner path and keep the counts right.
        assert main(
            ["mine", "triangle", "--dataset", "As", "--split-degree", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "matches:" in out

    def test_workers_json_report_records_workers(self, capsys):
        import json as jsonlib

        assert main(
            ["mine", "triangle", "--dataset", "As", "--workers", "2",
             "--emit-json"]
        ) == 0
        report = jsonlib.loads(capsys.readouterr().out)
        assert report["meta"]["workers"] == 2


class TestSimParallel:
    def test_workers_flag_matches_serial(self, capsys):
        assert main(
            ["sim", "triangle", "--dataset", "As", "--pes", "4"]
        ) == 0
        serial_out = capsys.readouterr().out
        assert main(
            ["sim", "triangle", "--dataset", "As", "--pes", "4",
             "--workers", "2"]
        ) == 0
        parallel_out = capsys.readouterr().out
        # Bit-identical contract: the rendered summary (cycles, cache
        # rates, all counters) is byte-for-byte the serial one.
        assert parallel_out == serial_out

    def test_workers_json_report_records_workers(self, capsys):
        import json as jsonlib

        assert main(
            ["sim", "triangle", "--dataset", "As", "--pes", "2",
             "--workers", "2", "--emit-json"]
        ) == 0
        report = jsonlib.loads(capsys.readouterr().out)
        assert report["meta"]["workers"] == 2

    def test_trace_forces_serial(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(
            ["sim", "triangle", "--dataset", "As", "--pes", "2",
             "--workers", "2", "--trace", str(trace)]
        ) == 0
        err = capsys.readouterr().err
        assert "running serial" in err
        assert trace.exists()


class TestProfile:
    def test_profile_mine_trace_and_phase_table(self, tmp_path, capsys):
        import json as jsonlib

        from repro.obs import WORKERS_PID, validate_trace

        trace = tmp_path / "prof.json"
        assert main(
            ["profile", "mine", "triangle", "--dataset", "As",
             "--workers", "2", "--trace", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert "matches:" in out
        assert "% wall" in out  # phase breakdown table
        assert "mine" in out  # timeline + table name the phases
        with open(trace) as f:
            data = jsonlib.load(f)
        assert validate_trace(data) == []
        lanes = {
            e["tid"]
            for e in data["traceEvents"]
            if e.get("pid") == WORKERS_PID and e.get("ph") == "X"
        }
        # coordinator rail plus one lane per worker
        assert lanes == {0, 1, 2}

    def test_profile_default_trace_path(self, tmp_path, monkeypatch,
                                        capsys):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["profile", "mine", "triangle", "--dataset", "As"]
        ) == 0
        assert (tmp_path / "profile_trace.json").exists()

    def test_profile_sim(self, tmp_path, capsys):
        trace = tmp_path / "prof.json"
        assert main(
            ["profile", "sim", "triangle", "--dataset", "As",
             "--pes", "2", "--trace", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "% wall" in out
        assert trace.exists()

    def test_profile_emit_json_carries_payload(self, tmp_path, capsys):
        import json as jsonlib

        assert main(
            ["profile", "mine", "triangle", "--dataset", "As",
             "--trace", str(tmp_path / "t.json"), "--emit-json"]
        ) == 0
        report = jsonlib.loads(capsys.readouterr().out)
        assert report["meta"]["profiled"] is True
        prof = report["data"]["profile"]
        assert prof["enabled"] is True
        assert prof["coverage"] > 0.0
        assert any(p["name"] == "mine" for p in prof["phases"])

    def test_profile_requires_subcommand(self, capsys):
        assert main(["profile"]) == 2
        assert "give a command" in capsys.readouterr().err

    def test_profile_rejects_other_commands(self, capsys):
        assert main(["profile", "compile", "triangle"]) == 2
        assert "only mine" in capsys.readouterr().err


class TestVerify:
    def test_smoke_ok(self, capsys):
        assert main(
            ["verify", "--seed", "0", "--cases", "3",
             "--backends", "serial,materialize"]
        ) == 0
        out = capsys.readouterr().out
        assert "verify: OK" in out
        assert "3 case(s)" in out

    def test_corpus_and_report(self, tmp_path, capsys):
        import json as jsonlib

        from repro.graph import CSRGraph
        from repro.patterns import triangle
        from repro.verify import VerifyCase, save_case

        corpus = tmp_path / "corpus"
        corpus.mkdir()
        save_case(
            str(corpus / "tri.json"),
            VerifyCase(
                graph=CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)]),
                pattern=triangle(),
                expected=(1,),
                name="cli-tri",
            ),
        )
        report_path = tmp_path / "verify.json"
        assert main(
            ["verify", "--seed", "1", "--cases", "2",
             "--backends", "serial,kernel-probe",
             "--corpus", str(corpus), "--report", str(report_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "corpus: 1 case(s) replayed, 0 failed" in out
        payload = jsonlib.loads(report_path.read_text())
        assert payload["kind"] == "verify"
        assert payload["data"]["ok"] is True
        assert payload["data"]["fuzz"]["seed"] == 1

    def test_bad_corpus_fails(self, tmp_path, capsys):
        import json as jsonlib

        from repro.graph import CSRGraph
        from repro.patterns import triangle
        from repro.verify import VerifyCase, case_to_dict

        corpus = tmp_path / "corpus"
        corpus.mkdir()
        payload = case_to_dict(
            VerifyCase(
                graph=CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)]),
                pattern=triangle(),
                expected=(99,),  # wrong on purpose
                name="cli-bad",
            )
        )
        (corpus / "bad.json").write_text(jsonlib.dumps(payload))
        assert main(
            ["verify", "--seed", "1", "--cases", "1",
             "--backends", "serial", "--no-shrink",
             "--corpus", str(corpus)]
        ) == 1
        out = capsys.readouterr().out
        assert "corpus FAIL" in out
        assert "MISMATCHES FOUND" in out

    def test_unknown_backend_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError, match="unknown backend"):
            main(["verify", "--cases", "1", "--backends", "warp-drive"])


class TestOtherCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("As", "Mi", "Pa", "Yo", "Lj", "Or"):
            assert name in out

    def test_motifs(self, capsys):
        assert main(["motifs", "3", "--dataset", "As"]) == 0
        out = capsys.readouterr().out
        assert "wedge" in out and "triangle" in out


class TestValidateAndEstimate:
    def test_validate_good_plan(self, tmp_path, capsys):
        main(["compile", "4-cycle"])
        ir_text = capsys.readouterr().out
        path = tmp_path / "plan.ir"
        path.write_text(ir_text)
        assert main(["validate", str(path), "--trials", "5"]) == 0
        assert "validated" in capsys.readouterr().out

    def test_validate_broken_plan(self, tmp_path, capsys):
        main(["compile", "4-cycle"])
        ir_text = capsys.readouterr().out
        # Strip every symmetry bound: duplicates appear.
        broken = ir_text.replace("pruneBy(v0", "pruneBy(inf").replace(
            "pruneBy(v1", "pruneBy(inf"
        )
        path = tmp_path / "broken.ir"
        path.write_text(broken)
        assert main(["validate", str(path), "--trials", "20"]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_estimate(self, capsys):
        assert main(["estimate", "triangle", "--dataset", "As"]) == 0
        out = capsys.readouterr().out
        assert "estimated" in out

    def test_estimate_with_measure(self, capsys):
        assert main(
            ["estimate", "triangle", "--dataset", "As", "--measure"]
        ) == 0
        assert "measured" in capsys.readouterr().out
