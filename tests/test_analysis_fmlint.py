"""Tests for the determinism lint (repro.analysis.fmlint).

Every rule is exercised on at least one failing and one passing
snippet (the ISSUE's acceptance bar), plus the suppression syntax, the
path scoping, and the headline claim: the shipped tree lints clean.
"""

import os
import textwrap

import pytest

from repro.analysis import (
    CATALOG,
    DEFAULT_RULES,
    lint_paths,
    lint_source,
)

ENGINE = "src/repro/engine/snippet.py"
HW = "src/repro/hw/snippet.py"
OTHER = "src/repro/obs/snippet.py"

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "src",
    "repro",
)


def codes(source, path=ENGINE):
    return [d.code for d in lint_source(textwrap.dedent(source), path)]


class TestRuleRegistry:
    def test_rules_unique_and_catalogued(self):
        rule_codes = [rule.code for rule in DEFAULT_RULES]
        assert len(rule_codes) == len(set(rule_codes))
        for code in rule_codes:
            assert code in CATALOG
            assert CATALOG[code].hint  # every rule ships a fix hint


class TestUnorderedIteration:
    def test_for_over_set_literal_flagged(self):
        assert codes("for x in {1, 2, 3}:\n    print(x)\n") == ["FM201"]

    def test_listcomp_over_set_call_flagged(self):
        assert codes("out = [v for v in set(items)]\n") == ["FM201"]

    def test_set_algebra_flagged(self):
        src = "for x in set(a) - set(b):\n    use(x)\n"
        assert codes(src) == ["FM201"]

    def test_sorted_wrapper_passes(self):
        assert codes("for x in sorted({1, 2, 3}):\n    print(x)\n") == []

    def test_setcomp_from_set_passes(self):
        # A set built from a set stays unordered: no order is baked in.
        assert codes("out = {v for v in set(items)}\n") == []

    def test_rule_scoped_to_engine_and_hw(self):
        src = "for x in {1, 2}:\n    print(x)\n"
        assert codes(src, path=OTHER) == []
        assert codes(src, path=HW) == ["FM201"]


class TestFloatCycles:
    def test_float_literal_into_cycles_flagged(self):
        src = "stats.setop_cycles += n * 1.5\n"
        assert codes(src) == ["FM202"]

    def test_subtraction_flagged_too(self):
        assert codes("cycles -= 0.5\n") == ["FM202"]

    def test_coerced_contribution_passes(self):
        assert codes("stats.setop_cycles += int(n * 1.5)\n") == []
        assert codes("total_cycles += math.ceil(n * 0.4)\n") == []

    def test_non_cycle_target_passes(self):
        assert codes("weight += 1.5\n") == []

    def test_integer_contribution_passes(self):
        assert codes("stats.cmap_cycles += len(batch) * 2\n") == []


class TestMetricMutation:
    def test_write_on_counter_flagged(self):
        src = 'registry.counter("ops").value = 3\n'
        assert codes(src, path=OTHER) == ["FM203"]

    def test_augassign_on_gauge_flagged(self):
        src = 'metrics.gauge("depth").value += 1\n'
        assert codes(src, path=OTHER) == ["FM203"]

    def test_inc_api_passes(self):
        assert codes('registry.counter("ops").inc(3)\n', path=OTHER) == []


class TestSharedMemory:
    def test_leaked_segment_flagged(self):
        src = """
        def worker(name):
            shm = shared_memory.SharedMemory(name=name)
            view = np.frombuffer(shm.buf, dtype=np.int64)
            return view.sum()
        """
        assert codes(src, path=OTHER) == ["FM204"]

    def test_closed_segment_passes(self):
        src = """
        def worker(name):
            shm = shared_memory.SharedMemory(name=name)
            try:
                view = np.frombuffer(shm.buf, dtype=np.int64)
                return int(view.sum())
            finally:
                shm.close()
        """
        assert codes(src, path=OTHER) == []

    def test_handed_off_segment_passes(self):
        src = """
        def create(nbytes):
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            return shm
        """
        assert codes(src, path=OTHER) == []


class TestWallclock:
    @pytest.mark.parametrize(
        "call",
        [
            "time.time()",
            "random.random()",
            "datetime.datetime.now()",
            "np.random.default_rng()",
            "rng.random.shuffle(xs)",
        ],
    )
    def test_nondeterminism_in_hw_flagged(self, call):
        assert codes(f"x = {call}\n", path=HW) == ["FM205"]

    def test_timing_call_in_hw_hits_both_rules(self):
        # Wall clocks in the simulator are both nondeterminism (FM205)
        # and a profiling bypass (FM206).
        assert codes("t = time.perf_counter()\n", path=HW) == [
            "FM205",
            "FM206",
        ]

    def test_pure_math_passes(self):
        assert codes("x = math.sqrt(2.0)\n", path=HW) == []

    def test_rule_scoped_to_hw_only(self):
        # time.time() in the engine is FM206's business, not FM205's —
        # and only for the profiled clock functions.
        assert codes("t = time.time()\n", path=ENGINE) == []


class TestDirectTiming:
    @pytest.mark.parametrize(
        "call",
        [
            "time.perf_counter()",
            "time.perf_counter_ns()",
            "time.process_time()",
            "time.monotonic()",
        ],
    )
    def test_dotted_call_in_engine_flagged(self, call):
        assert codes(f"t = {call}\n", path=ENGINE) == ["FM206"]

    def test_from_import_alias_flagged(self):
        src = "from time import perf_counter\n\nt = perf_counter()\n"
        assert codes(src, path=ENGINE) == ["FM206"]

    def test_from_import_asname_flagged(self):
        src = "from time import perf_counter as clock\n\nt = clock()\n"
        assert codes(src, path=ENGINE) == ["FM206"]

    def test_bare_name_without_time_import_passes(self):
        # perf_counter from some local helper is not the time module
        assert codes("t = perf_counter()\n", path=ENGINE) == []

    def test_non_timing_time_attr_passes(self):
        assert codes("s = time.strftime('%Y')\n", path=ENGINE) == []

    def test_rule_scoped_to_engine_and_hw(self):
        # repro.obs is the sanctioned home for wall-clock reads; the
        # bench harness may also time itself.
        src = "t = time.perf_counter()\n"
        assert codes(src, path=OTHER) == []
        assert codes(src, path="src/repro/bench/harness.py") == []

    def test_line_disable(self):
        src = "t = time.perf_counter()  # fmlint: disable=FM206\n"
        assert codes(src, path=ENGINE) == []


class TestProcessConstruction:
    POOL = "src/repro/engine/pool.py"

    @pytest.mark.parametrize(
        "call",
        [
            "mp.Process(target=f)",
            "ctx.Process(target=f, daemon=True)",
            "multiprocessing.Pool(4)",
            "ctx.Pool(workers)",
        ],
    )
    def test_dotted_construction_in_engine_flagged(self, call):
        assert codes(f"p = {call}\n", path=ENGINE) == ["FM207"]

    def test_from_import_flagged(self):
        src = "from multiprocessing import Process\n\np = Process(target=f)\n"
        assert codes(src, path=ENGINE) == ["FM207"]

    def test_from_import_asname_flagged(self):
        src = (
            "from multiprocessing.context import Process as Worker\n\n"
            "p = Worker(target=f)\n"
        )
        assert codes(src, path=ENGINE) == ["FM207"]

    def test_bare_name_without_mp_import_passes(self):
        # A local class named Pool is not multiprocessing's.
        assert codes("p = Pool(4)\n", path=ENGINE) == []

    def test_engine_pool_module_exempt(self):
        src = "p = ctx.Process(target=f)\n"
        assert codes(src, path=self.POOL) == []
        assert codes(src, path=ENGINE) == ["FM207"]

    def test_rule_scoped_to_engine(self):
        src = "p = ctx.Process(target=f)\n"
        assert codes(src, path=OTHER) == []
        assert codes(src, path="src/repro/hw/parallel_sim.py") == []

    def test_line_disable(self):
        src = "p = ctx.Process(target=f)  # fmlint: disable=FM207\n"
        assert codes(src, path=ENGINE) == []


class TestElementwiseLoops:
    KERNELS = "src/repro/engine/kernels.py"

    def test_for_over_ndarray_param_flagged(self):
        src = """
        import numpy as np

        def f(a: np.ndarray) -> int:
            total = 0
            for x in a:
                total += int(x)
            return total
        """
        assert codes(src, path=self.KERNELS) == ["FM208"]

    def test_range_len_flagged(self):
        src = """
        import numpy as np

        def f(a: np.ndarray) -> int:
            total = 0
            for i in range(len(a)):
                total += int(a[i])
            return total
        """
        assert codes(src, path=self.KERNELS) == ["FM208"]

    def test_slice_and_enumerate_flagged(self):
        src = """
        import numpy as np

        def f(a: np.ndarray):
            for x in a[1:]:
                yield x
            for i, x in enumerate(a):
                yield i, x
        """
        assert codes(src, path=self.KERNELS) == ["FM208", "FM208"]

    def test_comprehension_flagged(self):
        src = """
        import numpy as np

        def f(a: np.ndarray):
            return [int(x) for x in a]
        """
        assert codes(src, path=self.KERNELS) == ["FM208"]

    def test_loop_over_sequence_of_arrays_passes(self):
        # intersect_multi's loop over a *list of arrays* is per-array,
        # not per-element; only plain ndarray annotations are policed.
        src = """
        import numpy as np
        from typing import Sequence

        def f(arrays: Sequence[np.ndarray]):
            out = arrays[0]
            for other in arrays[1:]:
                out = out & other
            return out
        """
        assert codes(src, path=self.KERNELS) == []

    def test_vectorized_body_passes(self):
        src = """
        import numpy as np

        def f(a: np.ndarray, b: np.ndarray) -> int:
            return int((a[:, None] == b).sum())
        """
        assert codes(src, path=self.KERNELS) == []

    def test_rule_scoped_to_kernels(self):
        src = """
        import numpy as np

        def f(a: np.ndarray) -> int:
            total = 0
            for x in a:
                total += int(x)
            return total
        """
        assert codes(src, path=ENGINE) == []
        assert codes(src, path=OTHER) == []

    def test_documented_scalar_fallback_disable(self):
        src = """
        import numpy as np

        def f(a: np.ndarray) -> int:
            total = 0
            for x in a:  # fmlint: disable=FM208
                total += int(x)
            return total
        """
        assert codes(src, path=self.KERNELS) == []


class TestSuppression:
    def test_line_disable_specific_code(self):
        src = "for x in {1, 2}:  # fmlint: disable=FM201\n    print(x)\n"
        assert codes(src) == []

    def test_line_disable_wrong_code_still_fires(self):
        src = "for x in {1, 2}:  # fmlint: disable=FM205\n    print(x)\n"
        assert codes(src) == ["FM201"]

    def test_bare_disable_suppresses_all(self):
        src = "for x in {1, 2}:  # fmlint: disable\n    print(x)\n"
        assert codes(src) == []

    def test_skip_file(self):
        src = "# fmlint: skip-file\nfor x in {1, 2}:\n    print(x)\n"
        assert codes(src) == []

    def test_skip_file_must_be_near_top(self):
        lines = ["pass"] * 12 + [
            "# fmlint: skip-file",
            "for x in {1, 2}:",
            "    print(x)",
        ]
        assert codes("\n".join(lines) + "\n") == ["FM201"]


class TestDriver:
    def test_syntax_error_reported_as_fm200(self, tmp_path):
        bad = tmp_path / "engine" / "broken.py"
        bad.parent.mkdir()
        bad.write_text("def nope(:\n")
        rep = lint_paths([str(tmp_path)])
        assert rep.codes() == ("FM200",)
        assert not rep.ok

    def test_findings_carry_path_and_line(self, tmp_path):
        mod = tmp_path / "hw" / "mod.py"
        mod.parent.mkdir()
        mod.write_text("import time\n\nt = time.time()\n")
        rep = lint_paths([str(tmp_path)])
        [diag] = rep.findings
        assert diag.code == "FM205"
        assert diag.location.endswith("mod.py:3")

    def test_shipped_tree_lints_clean(self):
        # The headline guarantee: bit-identical reports rest on these
        # conventions, and the tree as shipped satisfies all of them.
        rep = lint_paths([SRC_ROOT])
        assert rep.findings == [], rep.render()
        assert rep.data["files"] > 50
