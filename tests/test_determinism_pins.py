"""Pinned regressions for the determinism-lint audit (fmlint satellite).

The audit declared PEStats' unit breakdowns ``int`` (busy/stall stay
float for fractional issue gaps) because the parallel simulator ships
them as per-task integer deltas that must re-group exactly.  These pins
fail if any producer starts charging fractional unit cycles again —
the drift fmlint FM202 guards against syntactically, asserted here on
a real simulation.
"""

from repro.compiler import compile_pattern
from repro.graph import erdos_renyi
from repro.hw import FlexMinerConfig, simulate
from repro.patterns import four_cycle, triangle

GRAPH = erdos_renyi(40, 0.25, seed=9)


def _sim(pattern, **overrides):
    config = FlexMinerConfig.small(**overrides)
    accel_plan = compile_pattern(pattern)
    return simulate(GRAPH, accel_plan, config)


class TestIntegerCycleDomains:
    def test_unit_breakdowns_are_int(self):
        report = _sim(four_cycle())
        assert type(report.pruner_cycles) is int
        assert type(report.setop_cycles) is int
        assert type(report.cmap_cycles) is int
        # The sim actually charged unit work (which units depends on
        # the plan; the 4-cycle exercises the pruner and the c-map).
        charged = (
            report.pruner_cycles + report.setop_cycles + report.cmap_cycles
        )
        assert charged > 0

    def test_int_under_both_timing_paths(self):
        # The vectorized kernels and the legacy per-element loops must
        # both stay in the integer domain (and agree, as test_hw_*
        # already pins); a float literal in either drifts the re-group.
        fast = _sim(triangle(), timing_kernels=True)
        slow = _sim(triangle(), timing_kernels=False)
        for report in (fast, slow):
            assert type(report.pruner_cycles) is int
            assert type(report.setop_cycles) is int
            assert type(report.cmap_cycles) is int
        assert fast.setop_cycles == slow.setop_cycles

    def test_per_pe_stats_are_int(self):
        from repro.hw.accelerator import FlexMinerAccelerator

        accel = FlexMinerAccelerator(
            GRAPH, compile_pattern(triangle()), FlexMinerConfig.small()
        )
        accel.run()
        for pe in accel.pes:
            assert type(pe.stats.pruner_cycles) is int
            assert type(pe.stats.setop_cycles) is int
            assert type(pe.stats.cmap_cycles) is int

    def test_json_roundtrip_preserves_int(self):
        import json

        report = _sim(triangle())
        data = json.loads(report.to_json())
        assert isinstance(data["setop_cycles"], int)
        assert isinstance(data["cmap_cycles"], int)
