"""Soak/leak tests: pools and services must clean up, every time.

A resident serving process opens and closes pools for as long as it
lives; a single leaked shared-memory segment or orphaned worker per
cycle is a production outage.  These tests cycle pools and services —
including crash and wedge rounds — and assert the host is left exactly
as found: no new ``/dev/shm`` segments, no live child processes, and
structured errors (never hangs) for wedged workers.
"""

import multiprocessing
import os
import signal

import pytest

from repro.compiler import compile_pattern
from repro.engine import MinerPool, PoolWorkerError
from repro.graph import erdos_renyi
from repro.serve import MineRequest, MiningService
from repro.patterns import k_clique, triangle

ER = erdos_renyi(120, 0.07, seed=21, name="er")
PL = erdos_renyi(90, 0.09, seed=23, name="pl")

SHM_DIR = "/dev/shm"


def shm_segments():
    """Current shared-memory segment names (empty off-Linux)."""
    try:
        return set(os.listdir(SHM_DIR))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


@pytest.fixture
def leak_check():
    """Assert no new shm segments / child processes survive the test."""
    before_shm = shm_segments()
    yield
    leaked = shm_segments() - before_shm
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
    children = multiprocessing.active_children()
    assert not children, f"orphaned worker processes: {children}"


class TestPoolSoak:
    def test_repeated_pool_cycles_leak_nothing(self, leak_check):
        plan = compile_pattern(triangle())
        expected = None
        for round_no in range(6):
            workers = 1 + round_no % 2  # alternate in-process / forked
            with MinerPool(ER, workers=workers) as pool:
                result = pool.mine(plan)
            if expected is None:
                expected = result.counts
            assert result.counts == expected

    def test_killed_worker_round_still_cleans_up(self, leak_check):
        plan = compile_pattern(triangle())
        for _ in range(3):
            pool = MinerPool(ER, workers=2)
            try:
                pool.mine(plan)
                victim = pool._procs[0]
                victim.terminate()
                victim.join()
                with pytest.raises(PoolWorkerError) as exc:
                    pool.mine(plan)
                assert exc.value.reason == "died"
            finally:
                pool.close()

    def test_wedged_worker_times_out_and_cleans_up(self, leak_check):
        # SIGSTOP wedges workers (alive, unresponsive): the request
        # must end in a structured timeout error, and close() must
        # still reclaim every segment and process.
        plan = compile_pattern(triangle())
        pool = MinerPool(ER, workers=2)
        try:
            pool.mine(plan)
            for proc in pool._procs:
                os.kill(proc.pid, signal.SIGSTOP)
            with pytest.raises(PoolWorkerError) as exc:
                pool.mine(plan, timeout_s=1.0)
            assert exc.value.reason == "timeout"
        finally:
            for proc in pool._procs:
                try:
                    os.kill(proc.pid, signal.SIGCONT)
                except ProcessLookupError:  # pragma: no cover
                    pass
            pool.close()

    def test_unused_pool_cycles_leak_nothing(self, leak_check):
        for _ in range(5):
            MinerPool(ER, workers=2).close()  # never forked


class TestServiceSoak:
    def test_repeated_service_cycles_leak_nothing(self, leak_check):
        expected = {}
        for _ in range(4):
            with MiningService(workers=1) as svc:
                svc.register_graph("er", ER)
                svc.register_graph("pl", PL)
                for gname in ("er", "pl"):
                    for pattern in (triangle(), k_clique(4)):
                        response = svc.request(
                            MineRequest(graph=gname, pattern=pattern)
                        )
                        key = (gname, pattern.name)
                        expected.setdefault(key, response.counts)
                        assert response.counts == expected[key]

    def test_register_unregister_churn_leaks_nothing(self, leak_check):
        with MiningService(workers=2) as svc:
            for round_no in range(4):
                svc.register_graph("g", ER if round_no % 2 else PL)
                svc.mine("g", app="TC")
                svc.unregister_graph("g")
            assert svc.graphs() == []

    def test_service_timeout_is_structured_not_a_hang(self, leak_check):
        with MiningService(workers=2, request_timeout_s=1.0) as svc:
            svc.register_graph("er", ER)
            svc.mine("er", app="TC")  # forks + warms the pool
            procs = svc._graphs["er"].pool._procs
            for proc in procs:
                os.kill(proc.pid, signal.SIGSTOP)
            try:
                with pytest.raises(PoolWorkerError) as exc:
                    svc.mine("er", app="TC", use_cache=False)
                assert exc.value.reason == "timeout"
            finally:
                for proc in procs:
                    try:
                        os.kill(proc.pid, signal.SIGCONT)
                    except ProcessLookupError:  # pragma: no cover
                        pass
            # The broken pool is replaced by re-registering the graph.
            svc.register_graph("er", ER)
            assert svc.mine("er", app="TC").counts
