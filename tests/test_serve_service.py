"""Tests for the resident mining service (repro.serve).

The serving layer's contract: every served request — executed, plan-
cached or result-cached, in any arrival order — returns counts and op
counters bit-identical to a direct serial engine run; the compiler runs
exactly once per canonical pattern per service lifetime; graph
re-registration invalidates exactly that graph's memoized results; and
admission control rejects (never queues unboundedly, never hangs) past
``max_active``.
"""

import pytest

from repro.apps import clique_count, motif_count, run_app, subgraph_list
from repro.compiler import compile_pattern
from repro.engine import PatternAwareEngine, mine_multi
from repro.errors import (
    ConfigError,
    GraphNotRegistered,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.graph import erdos_renyi, power_law_cluster
from repro.obs import MetricsRegistry
from repro.serve import MineRequest, MiningService, plan_cache_key
from repro.patterns import four_cycle, k_clique, triangle

ER = erdos_renyi(120, 0.07, seed=3, name="er")
PL = power_law_cluster(150, 3, 0.4, seed=5, name="pl")


def serial(graph, plan):
    return PatternAwareEngine(graph, plan).run()


@pytest.fixture
def service():
    with MiningService(workers=1) as svc:
        svc.register_graph("er", ER)
        yield svc


# ----------------------------------------------------------------------
# Bit-identical served results
# ----------------------------------------------------------------------
class TestZeroDrift:
    @pytest.mark.parametrize(
        "pattern", [triangle(), k_clique(4), four_cycle()],
        ids=["triangle", "4-clique", "4-cycle"],
    )
    def test_served_bit_identical_to_direct(self, service, pattern):
        base = serial(ER, compile_pattern(pattern))
        got = service.mine("er", pattern=pattern)
        assert got.counts == base.counts
        assert got.counters.as_dict() == base.counters.as_dict()

    def test_cache_hit_bit_identical(self, service):
        first = service.mine("er", app="TC")
        second = service.mine("er", app="TC")
        assert second.result_cache_hit
        assert second.counts == first.counts
        assert second.counters.as_dict() == first.counters.as_dict()

    def test_motifs_served(self, service):
        from repro.compiler import compile_motifs

        base = mine_multi(ER, compile_motifs(3))
        got = service.mine("er", app="k-MC", k=3)
        assert got.counts == base.counts
        assert got.counters.as_dict() == base.counters.as_dict()

    def test_batch_frontier_service_bit_identical(self):
        with MiningService(workers=1, batch_frontier=True) as svc:
            svc.register_graph("er", ER)
            base = serial(ER, compile_pattern(k_clique(4)))
            got = svc.mine("er", pattern=k_clique(4))
            assert got.counts == base.counts
            assert got.counters.as_dict() == base.counters.as_dict()

    def test_cached_counters_are_private_copies(self, service):
        first = service.mine("er", app="TC")
        first.counters.matches = -1  # mutate the returned copy
        second = service.mine("er", app="TC")
        assert second.result_cache_hit
        assert second.counters.matches != -1


# ----------------------------------------------------------------------
# Plan cache: one compile per canonical pattern, ever
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_compiles_once_per_canonical_pattern(self, service):
        for _ in range(3):
            service.mine("er", app="TC")
            service.mine("er", pattern=k_clique(4))
            service.mine("er", pattern=four_cycle())
        assert service.compiles == 3
        stats = service.cache_stats()["plan"]
        assert stats["misses"] == 3
        assert stats["hits"] == 6

    def test_isomorphic_patterns_share_one_plan(self, service):
        # The same 4-cycle under two different vertex numberings: one
        # canonical form, one compile, identical counts.
        from repro.patterns import Pattern

        a = Pattern(4, [(0, 1), (1, 2), (2, 3), (3, 0)], name="cyc-a")
        b = Pattern(4, [(0, 2), (2, 1), (1, 3), (3, 0)], name="cyc-b")
        assert a.canonical_form() == b.canonical_form()
        first = service.mine("er", pattern=a)
        second = service.mine("er", pattern=b)
        assert service.compiles == 1
        assert second.plan_cache_hit
        assert first.counts == second.counts

    def test_app_and_explicit_pattern_share_plan(self, service):
        # TC is k_clique(3): the app shorthand and the explicit
        # pattern hit the same canonical entry.
        service.mine("er", app="TC")
        service.mine("er", pattern=triangle())
        assert service.compiles == 1

    def test_induced_gets_its_own_entry(self, service):
        service.mine("er", pattern=four_cycle())
        service.mine("er", pattern=four_cycle(), induced=True)
        assert service.compiles == 2

    def test_matching_order_gets_its_own_entry(self, service):
        service.mine("er", pattern=four_cycle())
        service.mine(
            "er", pattern=four_cycle(), matching_order=(0, 1, 2, 3)
        )
        assert service.compiles == 2

    def test_plan_cache_is_global_across_graphs(self, service):
        service.register_graph("pl", PL)
        service.mine("er", app="TC")
        service.mine("pl", app="TC")
        assert service.compiles == 1

    def test_plan_key_shapes(self):
        unordered = plan_cache_key(four_cycle())
        ordered = plan_cache_key(
            four_cycle(), matching_order=(0, 1, 2, 3)
        )
        motifs = plan_cache_key(motif_k=3)
        assert unordered[0] == "pattern"
        assert ordered[0] == "pattern-ordered"
        assert motifs == ("motifs", 3)
        with pytest.raises(ConfigError):
            plan_cache_key()
        with pytest.raises(ConfigError):
            plan_cache_key(four_cycle(), motif_k=3)


# ----------------------------------------------------------------------
# Result cache: epochs and invalidation
# ----------------------------------------------------------------------
class TestResultCache:
    def test_use_cache_false_always_executes(self, service):
        service.mine("er", app="TC")
        again = service.mine("er", app="TC", use_cache=False)
        assert not again.result_cache_hit
        # Both requests actually reached the pool (no memo short-cut).
        stats = service.stats()
        assert stats["graphs"]["er"]["pool"]["requests_served"] == 2

    def test_reregistration_bumps_epoch_and_invalidates(self, service):
        first = service.mine("er", app="TC")
        assert first.epoch == 0
        epoch = service.register_graph("er", PL)  # same name, new graph
        assert epoch == 1
        fresh = service.mine("er", app="TC")
        assert fresh.epoch == 1
        assert not fresh.result_cache_hit  # old memo is gone
        base = serial(PL, compile_pattern(triangle()))
        assert fresh.counts == base.counts

    def test_invalidation_is_per_graph(self, service):
        service.register_graph("pl", PL)
        service.mine("er", app="TC")
        service.mine("pl", app="TC")
        service.register_graph("er", ER)  # re-register er only
        assert service.mine("pl", app="TC").result_cache_hit
        assert not service.mine("er", app="TC").result_cache_hit

    def test_unregister_drops_graph_and_memos(self, service):
        service.mine("er", app="TC")
        service.unregister_graph("er")
        assert service.graphs() == []
        with pytest.raises(GraphNotRegistered):
            service.mine("er", app="TC")
        with pytest.raises(GraphNotRegistered):
            service.unregister_graph("er")

    def test_split_degree_keys_separately(self, service):
        whole = service.mine("er", pattern=triangle())
        chunked = service.mine(
            "er", pattern=triangle(), split_degree=16
        )
        assert not chunked.result_cache_hit  # different result key
        assert chunked.counts == whole.counts

    def test_disabled_result_cache_never_hits(self):
        with MiningService(workers=1, result_cache=False) as svc:
            svc.register_graph("er", ER)
            svc.mine("er", app="TC")
            again = svc.mine("er", app="TC")
            assert not again.result_cache_hit
            assert again.plan_cache_hit  # plan cache is independent


# ----------------------------------------------------------------------
# Admission control and lifecycle
# ----------------------------------------------------------------------
class TestAdmission:
    def test_overload_rejected_with_backpressure(self):
        with MiningService(workers=1, max_active=2, threads=1) as svc:
            svc.register_graph("er", ER)
            # Hold the graph's mine lock so admitted requests park.
            entry = svc._graphs["er"]
            with entry.mine_lock:
                futures = [
                    svc.submit(MineRequest(graph="er", app="TC"))
                    for _ in range(2)
                ]
                with pytest.raises(ServiceOverloaded) as exc:
                    svc.submit(MineRequest(graph="er", app="TC"))
                assert exc.value.active == 2
                assert exc.value.max_active == 2
                assert svc.active_tasks == 2
            for future in futures:
                assert future.result().counts  # drains after release
            assert svc.requests_rejected == 1
            assert svc.active_tasks == 0

    def test_closed_service_rejects_everything(self):
        svc = MiningService(workers=1)
        svc.register_graph("er", ER)
        svc.close()
        assert svc.closed
        with pytest.raises(ServiceClosed):
            svc.submit(MineRequest(graph="er", app="TC"))
        with pytest.raises(ServiceClosed):
            svc.register_graph("pl", PL)
        svc.close()  # idempotent

    def test_submit_rolls_back_admission_on_executor_failure(
        self, service, monkeypatch
    ):
        # Regression: if the executor rejects the task after admission,
        # the active/queued counters must roll back or the slot leaks
        # until the service dies of phantom backpressure.
        real_submit = service._executor.submit

        def boom(*args, **kwargs):
            raise RuntimeError("executor boom")

        monkeypatch.setattr(service._executor, "submit", boom)
        with pytest.raises(RuntimeError, match="executor boom"):
            service.submit(MineRequest(graph="er", app="TC"))
        assert service.active_tasks == 0
        monkeypatch.setattr(service._executor, "submit", real_submit)
        assert service.mine("er", app="TC").counts  # slot not leaked

    def test_request_validation(self, service):
        with pytest.raises(ConfigError):
            service.mine("er")  # neither app nor pattern
        with pytest.raises(ConfigError):
            service.mine("er", pattern=triangle(), motif_k=3)
        with pytest.raises(ConfigError):
            service.mine("er", app="TC", pattern=triangle())
        with pytest.raises(ConfigError):
            service.mine("er", app="SL")  # SL needs a pattern
        with pytest.raises(ConfigError):
            service.mine("er", app="nope")

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MiningService(max_active=0)
        with pytest.raises(ConfigError):
            MiningService(threads=0)


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestResourceLifecycle:
    """Regressions for the FM300-family findings the dataflow verifier
    surfaced: every pool must reach close() on every path, and leases
    must balance even when the request path errors out."""

    def test_close_retires_every_pool_despite_failure(self):
        svc = MiningService(workers=1)
        svc.register_graph("er", ER)
        svc.register_graph("pl", PL)
        pools = [entry.pool for entry in svc._graphs.values()]
        first = pools[0]
        real_close = first.close

        def boom():
            real_close()
            raise OSError("pool close boom")

        first.close = boom
        with pytest.raises(OSError, match="pool close boom"):
            svc.close()
        assert svc.closed
        assert all(pool.closed for pool in pools)

    def test_register_failure_reaps_fresh_pool(self, service, monkeypatch):
        # If the registry insert raises, the service never took
        # ownership of the just-built pool — register_graph must close
        # it before re-raising (regression: FM301 pool leak).
        import repro.serve.service as service_mod

        created = []
        real_pool = service_mod.MinerPool

        def tracking(*args, **kwargs):
            pool = real_pool(*args, **kwargs)
            created.append(pool)
            return pool

        monkeypatch.setattr(service_mod, "MinerPool", tracking)

        class _BoomDict(dict):
            def __setitem__(self, key, value):
                raise RuntimeError("registry boom")

        service._graphs = _BoomDict(service._graphs)
        with pytest.raises(RuntimeError, match="registry boom"):
            service.register_graph("pl", PL)
        assert len(created) == 1
        assert created[0].closed

    def test_reregistration_retires_old_pool(self, service):
        old_pool = service._graphs["er"].pool
        epoch = service.register_graph("er", ER)
        assert epoch == 1
        assert old_pool.closed
        assert not service._graphs["er"].pool.closed
        assert service.mine("er", app="TC").counts

    def test_missing_graph_leases_nothing(self, service):
        # Regression (FM302): leases must balance on every path through
        # the request pipeline, including lookup failures.
        pool = service._graphs["er"].pool
        assert pool.leases == 0
        with pytest.raises(GraphNotRegistered):
            service._leased_entry("nope")
        assert pool.leases == 0
        with pytest.raises(GraphNotRegistered):
            service.mine("nope", app="TC")
        assert pool.leases == 0


class TestObservability:
    def test_serve_metrics_published(self):
        registry = MetricsRegistry()
        with MiningService(workers=1, metrics=registry) as svc:
            svc.register_graph("er", ER)
            svc.mine("er", app="TC")
            svc.mine("er", app="TC")
        snap = registry.snapshot()
        assert snap["serve.requests"] == 2
        assert snap["serve.plan_cache.compiles"] == 1
        assert snap["serve.plan_cache.hits"] == 1
        assert snap["serve.result_cache.hits"] == 1
        assert snap["serve.result_cache.misses"] == 1
        assert snap["serve.request_ms"]["count"] == 2
        assert "p99" in snap["serve.request_ms"]
        assert snap["serve.graphs"] == 1

    def test_stats_snapshot(self, service):
        service.mine("er", app="TC")
        stats = service.stats()
        assert stats["completed"] == 1
        assert stats["qps"] > 0
        assert stats["graphs"]["er"]["epoch"] == 0
        assert stats["graphs"]["er"]["pool"]["healthy"]
        assert stats["caches"]["plan"]["compiles"] == 1
        assert stats["latency_ms"]["count"] == 1

    def test_stats_report_envelope(self, service):
        service.mine("er", app="TC")
        report = service.stats_report(source="test")
        assert report["kind"] == "serve"
        assert report["meta"]["source"] == "test"
        assert report["data"]["completed"] == 1
        assert "metrics" in report["data"]

    def test_fake_clock_latency_arithmetic(self):
        # Two clock reads per request span: latency == one step.
        reads = iter(range(1000))

        def clock():
            return float(next(reads))

        with MiningService(workers=1, clock=clock) as svc:
            svc.register_graph("er", ER)
            response = svc.mine("er", app="TC")
        # request span: 2 mine-span reads nested inside 2 request
        # reads, each read advancing 1.0 -> latency exactly 3.0.
        assert response.latency_s == 3.0


# ----------------------------------------------------------------------
# Apps API passthrough
# ----------------------------------------------------------------------
class TestAppsPassthrough:
    def test_apps_served_bit_identical(self, service):
        base = clique_count(ER, 4)
        got = clique_count(ER, 4, service=service)
        assert got.counts == base.counts
        assert got.counters.as_dict() == base.counters.as_dict()
        # The graph object was recognized as already registered.
        assert service.graphs() == ["er"]

    def test_apps_all_four_via_run_app(self, service):
        for app, kwargs in (
            ("TC", {}),
            ("k-CL", {"k": 4}),
            ("SL", {"pattern": four_cycle()}),
            ("k-MC", {"k": 3}),
        ):
            direct = run_app(ER, app, **kwargs)
            served = run_app(ER, app, service=service, **kwargs)
            assert served.counts == direct.counts
            assert (
                served.counters.as_dict() == direct.counters.as_dict()
            )

    def test_unregistered_graph_autoregisters(self, service):
        from repro.compiler import compile_motifs

        got = motif_count(PL, 3, service=service)
        assert got.counts == mine_multi(PL, compile_motifs(3)).counts
        assert len(service.graphs()) == 2  # er + the anon entry

    def test_service_excludes_pool_and_workers(self, service):
        with pytest.raises(ConfigError):
            clique_count(ER, 3, service=service, workers=4)
        with pytest.raises(ConfigError):
            clique_count(ER, 3, service=service, backend="sim")
        with pytest.raises(ConfigError):
            subgraph_list(
                ER, triangle(), service=service, collect=True
            )
