"""Unit tests for the processing element's hardware behaviors."""

import pytest

from repro.compiler import compile_pattern
from repro.graph import complete_graph, erdos_renyi
from repro.hw import FlexMinerAccelerator, FlexMinerConfig
from repro.patterns import diamond, four_cycle, k_clique, triangle

GRAPH = erdos_renyi(40, 0.3, seed=8)


def one_pe_accel(pattern_plan, graph=GRAPH, **config_overrides):
    config = FlexMinerConfig(num_pes=1, **config_overrides)
    return FlexMinerAccelerator(graph, pattern_plan, config)


class TestCycleAccounting:
    def test_time_advances_monotonically(self):
        accel = one_pe_accel(compile_pattern(triangle()))
        pe = accel.pes[0]
        times = []
        for v in range(5):
            pe.execute_task(v, pe.time)
            times.append(pe.time)
        assert times == sorted(times)

    def test_dispatch_cost_charged_per_task(self):
        plan = compile_pattern(triangle())
        # A vertex with no neighbors costs exactly the dispatch overhead
        # plus the (empty) level-1 load.
        from repro.graph import CSRGraph

        lonely = CSRGraph.from_edges([(1, 2)], num_vertices=3)
        accel = one_pe_accel(plan, graph=lonely)
        pe = accel.pes[0]
        before = pe.time
        pe.execute_task(0, before)
        assert pe.time >= before + accel.config.dispatch_cycles

    def test_busy_and_stall_partition_time(self):
        accel = one_pe_accel(compile_pattern(k_clique(4)))
        report = accel.run()
        pe = accel.pes[0]
        assert pe.stats.busy_cycles + pe.stats.stall_cycles == pytest.approx(
            report.cycles
        )

    def test_component_cycles_within_busy(self):
        accel = one_pe_accel(compile_pattern(four_cycle()))
        accel.run()
        stats = accel.pes[0].stats
        component_sum = (
            stats.pruner_cycles + stats.setop_cycles + stats.cmap_cycles
        )
        assert component_sum <= stats.busy_cycles


class TestCmapIntegration:
    def test_cmap_resets_between_tasks(self):
        accel = one_pe_accel(compile_pattern(four_cycle()))
        accel.run()
        pe = accel.pes[0]
        assert pe.cmap.occupancy == 0  # self-cleaned after the last task

    def test_fallback_on_tiny_cmap(self):
        # A 12-entry c-map cannot hold the ~12-neighbor lists of this
        # graph below the 75% threshold, so insertions get rejected and
        # the consuming checks fall back to the SIU (§VI-B).
        plan = compile_pattern(four_cycle())
        accel = one_pe_accel(plan, cmap_bytes=64)
        report = accel.run()
        pe = accel.pes[0]
        assert pe.cmap.stats.overflows > 0
        assert pe.stats.cmap_fallbacks > 0
        # SIU picked up the rejected checks.
        assert pe.stats.siu_resolved_checks > 0
        from repro.engine import mine

        assert report.counts == mine(GRAPH, plan).counts

    def test_no_cmap_config_disables_everything(self):
        accel = one_pe_accel(
            compile_pattern(four_cycle()), cmap_bytes=0
        )
        accel.run()
        pe = accel.pes[0]
        assert pe.cmap is None
        assert pe.stats.cmap_cycles == 0

    def test_cmap_checks_prefer_cmap_over_siu(self):
        accel = one_pe_accel(compile_pattern(four_cycle()))
        accel.run()
        pe = accel.pes[0]
        assert pe.stats.cmap_resolved_checks > pe.stats.siu_resolved_checks


class TestFrontierTable:
    def test_diamond_reads_frontier(self):
        plan = compile_pattern(diamond(), use_orientation=False)
        accel = one_pe_accel(plan)
        accel.run()
        pe = accel.pes[0]
        assert pe.stats.frontier_reads > 0

    def test_clique_composition_uses_frontier(self):
        plan = compile_pattern(k_clique(5))
        accel = one_pe_accel(plan, graph=complete_graph(12))
        accel.run()
        assert accel.pes[0].stats.frontier_reads > 0

    def test_frontier_allocator_wraps(self):
        plan = compile_pattern(diamond(), use_orientation=False)
        accel = one_pe_accel(plan)
        pe = accel.pes[0]
        pe._frontier_ptr = pe._frontier_limit - 4  # nearly exhausted
        accel.run()  # must not raise; allocator wraps
        assert pe._frontier_ptr >= pe._frontier_base


class TestOverlapCredit:
    def test_compute_hides_memory_latency(self):
        # With an enormous overlap credit the fetch is fully hidden.
        accel = one_pe_accel(compile_pattern(triangle()))
        pe = accel.pes[0]
        pe._overlap_credit = 10 ** 9
        before = pe.time
        pe._touch(0x4000_0000, 256)
        assert pe.time == before  # no stall charged
        assert pe._overlap_credit == 0.0  # credit consumed

    def test_cold_fetch_without_credit_stalls(self):
        accel = one_pe_accel(compile_pattern(triangle()))
        pe = accel.pes[0]
        pe._overlap_credit = 0.0
        before = pe.time
        pe._touch(0x5000_0000, 256)
        assert pe.time > before
