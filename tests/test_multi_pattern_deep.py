"""Deeper multi-pattern (k-MC) behaviour tests."""

from math import comb


from repro.graph import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    star_graph,
)
from repro.patterns import enumerate_motifs
from repro.compiler import compile_motifs, compile_multi, emit_multi_ir
from repro.engine import mine_multi
from repro.hw import FlexMinerConfig, simulate


class TestStructuredGraphTruths:
    def test_star_has_only_stars_and_wedges(self):
        g = star_graph(7)
        res3 = mine_multi(g, compile_motifs(3))
        assert res3.counts == (comb(7, 2), 0)  # wedges, triangles
        res4 = mine_multi(g, compile_motifs(4))
        by_name = dict(zip(
            [m.name for m in enumerate_motifs(4)], res4.counts
        ))
        assert by_name["3-star"] == comb(7, 3)
        assert sum(v for k, v in by_name.items() if k != "3-star") == 0

    def test_cycle_graph_motifs(self):
        n = 9
        g = cycle_graph(n)
        res = mine_multi(g, compile_motifs(4))
        by_name = dict(zip(
            [m.name for m in enumerate_motifs(4)], res.counts
        ))
        assert by_name["4-path"] == n  # one path per starting edge walk
        assert by_name["4-cycle"] == 0
        assert by_name["4-clique"] == 0

    def test_complete_graph_motifs(self):
        g = complete_graph(7)
        res = mine_multi(g, compile_motifs(4))
        by_name = dict(zip(
            [m.name for m in enumerate_motifs(4)], res.counts
        ))
        # Every induced 4-subgraph of K7 is a 4-clique.
        assert by_name["4-clique"] == comb(7, 4)
        assert sum(res.counts) == comb(7, 4)

    def test_grid_graph_motifs(self):
        g = grid_graph(4, 4)
        res = mine_multi(g, compile_motifs(3))
        # Triangle-free lattice: every connected triple is a wedge.
        assert res.counts[1] == 0
        assert res.counts[0] > 0


class TestTreeExecution:
    def test_branch_counts_independent_of_merge(self):
        # Mining motifs individually equals the merged-tree counts.
        g = erdos_renyi(22, 0.35, seed=61)
        merged = mine_multi(g, compile_motifs(4)).counts
        individual = []
        from repro.compiler import compile_pattern
        from repro.engine import mine

        for motif in enumerate_motifs(4):
            plan = compile_pattern(
                motif, induced=True, use_orientation=False
            )
            individual.append(mine(g, plan).counts[0])
        assert merged == tuple(individual)

    def test_subset_of_motifs(self):
        g = erdos_renyi(20, 0.4, seed=62)
        wedge, triangle = enumerate_motifs(3)
        plan = compile_multi([triangle, wedge])  # reversed order
        counts = mine_multi(g, plan).counts
        full = mine_multi(g, compile_motifs(3)).counts
        assert counts == (full[1], full[0])

    def test_simulator_on_4mc(self):
        g = erdos_renyi(24, 0.3, seed=63)
        plan = compile_motifs(4)
        sw = mine_multi(g, plan)
        hw = simulate(g, plan, FlexMinerConfig(num_pes=3))
        assert hw.counts == sw.counts

    def test_multi_ir_lists_every_branch(self):
        text = emit_multi_ir(compile_motifs(4))
        for motif in enumerate_motifs(4):
            assert f"# matches {motif.name}" in text

    def test_empty_graph_all_zero(self):
        g = CSRGraph.from_edges([], num_vertices=6)
        assert mine_multi(g, compile_motifs(3)).counts == (0, 0)
