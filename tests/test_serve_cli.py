"""Tests for the JSON-lines serving transport and ``flexminer serve``.

The stream loop's contract: one JSON response per request line, errors
are data (never stream deaths), overloads are flagged retryable, and a
``close`` op ends the loop.  The CLI test drives the full binary path —
register, a request stream with repeats, stats — through stdin.
"""

import io
import json

import pytest

from repro.cli import main
from repro.engine import PatternAwareEngine
from repro.compiler import compile_pattern
from repro.graph import erdos_renyi, load_dataset
from repro.serve import (
    MineRequest,
    MiningService,
    handle_request,
    serve_stream,
)
from repro.patterns import from_name, triangle

ER = erdos_renyi(100, 0.08, seed=17, name="er")


@pytest.fixture
def service():
    with MiningService(workers=1) as svc:
        svc.register_graph("er", ER)
        yield svc


def run_lines(service, lines):
    out = io.StringIO()
    serve_stream(service, lines, out)
    return [json.loads(line) for line in out.getvalue().splitlines()]


class TestHandleRequest:
    def test_mine_round_trip(self, service):
        base = PatternAwareEngine(ER, compile_pattern(triangle())).run()
        response = handle_request(
            service, {"op": "mine", "graph": "er", "app": "TC"}
        )
        assert response["ok"]
        assert response["counts"] == list(base.counts)
        assert response["total"] == base.total
        assert not response["result_cache_hit"]
        again = handle_request(
            service, {"op": "mine", "graph": "er", "app": "TC"}
        )
        assert again["result_cache_hit"]
        assert again["counts"] == response["counts"]

    def test_mine_by_pattern_name(self, service):
        response = handle_request(
            service, {"op": "mine", "graph": "er", "pattern": "4-cycle"}
        )
        assert response["ok"]
        base = PatternAwareEngine(
            ER, compile_pattern(from_name("4-cycle"))
        ).run()
        assert response["counts"] == list(base.counts)

    def test_register_and_unregister(self, service):
        response = handle_request(
            service, {"op": "register", "name": "mi", "dataset": "Mi"}
        )
        assert response["ok"]
        assert response["epoch"] == 0
        mi = load_dataset("Mi")
        assert response["vertices"] == mi.num_vertices
        mined = handle_request(
            service, {"op": "mine", "graph": "mi", "app": "TC"}
        )
        assert mined["ok"]
        gone = handle_request(
            service, {"op": "unregister", "graph": "mi"}
        )
        assert gone["ok"]
        missing = handle_request(
            service, {"op": "mine", "graph": "mi", "app": "TC"}
        )
        assert not missing["ok"]
        assert missing["kind"] == "GraphNotRegistered"

    def test_errors_are_data(self, service):
        for payload, kind in (
            ({"op": "mine"}, "KeyError"),  # no graph
            ({"op": "mine", "graph": "nope", "app": "TC"},
             "GraphNotRegistered"),
            ({"op": "mine", "graph": "er", "app": "bad"}, "ConfigError"),
            ({"op": "mine", "graph": "er", "pattern": "not-a-pattern"},
             "PatternError"),
            ({"op": "explode"}, "ValueError"),
            ({"op": "unregister", "graph": "nope"},
             "GraphNotRegistered"),
        ):
            response = handle_request(service, payload)
            assert not response["ok"], payload
            assert response["kind"] == kind, payload

    def test_overload_is_retryable(self, service):
        entry = service._graphs["er"]
        with entry.mine_lock:
            futures = [
                service.submit(MineRequest(graph="er", app="TC"))
                for _ in range(service.max_active)
            ]
            response = handle_request(
                service, {"op": "mine", "graph": "er", "app": "TC"}
            )
        for future in futures:
            future.result()
        assert not response["ok"]
        assert response["retry"] is True
        assert response["kind"] == "ServiceOverloaded"

    def test_stats_op(self, service):
        handle_request(service, {"op": "mine", "graph": "er", "app": "TC"})
        response = handle_request(service, {"op": "stats"})
        assert response["ok"]
        assert response["stats"]["completed"] == 1
        assert response["stats"]["caches"]["plan"]["compiles"] == 1


class TestServeStream:
    def test_stream_round_trip_and_close(self, service):
        responses = run_lines(service, [
            json.dumps({"op": "mine", "graph": "er", "app": "TC"}),
            "",  # blank lines are skipped
            "definitely not json",
            json.dumps({"op": "close"}),
            json.dumps({"op": "mine", "graph": "er", "app": "TC"}),
        ])
        # close stops the loop: the trailing mine is never served.
        assert len(responses) == 3
        assert responses[0]["ok"]
        assert not responses[1]["ok"]
        assert responses[2]["op"] == "close"

    def test_non_object_line_is_an_error(self, service):
        responses = run_lines(service, ["[1, 2, 3]"])
        assert not responses[0]["ok"]
        assert "JSON object" in responses[0]["error"]


class TestServeCLI:
    def _drive(self, monkeypatch, capsys, lines, argv):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("".join(l + "\n" for l in lines))
        )
        assert main(argv) == 0
        out = capsys.readouterr().out
        return [json.loads(line) for line in out.splitlines()]

    def test_cli_stream(self, monkeypatch, capsys, tmp_path):
        report_path = tmp_path / "serve_stats.json"
        responses = self._drive(
            monkeypatch, capsys,
            [
                json.dumps({"op": "mine", "graph": "Mi", "app": "TC"}),
                json.dumps({"op": "mine", "graph": "Mi", "app": "TC"}),
                json.dumps({"op": "stats"}),
            ],
            [
                "serve", "--register", "Mi",
                "--stats-report", str(report_path),
            ],
        )
        assert [r["ok"] for r in responses] == [True, True, True]
        assert responses[0]["total"] == responses[1]["total"]
        assert responses[1]["result_cache_hit"]
        stats = responses[2]["stats"]
        assert stats["caches"]["result"]["hits"] == 1
        report = json.loads(report_path.read_text())
        assert report["kind"] == "serve"
        assert report["data"]["completed"] == 2
        assert report["data"]["latency_ms"]["p99"] > 0

    def test_cli_register_alias(self, monkeypatch, capsys):
        responses = self._drive(
            monkeypatch, capsys,
            [json.dumps({"op": "mine", "graph": "tiny", "app": "TC"})],
            ["serve", "--register", "tiny=Mi"],
        )
        assert responses[0]["ok"]

    def test_cli_no_result_cache(self, monkeypatch, capsys):
        responses = self._drive(
            monkeypatch, capsys,
            [
                json.dumps({"op": "mine", "graph": "Mi", "app": "TC"}),
                json.dumps({"op": "mine", "graph": "Mi", "app": "TC"}),
            ],
            ["serve", "--register", "Mi", "--no-result-cache"],
        )
        assert responses[1]["ok"]
        assert not responses[1]["result_cache_hit"]
        assert responses[1]["plan_cache_hit"]
