"""Tests for cache, DRAM, NoC and the shared memory system."""

import pytest

from repro.errors import ConfigError
from repro.graph import erdos_renyi
from repro.hw import (
    DramConfig,
    DramModel,
    FlexMinerConfig,
    GraphLayout,
    MemorySystem,
    NocModel,
    SetAssocCache,
)


class TestCache:
    def test_hit_after_miss(self):
        cache = SetAssocCache(1024, 2, 64)
        assert not cache.access_line(7)
        assert cache.access_line(7)

    def test_lru_eviction(self):
        # 2-way cache: lines 0, S, 2S map to the same set.
        cache = SetAssocCache(4 * 64, 2, 64)  # 2 sets, 2 ways
        s = cache.num_sets
        cache.access_line(0)
        cache.access_line(s)
        cache.access_line(0)  # refresh 0: S is now LRU
        cache.access_line(2 * s)  # evicts S
        assert cache.contains(0)
        assert not cache.contains(s)
        assert cache.stats.evictions == 1

    def test_access_range_line_granularity(self):
        cache = SetAssocCache(1024, 4, 64)
        hits, missed = cache.access_range(0, 130)  # covers 3 lines
        assert hits == 0 and len(missed) == 3
        hits, missed = cache.access_range(0, 130)
        assert hits == 3 and not missed

    def test_empty_range(self):
        cache = SetAssocCache(1024, 4, 64)
        assert cache.access_range(0, 0) == (0, [])

    def test_too_small_rejected(self):
        with pytest.raises(ConfigError):
            SetAssocCache(64, 4, 64)

    def test_flush(self):
        cache = SetAssocCache(1024, 2, 64)
        cache.access_line(3)
        cache.flush()
        assert not cache.contains(3)

    def test_miss_rate(self):
        cache = SetAssocCache(1024, 2, 64)
        cache.access_line(1)
        cache.access_line(1)
        assert cache.stats.miss_rate == pytest.approx(0.5)


class TestDram:
    def config(self):
        return FlexMinerConfig()

    def test_row_hit_cheaper_than_conflict(self):
        dram = DramModel(self.config())
        first = dram.access(0, 0.0)  # opens the row
        # Line 64 maps to the same channel (64 % 4 == 0), same bank
        # ((64 // 4) % 16 == 0) and the same 8 kB row.
        hit = dram.access(64, 1000.0)
        assert hit < first
        assert dram.stats.row_hits >= 1

    def test_backlog_queues_bursts(self):
        dram = DramModel(self.config())
        lat = [dram.access(0, 10.0) for _ in range(8)]
        # Same instant: after the first (row-opening) access, each
        # subsequent burst queues behind the previous one.
        assert all(b > a for a, b in zip(lat[1:], lat[2:]))

    def test_backlog_drains_over_time(self):
        dram = DramModel(self.config())
        for _ in range(8):
            dram.access(0, 10.0)
        relaxed = dram.access(0, 10_000.0)
        assert relaxed <= dram.access(0, 10_000.0) + 1e-9  # stable
        assert relaxed < 100

    def test_out_of_order_timestamps_tolerated(self):
        # PE-local times are not globally ordered; latency must stay sane.
        dram = DramModel(self.config())
        dram.access(0, 1_000_000.0)
        lat = dram.access(64 * 4, 10.0)
        assert lat < 1_000.0

    def test_channel_interleaving(self):
        dram = DramModel(self.config())
        for line in range(4):
            dram.access(line, 0.0)
        # Four channels: no queueing among the four.
        assert dram.stats.queue_cycles == 0

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            DramConfig(num_channels=0)
        with pytest.raises(ConfigError):
            DramConfig(t_cas_ns=0)

    def test_peak_bandwidth(self):
        assert DramConfig().peak_bandwidth_gbs == pytest.approx(
            4 * 64 / 3.0
        )


class TestNoc:
    def test_counts_requests_per_pe(self):
        noc = NocModel(FlexMinerConfig(num_pes=16))
        noc.request_latency(3, 64)
        noc.request_latency(3, 64)
        noc.request_latency(5, 64)
        assert noc.stats.requests == 3
        assert noc.stats.requests_per_pe == {3: 2, 5: 1}

    def test_latency_grows_with_mesh(self):
        small = NocModel(FlexMinerConfig(num_pes=4))
        large = NocModel(FlexMinerConfig(num_pes=64))
        assert large.request_latency(0, 64) > small.request_latency(0, 64)

    def test_serialization_flits(self):
        small = NocModel(FlexMinerConfig(num_pes=4)).request_latency(0, 16)
        big = NocModel(FlexMinerConfig(num_pes=4)).request_latency(0, 64)
        assert big == small + 3  # 4 flits vs 1

    def test_ejection_port_contention(self):
        # A burst at one instant queues behind the ejection ports; the
        # backlog drains once time advances.
        noc = NocModel(FlexMinerConfig(num_pes=16))
        burst = [noc.request_latency(i, 64, now=0.0) for i in range(32)]
        assert burst[-1] > burst[0]
        assert noc.stats.queue_cycles > 0
        relaxed = noc.request_latency(0, 64, now=10_000.0)
        assert relaxed == pytest.approx(burst[0])

    def test_fewer_ports_more_queueing(self):
        from repro.hw import NocConfig

        def total_queue(ports):
            noc = NocModel(
                FlexMinerConfig(
                    num_pes=16, noc=NocConfig(l2_ejection_ports=ports)
                )
            )
            for i in range(64):
                noc.request_latency(i % 16, 64, now=0.0)
            return noc.stats.queue_cycles

        assert total_queue(1) > total_queue(8)


class TestMemorySystem:
    def setup_method(self):
        self.config = FlexMinerConfig(num_pes=4)
        self.graph = erdos_renyi(32, 0.2, seed=1)
        self.mem = MemorySystem(self.config, self.graph)

    def test_miss_goes_to_dram_then_hits_l2(self):
        lines = [100]
        first = self.mem.fetch_lines(0, lines, 0.0)
        again = self.mem.fetch_lines(1, lines, 0.0)
        assert self.mem.dram.stats.accesses == 1
        assert again < first

    def test_frontier_addresses_never_reach_dram(self):
        base, _ = GraphLayout.frontier_region(2)
        line = base // self.config.line_bytes
        self.mem.fetch_lines(2, [line], 0.0)
        assert self.mem.dram.stats.accesses == 0
        assert self.mem.noc.stats.requests == 1

    def test_empty_batch_free(self):
        assert self.mem.fetch_lines(0, [], 5.0) == 0.0

    def test_batch_pipelines(self):
        lines = list(range(200, 208))
        batch = self.mem.fetch_lines(0, lines, 0.0)
        single = sum(
            MemorySystem(self.config, self.graph).fetch_lines(0, [l], 0.0)
            for l in lines
        )
        assert batch < single

    def test_layout_regions_disjoint(self):
        layout = self.mem.layout
        ind_addr, _ = layout.indptr_range(31)
        idx_addr, _ = layout.indices_range(10 ** 6, 4)
        front, _ = GraphLayout.frontier_region(0)
        assert ind_addr < idx_addr < front
        assert GraphLayout.is_frontier(front)
        assert not GraphLayout.is_frontier(idx_addr)
