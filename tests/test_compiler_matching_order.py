"""Tests for matching-order enumeration and selection (paper §II-B, Fig. 5)."""

import math

import pytest

from repro.errors import CompileError
from repro.patterns import (
    Pattern,
    diamond,
    four_cycle,
    k_clique,
    path,
    star,
    triangle,
    wedge,
)
from repro.compiler import (
    choose_matching_order,
    connected_ancestors,
    enumerate_matching_orders,
    score_matching_order,
)


class TestEnumeration:
    def test_clique_has_all_permutations(self):
        # Every permutation of a clique is a connected order.
        assert len(enumerate_matching_orders(k_clique(4))) == math.factorial(4)

    def test_wedge_orders(self):
        # Leaves cannot come before any neighbor is placed: orders starting
        # (leaf, other-leaf, ...) are excluded -> 6 - 2 = 4 valid orders.
        assert len(enumerate_matching_orders(wedge())) == 4

    def test_every_order_is_connected(self):
        for order in enumerate_matching_orders(diamond()):
            ca = connected_ancestors(diamond(), order)
            assert all(ca[d] for d in range(1, 4))

    def test_disconnected_pattern_rejected(self):
        with pytest.raises(CompileError):
            enumerate_matching_orders(Pattern(3, [(0, 1)]))


class TestScoring:
    def test_diamond_prefers_triangle_first(self):
        # Fig. 5: the triangle-first order beats the wedge-first one.
        p = diamond()
        order = choose_matching_order(p)
        prefix = p.induced_subpattern(order[:3])
        assert prefix.num_edges == 3  # triangle, not wedge

    def test_score_vector_values(self):
        p = diamond()
        # 0,1,2 form a triangle (edges 01, 02, 12); 3 connects to 0 and 1.
        assert score_matching_order(p, (0, 1, 2, 3)) == (0, 1, 3, 5)

    def test_score_monotone_nondecreasing(self):
        p = k_clique(4)
        for order in enumerate_matching_orders(p):
            s = score_matching_order(p, order)
            assert all(a <= b for a, b in zip(s, s[1:]))
            assert s[-1] == p.num_edges

    def test_choose_is_deterministic(self):
        assert choose_matching_order(four_cycle()) == choose_matching_order(
            four_cycle()
        )


class TestConnectedAncestors:
    def test_triangle(self):
        ca = connected_ancestors(triangle(), (0, 1, 2))
        assert ca == [(), (0,), (0, 1)]

    def test_star_center_first(self):
        p = star(3)
        ca = connected_ancestors(p, (0, 1, 2, 3))
        assert ca == [(), (0,), (0,), (0,)]

    def test_path_chain(self):
        p = path(4)
        ca = connected_ancestors(p, (0, 1, 2, 3))
        assert ca == [(), (0,), (1,), (2,)]

    def test_depths_not_pattern_ids(self):
        # With a shuffled order, CA entries are depths, not vertex ids.
        p = wedge()  # edges (0,1),(1,2); center is 1
        ca = connected_ancestors(p, (1, 2, 0))
        assert ca == [(), (0,), (0,)]
