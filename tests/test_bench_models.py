"""Tests for the CPU baseline models and the bench harness."""

import pytest

from repro.compiler import compile_pattern
from repro.engine import OpCounters
from repro.graph import erdos_renyi
from repro.patterns import diamond, k_clique, triangle
from repro.bench import (
    CpuModelConfig,
    GramerModelConfig,
    Harness,
    automine_time,
    cpu_time_seconds,
    geometric_mean,
    gramer_time,
    graphzero_time,
    restrict,
    strip_symmetry,
)

GRAPH = erdos_renyi(40, 0.3, seed=33)


class TestCpuModel:
    def test_more_threads_faster_until_roofline(self):
        counters = OpCounters(
            setop_iterations=10 ** 7, adjacency_bytes=10 ** 5
        )
        t1 = cpu_time_seconds(counters, threads=1)
        t10 = cpu_time_seconds(counters, threads=10)
        t20 = cpu_time_seconds(counters, threads=20)
        assert t1 > t10 > t20
        assert t1 / t10 == pytest.approx(10, rel=0.01)

    def test_hyperthreading_sublinear(self):
        config = CpuModelConfig()
        assert config.effective_threads(20) < 20
        assert config.effective_threads(20) > config.effective_threads(10)
        assert config.effective_threads(10) == 10

    def test_bandwidth_roofline_binds(self):
        # Tiny compute, huge traffic -> memory time dominates.
        counters = OpCounters(setop_iterations=1, adjacency_bytes=10 ** 12)
        config = CpuModelConfig(dram_bandwidth_gbs=100.0)
        assert cpu_time_seconds(counters, config) == pytest.approx(10.0)

    def test_graphzero_runs_plan(self):
        seconds, result = graphzero_time(
            GRAPH, compile_pattern(triangle())
        )
        assert seconds > 0
        assert result.counts[0] > 0


class TestAutoMineModel:
    def test_strip_symmetry_removes_bounds(self):
        plan = compile_pattern(diamond(), use_orientation=False)
        bare = strip_symmetry(plan)
        assert all(not s.upper_bounds for s in bare.steps)
        assert not bare.oriented

    def test_counts_normalized_by_automorphisms(self):
        plan = compile_pattern(k_clique(3))
        _, am = automine_time(GRAPH, plan)
        _, gz = graphzero_time(GRAPH, plan)
        assert am.counts == gz.counts

    def test_automine_slower_than_graphzero(self):
        plan = compile_pattern(diamond(), use_orientation=False)
        t_am, _ = automine_time(GRAPH, plan)
        t_gz, _ = graphzero_time(GRAPH, plan)
        assert t_am > t_gz


class TestGramerModel:
    def test_scales_with_work(self):
        small = OpCounters(subgraphs_enumerated=10, isomorphism_tests=10)
        large = OpCounters(
            subgraphs_enumerated=1000, isomorphism_tests=1000
        )
        assert gramer_time(large, 4) > gramer_time(small, 4)

    def test_bigger_patterns_cost_more_per_test(self):
        counters = OpCounters(subgraphs_enumerated=0, isomorphism_tests=100)
        assert gramer_time(counters, 5) > gramer_time(counters, 4)

    def test_config_override(self):
        counters = OpCounters(subgraphs_enumerated=1000)
        fast = GramerModelConfig(processing_units=16)
        slow = GramerModelConfig(processing_units=1)
        assert gramer_time(counters, 3, fast) < gramer_time(
            counters, 3, slow
        )


class TestHarness:
    def test_sim_memoized(self):
        harness = Harness()
        a = harness.sim("TC", "As", num_pes=2, cmap_bytes=0)
        b = harness.sim("TC", "As", num_pes=2, cmap_bytes=0)
        assert a is b

    def test_cpu_memoized(self):
        harness = Harness()
        a = harness.cpu("TC", "As")
        b = harness.cpu("TC", "As")
        assert a is b

    def test_speedup_validates_counts(self):
        harness = Harness()
        speedup = harness.speedup("TC", "As", num_pes=2, cmap_bytes=0)
        assert speedup > 0

    def test_plan_cached(self):
        harness = Harness()
        assert harness.plan("TC") is harness.plan("TC")

    def test_sim_parallel_is_bit_identical_and_shares_cache(self):
        serial = Harness().sim("TC", "As", num_pes=4, cmap_bytes=0)
        harness = Harness()
        parallel = harness.sim(
            "TC", "As", num_pes=4, cmap_bytes=0, parallel=2
        )
        assert parallel.as_dict() == serial.as_dict()
        # Bit-identical, so the cache key ignores the parallel knob.
        assert harness.sim("TC", "As", num_pes=4, cmap_bytes=0) is parallel

    def test_sim_many_matches_per_cell_sim(self):
        cells = [
            ("TC", "As", 4, 0),
            ("4-CL", "As", 4, 0),
            ("TC", "As", 4, 0),  # duplicate: one run, same object
        ]
        harness = Harness()
        reports = harness.sim_many(cells, workers=2)
        assert set(reports) == {("TC", "As", 4, 0), ("4-CL", "As", 4, 0)}
        fresh = Harness()
        for key, report in reports.items():
            app, dataset, num_pes, cmap_bytes = key
            expected = fresh.sim(
                app, dataset, num_pes=num_pes, cmap_bytes=cmap_bytes
            )
            assert report.as_dict() == expected.as_dict()
        # Pool results land in the memo cache.
        assert harness.sim("TC", "As", num_pes=4, cmap_bytes=0) is (
            reports[("TC", "As", 4, 0)]
        )

    def test_sim_wall_clock_gauges(self):
        harness = Harness()
        harness.sim("TC", "As", num_pes=4, cmap_bytes=0)
        snap = harness.metrics.snapshot()
        assert snap["sim.wall_s"] > 0
        assert snap["sim.cells_per_s"] > 0
        # Cache hits don't re-accumulate wall clock.
        wall = snap["sim.wall_s"]
        harness.sim("TC", "As", num_pes=4, cmap_bytes=0)
        assert harness.metrics.snapshot()["sim.wall_s"] == wall


class TestHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_restrict_quick_mode(self, monkeypatch):
        cells = {"TC": ["As", "Mi"], "4-CL": ["As", "Mi", "Pa"]}
        monkeypatch.delenv("REPRO_BENCH_QUICK", raising=False)
        assert restrict(cells) == cells
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        assert restrict(cells) == {"TC": ["As"], "4-CL": ["As"]}
