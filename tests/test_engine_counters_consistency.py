"""Cross-model consistency of the operation counters.

The CPU baseline model and the simulator both consume OpCounters-level
work; these tests pin the invariants that keep the two models
comparable.
"""

import pytest

from repro.compiler import compile_pattern
from repro.engine import PatternAwareEngine
from repro.graph import erdos_renyi
from repro.hw import FlexMinerAccelerator, FlexMinerConfig
from repro.patterns import diamond, four_cycle, k_clique, triangle

GRAPH = erdos_renyi(40, 0.3, seed=71)


class TestEngineVsSimulatorWork:
    @pytest.mark.parametrize(
        "pattern,kwargs",
        [
            (triangle(), {}),
            (k_clique(4), {}),
            (four_cycle(), {}),
            (diamond(), {"use_orientation": False}),
        ],
        ids=lambda x: getattr(x, "name", str(x)),
    )
    def test_identical_algorithmic_work(self, pattern, kwargs):
        """The PE executes the same search tree as the engine, so the
        SIU-mode op counters must agree exactly when the c-map is off."""
        plan = compile_pattern(pattern, **kwargs)
        engine = PatternAwareEngine(GRAPH, plan)
        engine.run()
        accel = FlexMinerAccelerator(
            GRAPH, plan, FlexMinerConfig(num_pes=1, cmap_bytes=0)
        )
        accel.run()
        pe = accel.pes[0]
        assert (
            pe.counters.setop_iterations
            == engine.counters.setop_iterations
        )
        assert (
            pe.counters.candidates_checked
            == engine.counters.candidates_checked
        )
        assert pe.counters.tasks == engine.counters.tasks

    def test_cmap_eliminates_siu_iterations(self):
        plan = compile_pattern(four_cycle())
        with_cmap = FlexMinerAccelerator(
            GRAPH, plan, FlexMinerConfig(num_pes=1, cmap_bytes=8192)
        )
        without = FlexMinerAccelerator(
            GRAPH, plan, FlexMinerConfig(num_pes=1, cmap_bytes=0)
        )
        with_cmap.run()
        without.run()
        assert (
            with_cmap.pes[0].counters.setop_iterations
            < without.pes[0].counters.setop_iterations
        )
        assert with_cmap.pes[0].cmap.stats.queries > 0

    def test_counters_sum_across_pes(self):
        plan = compile_pattern(k_clique(4))
        single = FlexMinerAccelerator(
            GRAPH, plan, FlexMinerConfig(num_pes=1, cmap_bytes=0)
        )
        many = FlexMinerAccelerator(
            GRAPH, plan, FlexMinerConfig(num_pes=6, cmap_bytes=0)
        )
        single.run()
        many.run()
        total = sum(pe.counters.setop_iterations for pe in many.pes)
        assert total == single.pes[0].counters.setop_iterations


class TestCounterInvariants:
    def test_bytes_are_four_per_id(self):
        plan = compile_pattern(triangle(), use_orientation=False)
        engine = PatternAwareEngine(GRAPH, plan)
        engine.run()
        c = engine.counters
        assert c.adjacency_bytes % 4 == 0

    def test_matches_never_exceed_candidates(self):
        plan = compile_pattern(four_cycle())
        engine = PatternAwareEngine(GRAPH, plan)
        result = engine.run()
        assert result.counts[0] <= engine.counters.candidates_checked

    def test_frontier_hits_bounded_by_base_steps(self):
        plan = compile_pattern(k_clique(5))
        engine = PatternAwareEngine(GRAPH, plan)
        engine.run()
        # Every hit corresponds to executing a step with a base.
        base_steps = sum(1 for s in plan.steps if s.base_step is not None)
        assert base_steps > 0
        assert engine.counters.frontier_hits >= 0
