"""Tests for symmetry-order generation (paper §II-B, Fig. 6).

The key invariant (checked exhaustively on small random graphs): with
symmetry breaking each distinct match is found exactly once, so

    matches_with_breaking * |Aut(P)| == matches_without_breaking
"""

import itertools

import pytest

from repro.graph import erdos_renyi
from repro.patterns import (
    Pattern,
    cycle,
    diamond,
    four_cycle,
    k_clique,
    path,
    star,
    tailed_triangle,
    triangle,
    wedge,
)
from repro.compiler import (
    choose_matching_order,
    symmetry_conditions,
    transitive_reduction,
)

PATTERNS = [
    triangle(),
    wedge(),
    four_cycle(),
    diamond(),
    tailed_triangle(),
    k_clique(4),
    path(4),
    star(3),
    cycle(5),
    k_clique(5),
]


def count_labelled_matches(graph, pattern, order, conditions):
    """Count injective homomorphisms respecting the depth conditions."""
    n = graph.num_vertices
    position = {v: d for d, v in enumerate(order)}
    count = 0
    for mapping in itertools.permutations(range(n), pattern.num_vertices):
        # mapping[d] is the data vertex at depth d.
        ok = all(
            graph.has_edge(mapping[position[u]], mapping[position[v]])
            for u, v in pattern.edges
        )
        if not ok:
            continue
        if all(mapping[b] < mapping[a] for a, b in conditions):
            count += 1
    return count


class TestInvariant:
    @pytest.mark.parametrize(
        "pattern", PATTERNS[:8], ids=lambda p: p.name
    )
    def test_exactly_one_representative(self, pattern):
        graph = erdos_renyi(9, 0.45, seed=31)
        order = choose_matching_order(pattern)
        conditions = symmetry_conditions(pattern, order)
        with_breaking = count_labelled_matches(
            graph, pattern, order, conditions
        )
        without = count_labelled_matches(graph, pattern, order, ())
        assert without == with_breaking * len(pattern.automorphisms())


class TestConditionShape:
    def test_every_condition_points_backward(self):
        for pattern in PATTERNS:
            order = choose_matching_order(pattern)
            for a, b in symmetry_conditions(pattern, order):
                assert a < b  # later vertex bounded by an earlier one

    def test_asymmetric_pattern_has_no_conditions(self):
        p = Pattern(4, [(0, 1), (1, 2), (2, 3), (0, 2)], name="paw-path")
        if len(p.automorphisms()) == 1:
            order = choose_matching_order(p)
            assert symmetry_conditions(p, order) == ()

    def test_clique_chain(self):
        # k-clique: v1<v0, v2<v1, ..., a full chain after reduction.
        p = k_clique(4)
        order = choose_matching_order(p)
        conditions = symmetry_conditions(p, order)
        assert set(conditions) == {(0, 1), (1, 2), (2, 3)}

    def test_diamond_matches_paper(self):
        # Fig. 11(b): {v1 < v0, v3 < v2}.
        p = diamond()
        order = choose_matching_order(p)
        conditions = symmetry_conditions(p, order)
        assert set(conditions) == {(0, 1), (2, 3)}

    def test_number_of_conditions_bounded(self):
        # After transitive reduction the condition count stays small.
        for pattern in PATTERNS:
            order = choose_matching_order(pattern)
            conditions = symmetry_conditions(pattern, order)
            assert len(conditions) <= pattern.num_vertices * 2


class TestTransitiveReduction:
    def test_drops_implied(self):
        reduced = transitive_reduction(((0, 1), (1, 2), (0, 2)))
        assert set(reduced) == {(0, 1), (1, 2)}

    def test_keeps_independent(self):
        conditions = ((0, 1), (2, 3))
        assert set(transitive_reduction(conditions)) == set(conditions)

    def test_long_chain(self):
        full = tuple(
            (a, b) for a in range(5) for b in range(a + 1, 5)
        )
        reduced = transitive_reduction(full)
        assert set(reduced) == {(i, i + 1) for i in range(4)}

    def test_empty(self):
        assert transitive_reduction(()) == ()
