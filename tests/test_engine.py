"""Tests for the pattern-aware engine, c-map engine, and oblivious baseline."""

from math import comb

import pytest

from repro.graph import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.patterns import (
    brute_force_count,
    diamond,
    four_cycle,
    k_clique,
    tailed_triangle,
    triangle,
    wedge,
)
from repro.compiler import compile_motifs, compile_pattern
from repro.engine import (
    BudgetExceeded,
    CMapSoftwareEngine,
    ObliviousEngine,
    PatternAwareEngine,
    check_consistency,
    mine,
    mine_multi,
    mine_oblivious,
)

RANDOM = erdos_renyi(24, 0.3, seed=77)


class TestClosedForms:
    def test_triangles_in_complete_graph(self):
        g = complete_graph(8)
        plan = compile_pattern(triangle())
        assert mine(g, plan).counts[0] == comb(8, 3)

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_cliques_in_complete_graph(self, k):
        g = complete_graph(7)
        assert mine(g, compile_pattern(k_clique(k))).counts[0] == comb(7, k)

    def test_no_triangles_in_grid(self):
        g = grid_graph(5, 5)
        assert mine(g, compile_pattern(triangle())).counts[0] == 0

    def test_four_cycles_in_grid(self):
        g = grid_graph(4, 6)
        assert mine(g, compile_pattern(four_cycle())).counts[0] == 3 * 5

    def test_wedges_from_degrees(self):
        g = RANDOM
        expected = sum(
            comb(g.degree(v), 2) for v in g.vertices()
        )
        plan = compile_pattern(wedge(), induced=False)
        assert mine(g, plan).counts[0] == expected

    def test_single_cycle_graph(self):
        g = cycle_graph(4)
        assert mine(g, compile_pattern(four_cycle())).counts[0] == 1

    def test_path_graph_has_no_cycles(self):
        g = path_graph(10)
        assert mine(g, compile_pattern(four_cycle())).counts[0] == 0


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "pattern,induced",
        [
            (triangle(), False),
            (k_clique(4), False),
            (four_cycle(), False),
            (diamond(), False),
            (tailed_triangle(), False),
            (wedge(), True),
            (four_cycle(), True),
            (diamond(), True),
        ],
        ids=lambda x: getattr(x, "name", str(x)),
    )
    def test_all_paths_agree(self, pattern, induced):
        check_consistency(RANDOM, pattern, induced=induced)

    def test_star_graph_edge_cases(self):
        g = star_graph(6)
        check_consistency(g, wedge(), induced=True)
        check_consistency(g, triangle())

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], num_vertices=10)
        assert mine(g, compile_pattern(triangle())).counts[0] == 0


class TestEmbeddingsCollection:
    def test_collected_triangles_are_triangles(self):
        plan = compile_pattern(triangle(), use_orientation=False)
        result = mine(RANDOM, plan, collect=True)
        assert len(result.embeddings) == result.counts[0]
        for a, b, c in result.embeddings:
            assert RANDOM.has_edge(a, b)
            assert RANDOM.has_edge(b, c)
            assert RANDOM.has_edge(a, c)

    def test_collected_embeddings_unique_as_edge_images(self):
        # Distinct edge-induced matches can share a vertex set (a K4
        # holds three 4-cycles), so uniqueness holds on edge images.
        plan = compile_pattern(four_cycle())
        result = mine(RANDOM, plan, collect=True)
        position = {v: d for d, v in enumerate(plan.matching_order)}
        images = set()
        for emb in result.embeddings:
            image = frozenset(
                frozenset((emb[position[u]], emb[position[v]]))
                for u, v in plan.pattern.edges
            )
            images.add(image)
        assert len(images) == len(result.embeddings)

    def test_oriented_vs_symmetry_same_triangles(self):
        oriented = mine(
            RANDOM, compile_pattern(triangle()), collect=True
        )
        ordered = mine(
            RANDOM,
            compile_pattern(triangle(), use_orientation=False),
            collect=True,
        )
        assert {frozenset(e) for e in oriented.embeddings} == {
            frozenset(e) for e in ordered.embeddings
        }


class TestMultiPattern:
    def test_three_motifs(self):
        plan = compile_motifs(3)
        result = mine_multi(RANDOM, plan)
        expected = tuple(
            brute_force_count(RANDOM, m, induced=True)
            for m in plan.patterns
        )
        assert result.counts == expected

    def test_four_motifs(self):
        g = erdos_renyi(16, 0.35, seed=3)
        plan = compile_motifs(4)
        result = mine_multi(g, plan)
        expected = tuple(
            brute_force_count(g, m, induced=True) for m in plan.patterns
        )
        assert result.counts == expected

    def test_motif_total_equals_connected_subgraph_count(self):
        # Sum over motifs == number of connected induced k-subgraphs,
        # which the oblivious engine enumerates directly.
        plan = compile_motifs(3)
        total = mine_multi(RANDOM, plan).total
        oblivious = ObliviousEngine(
            RANDOM, list(plan.patterns), induced=True
        ).run()
        assert oblivious.counters.subgraphs_enumerated == total


class TestFrontierMemoization:
    def test_diamond_saves_set_ops(self):
        plan = compile_pattern(diamond(), use_orientation=False)
        with_memo = PatternAwareEngine(RANDOM, plan, use_frontier_memo=True)
        without = PatternAwareEngine(RANDOM, plan, use_frontier_memo=False)
        r1, r2 = with_memo.run(), without.run()
        assert r1.counts == r2.counts
        assert (
            r1.counters.setop_iterations < r2.counters.setop_iterations
        )
        assert r1.counters.frontier_hits > 0

    def test_four_cycle_gains_nothing(self):
        plan = compile_pattern(four_cycle())
        engine = PatternAwareEngine(RANDOM, plan)
        engine.run()
        assert engine.counters.frontier_hits == 0


class TestBatchLeaves:
    """The batch-frontier leaf path is a pure value/counter drop-in."""

    PATTERNS = [
        triangle(),
        k_clique(4),
        k_clique(5),
        four_cycle(),
        diamond(),
        tailed_triangle(),
    ]

    @pytest.mark.parametrize(
        "pattern", PATTERNS, ids=lambda p: p.name
    )
    @pytest.mark.parametrize("memo", [True, False], ids=["memo", "nomemo"])
    def test_counts_and_counters_bit_identical(self, pattern, memo):
        plan = compile_pattern(pattern)
        batched = PatternAwareEngine(
            RANDOM, plan, use_frontier_memo=memo, batch_leaves=True
        ).run()
        looped = PatternAwareEngine(
            RANDOM, plan, use_frontier_memo=memo, batch_leaves=False
        ).run()
        assert batched.counts == looped.counts
        assert batched.counters == looped.counters

    def test_batch_path_engages_on_cliques(self):
        # Sanity that the parametrized parity above actually exercises
        # the batch kernel: a clique leaf fits the single-intersection
        # shape, so the batched run must take it (same counters, but
        # the engine records a batch shape).
        plan = compile_pattern(k_clique(4))
        engine = PatternAwareEngine(RANDOM, plan, batch_leaves=True)
        assert engine._batch_leaf is not None
        engine.run()

    def test_closed_form_counts_survive_batching(self):
        g = complete_graph(9)
        plan = compile_pattern(k_clique(4))
        got = PatternAwareEngine(g, plan, batch_leaves=True).run()
        assert got.counts[0] == comb(9, 4)


class TestBatchFrontier:
    """Level-synchronous frontier mode is a pure value/counter drop-in."""

    PATTERNS = [
        triangle(),
        wedge(),
        k_clique(4),
        k_clique(5),
        four_cycle(),
        diamond(),
        tailed_triangle(),
    ]

    @pytest.mark.parametrize(
        "pattern", PATTERNS, ids=lambda p: p.name
    )
    @pytest.mark.parametrize("memo", [True, False], ids=["memo", "nomemo"])
    @pytest.mark.parametrize(
        "induced", [False, True], ids=["edge", "induced"]
    )
    def test_counts_and_counters_bit_identical(
        self, pattern, memo, induced
    ):
        plan = compile_pattern(pattern, induced=induced)
        frontier = PatternAwareEngine(
            RANDOM, plan, use_frontier_memo=memo, batch_frontier=True
        ).run()
        recursive = PatternAwareEngine(
            RANDOM, plan, use_frontier_memo=memo
        ).run()
        assert frontier.counts == recursive.counts
        assert frontier.counters == recursive.counters

    def test_collect_order_identical(self):
        plan = compile_pattern(triangle())
        frontier = PatternAwareEngine(
            RANDOM, plan, collect=True, batch_frontier=True
        ).run()
        recursive = PatternAwareEngine(RANDOM, plan, collect=True).run()
        assert frontier.embeddings == recursive.embeddings

    def test_row_limit_fallback_bit_identical(self):
        # A row limit below any real frontier width forces the
        # recursion fallback, which must stay charge-identical (the
        # budget check is pure index arithmetic, so no double charges).
        plan = compile_pattern(k_clique(4))
        engine = PatternAwareEngine(
            RANDOM, plan, batch_frontier=True, frontier_row_limit=4
        )
        got = engine.run()
        assert engine.frontier_stats()["fallbacks"] > 0
        ref = PatternAwareEngine(RANDOM, plan).run()
        assert got.counts == ref.counts
        assert got.counters == ref.counters

    def test_frontier_gauges_published(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        plan = compile_pattern(k_clique(4))
        PatternAwareEngine(
            RANDOM, plan, batch_frontier=True, metrics=registry
        ).run()
        snap = registry.snapshot()
        assert snap["engine.frontier.rows_expanded"] > 0
        assert snap["engine.frontier.peak_width"] > 0
        assert snap["engine.frontier.fallbacks"] == 0

    def test_multi_pattern_falls_back_to_recursion(self):
        # MultiPlan mining keeps the node-walk path; batch_frontier is
        # accepted but must not change anything.
        plan = compile_motifs(3)
        frontier = PatternAwareEngine(
            RANDOM, plan, batch_frontier=True
        ).run()
        recursive = PatternAwareEngine(RANDOM, plan).run()
        assert frontier.counts == recursive.counts
        assert frontier.counters == recursive.counters


class TestCMapSoftwareEngine:
    def test_counts_match_base_engine(self):
        for pattern in (four_cycle(), diamond(), tailed_triangle()):
            plan = compile_pattern(pattern, use_orientation=False)
            base = PatternAwareEngine(RANDOM, plan).run()
            cm = CMapSoftwareEngine(RANDOM, plan).run()
            assert base.counts == cm.counts

    def test_cmap_stack_discipline(self):
        plan = compile_pattern(four_cycle())
        engine = CMapSoftwareEngine(RANDOM, plan)
        engine.run()
        # After a full run every inserted entry was removed.
        assert engine.cmap.values.max() == 0
        assert not engine._inserted

    def test_read_ratio_high_for_four_cycle(self):
        # §VII-C reports 86-98% read ratios for 4-cycle.
        plan = compile_pattern(four_cycle())
        engine = CMapSoftwareEngine(RANDOM, plan)
        engine.run()
        assert engine.cmap.read_ratio > 0.5

    def test_multi_pattern_supported(self):
        plan = compile_motifs(3)
        base = mine_multi(RANDOM, plan)
        cm = CMapSoftwareEngine(RANDOM, plan).run()
        assert base.counts == cm.counts


class TestOblivious:
    def test_matches_pattern_aware(self):
        plan = compile_pattern(four_cycle())
        aware = mine(RANDOM, plan)
        obl = mine_oblivious(RANDOM, four_cycle())
        assert aware.counts == obl.counts

    def test_enumerates_more_work(self):
        # The whole point of pattern awareness (paper §III).
        aware = PatternAwareEngine(
            RANDOM, compile_pattern(k_clique(4))
        )
        aware.run()
        obl = ObliviousEngine(RANDOM, [k_clique(4)])
        obl.run()
        assert obl.counters.subgraphs_enumerated > aware.counters.matches
        assert obl.counters.isomorphism_tests > 0

    def test_budget_enforced(self):
        with pytest.raises(BudgetExceeded):
            mine_oblivious(RANDOM, triangle(), max_subgraphs=5)

    def test_mixed_sizes_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            ObliviousEngine(RANDOM, [triangle(), four_cycle()])

    def test_esu_uniqueness_on_triangle_free_graph(self):
        g = grid_graph(4, 4)
        obl = ObliviousEngine(g, [wedge()], induced=True)
        result = obl.run()
        expected = sum(comb(g.degree(v), 2) for v in g.vertices())
        assert result.counts[0] == expected


class TestCounters:
    def test_counters_populated(self):
        plan = compile_pattern(triangle(), use_orientation=False)
        result = mine(RANDOM, plan)
        c = result.counters
        assert c.tasks == RANDOM.num_vertices
        assert c.set_intersections > 0
        assert c.setop_iterations > 0
        assert c.adjacency_bytes > 0
        assert c.matches == result.counts[0]

    def test_merge(self):
        from repro.engine import OpCounters

        a = OpCounters(tasks=1, matches=2)
        b = OpCounters(tasks=3, matches=4)
        a.merge(b)
        assert a.tasks == 4 and a.matches == 6

    def test_as_dict_round_trip(self):
        from repro.engine import OpCounters

        c = OpCounters(tasks=5)
        assert c.as_dict()["tasks"] == 5
