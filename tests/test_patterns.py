"""Tests for Pattern, the named library, and automorphisms."""

import pytest

from repro.errors import PatternError
from repro.patterns import (
    Pattern,
    cycle,
    diamond,
    four_cycle,
    from_name,
    house,
    k_clique,
    path,
    star,
    tailed_triangle,
    triangle,
    wedge,
)


class TestPatternBasics:
    def test_edges_canonicalized(self):
        p = Pattern(3, [(1, 0), (0, 1), (2, 1)])
        assert p.edges == ((0, 1), (1, 2))
        assert p.num_edges == 2

    def test_self_loop_rejected(self):
        with pytest.raises(PatternError):
            Pattern(2, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(PatternError):
            Pattern(2, [(0, 2)])

    def test_zero_vertices_rejected(self):
        with pytest.raises(PatternError):
            Pattern(0, [])

    def test_neighbors_and_degree(self):
        p = triangle()
        assert p.neighbors(0) == frozenset({1, 2})
        assert p.degree(0) == 2

    def test_connectivity(self):
        assert triangle().is_connected()
        assert not Pattern(3, [(0, 1)]).is_connected()
        assert Pattern(1, []).is_connected()

    def test_is_clique(self):
        assert k_clique(4).is_clique()
        assert not diamond().is_clique()

    def test_equality_is_label_equality(self):
        assert triangle() == Pattern(3, [(0, 1), (1, 2), (0, 2)])
        assert wedge() != Pattern(3, [(0, 1), (0, 2)])  # same shape, labels differ

    def test_hashable(self):
        assert len({triangle(), k_clique(3)}) == 1

    def test_relabel(self):
        # perm maps old label u to new label perm[u]: 0->2, 1->0, 2->1.
        p = wedge().relabel([2, 0, 1])
        assert p.edges == ((0, 1), (0, 2))

    def test_relabel_requires_permutation(self):
        with pytest.raises(PatternError):
            wedge().relabel([0, 0, 1])

    def test_induced_subpattern(self):
        p = diamond().induced_subpattern([0, 1, 2])
        assert p == triangle()

    def test_networkx_round_trip(self):
        p = house()
        back = Pattern.from_networkx(p.to_networkx())
        assert back.edges == p.edges


class TestAutomorphisms:
    @pytest.mark.parametrize(
        "pattern,expected",
        [
            (triangle(), 6),
            (k_clique(4), 24),
            (four_cycle(), 8),
            (diamond(), 4),
            (tailed_triangle(), 2),
            (wedge(), 2),
            (path(4), 2),
            (star(3), 6),
            (cycle(5), 10),
        ],
    )
    def test_group_sizes(self, pattern, expected):
        autos = pattern.automorphisms()
        assert len(autos) == expected

    def test_identity_always_present(self):
        for p in (triangle(), diamond(), house()):
            assert tuple(range(p.num_vertices)) in p.automorphisms()

    def test_automorphisms_preserve_edges(self):
        p = four_cycle()
        for perm in p.automorphisms():
            for u, v in p.edges:
                assert p.has_edge(perm[u], perm[v])

    def test_automorphisms_form_group(self):
        p = diamond()
        autos = set(p.automorphisms())
        for a in autos:
            for b in autos:
                composed = tuple(a[b[i]] for i in range(p.num_vertices))
                assert composed in autos


class TestLibrary:
    def test_from_name_known(self):
        assert from_name("triangle") == triangle()
        assert from_name("diamond") == diamond()

    def test_from_name_parses_cliques(self):
        assert from_name("7-clique") == k_clique(7)

    def test_from_name_unknown(self):
        with pytest.raises(PatternError):
            from_name("octopus")

    def test_invalid_parameters(self):
        with pytest.raises(PatternError):
            k_clique(1)
        with pytest.raises(PatternError):
            path(1)
        with pytest.raises(PatternError):
            star(0)
        with pytest.raises(PatternError):
            cycle(2)

    def test_shapes(self):
        assert four_cycle().num_edges == 4
        assert diamond().num_edges == 5
        assert tailed_triangle().num_edges == 4
        assert house().num_vertices == 5

    def test_canonical_forms_distinguish_shapes(self):
        assert four_cycle().canonical_form() != diamond().canonical_form()
        assert (
            four_cycle().canonical_form()
            != tailed_triangle().canonical_form()
        )
        # Same shape, different labelling -> same canonical form.
        shifted = four_cycle().relabel([1, 2, 3, 0])
        assert shifted.canonical_form() == four_cycle().canonical_form()
