"""Concurrency tests for the mining service.

N threads hammer one service with interleaved requests across two
graphs and three patterns.  The assertions are exact, not statistical:

* every response is bit-identical to the direct serial engine for its
  (graph, pattern) cell — arrival order cannot leak into results;
* the compiler ran exactly once per canonical pattern (single-flight
  plan cache), so plan-cache hits match the closed-form expectation
  ``requests - distinct_patterns``;
* admission control never let more than ``max_active`` requests in
  flight, and overloads surfaced as rejections, never hangs.
"""

import threading

import pytest

from repro.compiler import compile_pattern
from repro.engine import PatternAwareEngine
from repro.errors import ServiceOverloaded
from repro.graph import erdos_renyi, power_law_cluster
from repro.serve import MineRequest, MiningService
from repro.patterns import four_cycle, k_clique, triangle

GRAPHS = {
    "er": erdos_renyi(100, 0.08, seed=11, name="er"),
    "pl": power_law_cluster(120, 3, 0.4, seed=13, name="pl"),
}
PATTERNS = {
    "triangle": triangle(),
    "4-clique": k_clique(4),
    "4-cycle": four_cycle(),
}

#: Direct serial ground truth per (graph, pattern) cell.
BASELINE = {
    (gname, pname): PatternAwareEngine(
        graph, compile_pattern(pattern)
    ).run()
    for gname, graph in GRAPHS.items()
    for pname, pattern in PATTERNS.items()
}


def _cells(repeat: int):
    """The interleaved request schedule: every cell, ``repeat`` times."""
    return [
        (gname, pname)
        for _ in range(repeat)
        for gname in GRAPHS
        for pname in PATTERNS
    ]


class TestInterleavedRequests:
    @pytest.mark.parametrize("threads", [4, 8])
    def test_results_independent_of_arrival_order(self, threads):
        repeat = 4
        schedule = _cells(repeat)
        with MiningService(
            workers=1, max_active=len(schedule), threads=threads
        ) as svc:
            for name, graph in GRAPHS.items():
                svc.register_graph(name, graph)
            barrier = threading.Barrier(threads)
            results = {}
            errors = []

            def worker(worker_id: int) -> None:
                barrier.wait()  # maximize interleaving
                try:
                    for i, (gname, pname) in enumerate(schedule):
                        if i % threads != worker_id:
                            continue
                        response = svc.request(
                            MineRequest(
                                graph=gname, pattern=PATTERNS[pname]
                            )
                        )
                        results[(worker_id, i)] = (gname, pname, response)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            pool = [
                threading.Thread(target=worker, args=(t,))
                for t in range(threads)
            ]
            for t in pool:
                t.start()
            for t in pool:
                t.join()

            assert not errors
            assert len(results) == len(schedule)
            for gname, pname, response in results.values():
                base = BASELINE[(gname, pname)]
                assert response.counts == base.counts
                assert (
                    response.counters.as_dict() == base.counters.as_dict()
                )

            # Closed-form plan-cache expectation: the cache is global
            # across graphs, so 3 distinct canonical patterns compile
            # exactly once each; every other request is a hit.
            assert svc.compiles == len(PATTERNS)
            plan = svc.cache_stats()["plan"]
            assert plan["misses"] == len(PATTERNS)
            assert plan["hits"] == len(schedule) - len(PATTERNS)

            # Admission stayed within bounds and nothing was rejected.
            assert svc.active_peak <= len(schedule)
            assert svc.requests_rejected == 0
            assert svc.requests_completed == len(schedule)

    def test_single_flight_compiles_under_concurrent_first_requests(self):
        # 8 threads race the very first request for the same pattern:
        # one leader compiles, everyone else waits for that plan.
        with MiningService(workers=1, max_active=16, threads=8) as svc:
            svc.register_graph("er", GRAPHS["er"])
            barrier = threading.Barrier(8)
            responses = []
            lock = threading.Lock()

            def worker() -> None:
                barrier.wait()
                response = svc.request(
                    MineRequest(graph="er", pattern=k_clique(4))
                )
                with lock:
                    responses.append(response)

            pool = [threading.Thread(target=worker) for _ in range(8)]
            for t in pool:
                t.start()
            for t in pool:
                t.join()

            assert len(responses) == 8
            assert svc.compiles == 1
            base = BASELINE[("er", "4-clique")]
            for response in responses:
                assert response.counts == base.counts
            # Single-flight result cache: the mine also ran only once.
            stats = svc.stats()
            assert (
                stats["graphs"]["er"]["pool"]["requests_served"] == 1
            )

    def test_admission_bound_is_enforced_under_load(self):
        max_active = 3
        with MiningService(
            workers=1, max_active=max_active, threads=2
        ) as svc:
            svc.register_graph("er", GRAPHS["er"])
            entry = svc._graphs["er"]
            admitted = []
            with entry.mine_lock:  # park every admitted request
                for _ in range(max_active):
                    admitted.append(
                        svc.submit(MineRequest(graph="er", app="TC"))
                    )
                rejected = 0
                for _ in range(5):
                    try:
                        svc.submit(MineRequest(graph="er", app="TC"))
                    except ServiceOverloaded:
                        rejected += 1
                assert rejected == 5
                assert svc.active_tasks == max_active
            for future in admitted:
                future.result()
            assert svc.active_peak == max_active
            assert svc.requests_rejected == 5
            # Rejections cleared: the service takes traffic again.
            assert svc.mine("er", app="TC").counts
