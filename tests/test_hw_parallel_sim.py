"""Tests for the trace/replay parallel simulator (`repro.hw.parallel_sim`).

The contract under test is strict: for any worker count, the returned
``SimReport`` must be *bit-identical* (full ``as_dict`` equality —
cycles, per-PE stats, cache/NoC/DRAM counters, derived rates) to the
serial simulator on the same inputs.
"""

import dataclasses

import pytest

from repro.compiler import compile_motifs, compile_pattern
from repro.errors import SimulationError
from repro.graph import erdos_renyi, load_dataset, star_graph
from repro.hw import FlexMinerConfig, simulate, simulate_parallel
from repro.obs import MetricsRegistry
from repro.patterns import diamond, four_cycle, k_clique, triangle

GRAPH = erdos_renyi(48, 0.25, seed=13)
CONFIG = FlexMinerConfig(num_pes=4)


def _assert_identical(parallel, serial):
    ref, got = serial.as_dict(), parallel.as_dict()
    diff = sorted(k for k in ref if ref[k] != got.get(k))
    assert not diff, f"SimReport drift on {diff}"
    assert got == ref


class TestBitIdentical:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize(
        "pattern", [triangle(), k_clique(4), four_cycle(), diamond()],
        ids=lambda p: p.name,
    )
    def test_matches_serial(self, pattern, workers):
        plan = compile_pattern(pattern)
        serial = simulate(GRAPH, plan, CONFIG)
        parallel = simulate_parallel(GRAPH, plan, CONFIG, workers=workers)
        _assert_identical(parallel, serial)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_multiplan(self, workers):
        plan = compile_motifs(3)
        serial = simulate(GRAPH, plan, CONFIG)
        parallel = simulate_parallel(GRAPH, plan, CONFIG, workers=workers)
        _assert_identical(parallel, serial)

    def test_legacy_timing_path_through_replay(self):
        # The replay PEs honor timing_kernels=False too: the parallel
        # runner must reproduce the *legacy* reference bit for bit.
        plan = compile_pattern(four_cycle())
        config = dataclasses.replace(CONFIG, timing_kernels=False)
        serial = simulate(GRAPH, plan, config)
        parallel = simulate_parallel(GRAPH, plan, config, workers=2)
        _assert_identical(parallel, serial)

    def test_chunked_tasks(self):
        # Task splitting shards hub roots into (root, chunk) tasks; the
        # trace phase must key and replay them independently.
        g = star_graph(40)
        plan = compile_pattern(triangle())
        config = FlexMinerConfig(num_pes=4, task_split_degree=8)
        serial = simulate(g, plan, config)
        parallel = simulate_parallel(g, plan, config, workers=2)
        _assert_identical(parallel, serial)

    def test_no_cmap(self):
        plan = compile_pattern(four_cycle())
        config = FlexMinerConfig(num_pes=4, cmap_bytes=0)
        serial = simulate(GRAPH, plan, config)
        parallel = simulate_parallel(GRAPH, plan, config, workers=2)
        _assert_identical(parallel, serial)

    def test_roots_subset(self):
        plan = compile_pattern(triangle())
        roots = [0, 3, 7, 11]
        serial = simulate(GRAPH, plan, CONFIG, roots=roots)
        parallel = simulate_parallel(
            GRAPH, plan, CONFIG, workers=2, roots=roots
        )
        _assert_identical(parallel, serial)

    def test_dataset_cell(self):
        # One real harness cell end to end (the acceptance shape).
        graph = load_dataset("As")
        plan = compile_pattern(triangle())
        config = FlexMinerConfig(num_pes=8, task_split_degree=32)
        serial = simulate(graph, plan, config)
        parallel = simulate_parallel(graph, plan, config, workers=4)
        _assert_identical(parallel, serial)


class TestValidationAndMetrics:
    def test_workers_must_be_positive(self):
        plan = compile_pattern(triangle())
        with pytest.raises(ValueError):
            simulate_parallel(GRAPH, plan, CONFIG, workers=0)

    def test_multiplan_split_rejected(self):
        plan = compile_motifs(3)
        config = FlexMinerConfig(num_pes=2, task_split_degree=4)
        with pytest.raises(SimulationError):
            simulate_parallel(GRAPH, plan, config, workers=2)

    def test_metrics_gauges(self):
        plan = compile_pattern(triangle())
        metrics = MetricsRegistry()
        report = simulate_parallel(
            GRAPH, plan, CONFIG, workers=2, metrics=metrics
        )
        snap = metrics.snapshot()
        assert snap["sim.parallel.workers"] == 2
        assert snap["sim.parallel.tasks"] == report.tasks
