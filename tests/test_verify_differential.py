"""Tests for the differential runner, including mutation tests.

The mutation tests are the subsystem's own acceptance check: a
deliberately broken backend (symmetry bounds stripped from the compiled
plan, so matches are multi-counted) must be caught by the fuzzer and
shrunk to a handful of vertices.
"""

import re

import pytest

from repro.graph import erdos_renyi
from repro.patterns import four_cycle, triangle, wedge
from repro.verify import (
    BACKENDS,
    VerifyCase,
    fuzz,
    resolve_backends,
    run_case,
)
from repro.verify.differential import SIM_DRIFT_BACKENDS, ZERO_DRIFT_BACKENDS


def small_graph(seed=0):
    return erdos_renyi(10, 0.45, seed=seed)


class TestFullMatrix:
    @pytest.mark.parametrize(
        "pattern", [triangle(), wedge(), four_cycle()],
        ids=lambda p: p.name,
    )
    def test_all_backends_agree(self, pattern):
        report = run_case(VerifyCase(graph=small_graph(), pattern=pattern))
        assert report.ok, [str(m) for m in report.mismatches]
        assert set(report.counts) == set(BACKENDS)
        assert len(set(report.counts.values())) == 1

    def test_motif_case(self):
        report = run_case(VerifyCase(graph=small_graph(1), motif_k=3))
        assert report.ok, [str(m) for m in report.mismatches]
        assert all(len(c) == 2 for c in report.counts.values())

    def test_serve_backends_registered_and_zero_drift(self):
        # The serving layer participates in the differential matrix,
        # and is held to the bit-identical OpCounters invariant — the
        # caches must not change what gets counted, only when.
        assert "serve-pool-2" in BACKENDS
        assert "serve-cached" in BACKENDS
        assert "serve-pool-2" in ZERO_DRIFT_BACKENDS
        assert "serve-cached" in ZERO_DRIFT_BACKENDS

    def test_correct_expected_passes(self):
        graph = small_graph(2)
        truth = run_case(
            VerifyCase(graph=graph, pattern=triangle()),
            backends=("serial",),
        ).truth
        report = run_case(
            VerifyCase(graph=graph, pattern=triangle(), expected=truth)
        )
        assert report.ok

    def test_serial_truth_without_oracle(self):
        report = run_case(
            VerifyCase(graph=small_graph(3), pattern=triangle()),
            oracle=False,
        )
        assert report.ok
        assert report.truth == report.counts["serial"]


class TestMismatchDetection:
    def test_wrong_expected_flags_oracle(self):
        report = run_case(
            VerifyCase(
                graph=small_graph(), pattern=triangle(), expected=(10**9,)
            ),
            backends=("serial", "materialize"),
        )
        assert not report.ok
        # Truth stays the oracle, so the backends all agree with it and
        # only the bogus expectation itself is flagged.
        kinds = {m.kind for m in report.mismatches}
        assert kinds == {"oracle-expected"}

    def test_count_bug_detected(self):
        def off_by_one(case, plan):
            counts, ctrs = BACKENDS["serial"](case, plan)
            return tuple(c + 1 for c in counts), None

        report = run_case(
            VerifyCase(graph=small_graph(), pattern=triangle()),
            backends={"serial": BACKENDS["serial"], "buggy": off_by_one},
        )
        assert [m for m in report.mismatches if m.backend == "buggy"]
        assert all(m.kind == "count" for m in report.mismatches)

    def test_counter_drift_detected(self):
        class DriftedCounters:
            def __init__(self, base):
                self._d = dict(base)
                self._d["set_intersections"] = (
                    self._d.get("set_intersections", 0) + 1
                )

            def as_dict(self):
                return dict(self._d)

        def drifted(case, plan):
            counts, ctrs = BACKENDS["serial"](case, plan)
            return counts, DriftedCounters(ctrs.as_dict())

        # The injected name must be one the zero-drift invariant covers.
        assert "legacy" in ZERO_DRIFT_BACKENDS
        report = run_case(
            VerifyCase(graph=small_graph(), pattern=triangle()),
            backends={"serial": BACKENDS["serial"], "legacy": drifted},
        )
        drift = [m for m in report.mismatches if m.kind == "counter-drift"]
        assert drift and drift[0].backend == "legacy"
        assert "set_intersections" in str(drift[0])
        assert not [m for m in report.mismatches if m.kind == "count"]

    def test_sim_report_drift_detected(self):
        # A sim flavor whose counts are right but whose timing model
        # drifted by a single cycle must be flagged as
        # sim-report-drift, not pass on count parity alone.
        class DriftedReport:
            def __init__(self, base):
                self._d = dict(base)
                self._d["cycles"] = self._d["cycles"] + 1.0

            def as_dict(self):
                return dict(self._d)

        def drifted_sim(case, plan):
            counts, report = BACKENDS["sim"](case, plan)
            return counts, DriftedReport(report.as_dict())

        # The injected name must be one the sim-drift invariant covers.
        assert "sim-fast" in SIM_DRIFT_BACKENDS
        report = run_case(
            VerifyCase(graph=small_graph(), pattern=triangle()),
            backends={
                "serial": BACKENDS["serial"],
                "sim": BACKENDS["sim"],
                "sim-fast": drifted_sim,
            },
        )
        drift = [
            m for m in report.mismatches if m.kind == "sim-report-drift"
        ]
        assert drift and drift[0].backend == "sim-fast"
        assert "cycles" in str(drift[0])
        assert not [m for m in report.mismatches if m.kind == "count"]

    def test_error_backend_reported(self):
        def broken(case, plan):
            raise RuntimeError("kaboom")

        report = run_case(
            VerifyCase(graph=small_graph(), pattern=triangle()),
            backends={"serial": BACKENDS["serial"], "bad": broken},
        )
        errors = [m for m in report.mismatches if m.kind == "error"]
        assert errors and "kaboom" in errors[0].actual

    def test_resolve_backends_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backends(["serial", "warp-drive"])


def _strip_symmetry(case, plan):
    """A deliberately broken backend: every pruneBy bound widened to
    ``inf``, so symmetric matches are multi-counted."""
    from repro.compiler import emit_ir, parse_ir
    from repro.engine import PatternAwareEngine

    broken = parse_ir(
        re.sub(r"pruneBy\(.*?, \{", "pruneBy(inf, {", emit_ir(plan))
    )
    result = PatternAwareEngine(case.graph, broken).run()
    return result.counts, result.counters


class TestMutation:
    """The injected-bug acceptance test from the issue."""

    def test_fuzzer_catches_and_shrinks_injected_bug(self):
        report = fuzz(
            seed=0,
            cases=20,
            backends={
                "serial": BACKENDS["serial"],
                "buggy": _strip_symmetry,
            },
            patterns=[four_cycle()],
            families=("er", "plc"),
            shrink=True,
        )
        assert not report.ok, "the broken backend was never caught"
        for failure in report.failures:
            assert any(
                m.backend == "buggy" and m.kind == "count"
                for m in failure.report.mismatches
            )
            assert failure.shrunk is not None
            topo = getattr(failure.shrunk.graph, "graph", failure.shrunk.graph)
            assert topo.num_vertices <= 8, (
                f"shrink left {topo.num_vertices} vertices"
            )
            assert not failure.shrunk_report.ok

    def test_shrunk_reproducer_is_minimal_four_cycle(self):
        report = fuzz(
            seed=0,
            cases=20,
            backends={
                "serial": BACKENDS["serial"],
                "buggy": _strip_symmetry,
            },
            patterns=[four_cycle()],
            families=("er",),
            shrink=True,
        )
        assert not report.ok
        # Overcounting needs at least one 4-cycle in the graph; greedy
        # deletion cannot go below the pattern itself.
        smallest = min(
            getattr(f.shrunk.graph, "graph", f.shrunk.graph).num_vertices
            for f in report.failures
            if f.shrunk is not None
        )
        assert smallest == 4
