"""Tests for the hardware c-map model (paper §VI)."""

import pytest

from repro.errors import SimulationError
from repro.hw import FlexMinerConfig, HardwareCMap


def make(capacity=64, **kwargs):
    return HardwareCMap(capacity, **kwargs)


class TestFunctional:
    def test_insert_then_query(self):
        cm = make()
        cm.try_insert([4, 5, 6], depth=0)
        assert cm.query(4) == 0b001
        assert cm.query(9) == 0

    def test_value_accumulates_bits(self):
        # Fig. 12: vertex 4 connected to depths 0 and 1 -> '011'.
        cm = make()
        cm.try_insert([4, 5], depth=0)
        cm.try_insert([4, 7], depth=1)
        assert cm.query(4) == 0b011
        assert cm.query(5) == 0b001
        assert cm.query(7) == 0b010

    def test_stack_removal_restores_state(self):
        cm = make()
        cm.try_insert([1, 2, 3], depth=0)
        cm.try_insert([2, 3, 4], depth=1)
        cm.remove_level(1)
        assert cm.query(2) == 0b001
        assert cm.query(4) == 0
        cm.remove_level(0)
        assert cm.occupancy == 0

    def test_out_of_order_removal_rejected(self):
        cm = make()
        cm.try_insert([1], depth=0)
        cm.try_insert([2], depth=1)
        with pytest.raises(SimulationError):
            cm.remove_level(0)

    def test_remove_on_empty_rejected(self):
        with pytest.raises(SimulationError):
            make().remove_level(0)

    def test_reset_clears_everything(self):
        cm = make()
        cm.try_insert([1, 2], depth=0)
        cm.reset()
        assert cm.occupancy == 0
        assert cm.query(1) == 0


class TestOverflow:
    def test_projected_overflow_rejected(self):
        cm = make(capacity=16, occupancy_threshold=0.75)
        outcome = cm.try_insert(list(range(13)), depth=0)
        assert not outcome.accepted
        assert cm.stats.overflows == 1
        assert cm.occupancy == 0  # nothing was written

    def test_fits_respects_threshold(self):
        cm = make(capacity=100, occupancy_threshold=0.5)
        assert cm.fits(50)
        assert not cm.fits(51)

    def test_depth_beyond_value_bits_rejected(self):
        # §VII-D: the 8-bit value limits representable depths.
        cm = make(value_bits=8)
        outcome = cm.try_insert([1], depth=8)
        assert not outcome.accepted

    def test_duplicate_keys_do_not_grow_occupancy(self):
        cm = make(capacity=16, occupancy_threshold=1.0)
        cm.try_insert([1, 2, 3], depth=0)
        cm.try_insert([1, 2, 3], depth=1)
        assert cm.occupancy == 3


class TestTiming:
    def test_single_cycle_at_low_occupancy(self):
        # §VI-A: "most accesses take only a single cycle".
        cm = make(capacity=1024)
        outcome = cm.try_insert(list(range(100)), depth=0)
        assert outcome.accepted
        assert outcome.cycles == 100  # one per entry

    def test_query_batch_counts(self):
        cm = make(capacity=1024)
        cycles = cm.query_batch(50)
        assert cycles >= 50
        assert cm.stats.queries == 50

    def test_probe_cost_rises_with_load(self):
        lightly = make(capacity=1024)
        heavily = make(capacity=1024, occupancy_threshold=1.0)
        heavily.try_insert(list(range(900)), depth=0)
        assert heavily._expected_probe_groups() > lightly._expected_probe_groups()

    def test_read_ratio(self):
        cm = make()
        cm.try_insert([1, 2, 3], depth=0)
        for _ in range(9):
            cm.query_batch(1)
        assert cm.stats.read_ratio == pytest.approx(9 / 12)


class TestExactMode:
    def test_exact_matches_analytic_functionally(self):
        exact = make(capacity=64, exact=True)
        approx = make(capacity=64, exact=False)
        for cm in (exact, approx):
            cm.try_insert([5, 69, 133], depth=0)  # all hash to slot 5
            cm.try_insert([6], depth=1)
        for key in (5, 69, 133, 6, 7):
            assert exact.query(key) == approx.query(key)

    def test_exact_collision_probes_cost_more(self):
        cm = make(capacity=64, banks=1, exact=True)
        out1 = cm.try_insert([5], depth=0)
        out2 = cm.try_insert([69], depth=1)  # collides with 5
        assert out2.cycles > out1.cycles

    def test_exact_delete_frees_slots(self):
        cm = make(capacity=8, exact=True, occupancy_threshold=1.0)
        for round_ in range(5):
            assert cm.try_insert([1, 2, 3], depth=0).accepted
            cm.remove_level(0)
        assert cm.occupancy == 0

    def test_banked_probing_divides_cycles(self):
        wide = make(capacity=64, banks=4, exact=True)
        narrow = make(capacity=64, banks=1, exact=True)
        for cm in (wide, narrow):
            cm.try_insert([0, 64, 128, 192], depth=0)  # same home slot
        assert (
            wide.stats.insert_cycles <= narrow.stats.insert_cycles
        )


class TestFromConfig:
    def test_disabled_when_zero_bytes(self):
        config = FlexMinerConfig(cmap_bytes=0)
        assert HardwareCMap.from_config(config) is None

    def test_sized_from_config(self):
        config = FlexMinerConfig(cmap_bytes=8 * 1024, cmap_entry_bytes=5)
        cm = HardwareCMap.from_config(config)
        assert cm.capacity == 8 * 1024 // 5
