"""Tests for repro.obs.prof: phases, worker lanes, determinism.

Pins the tentpole guarantees of the profiling layer:

* merged Chrome traces carry one lane per worker plus a coordinator
  lane, and validate structurally;
* the normalized ``task`` event set is identical across worker counts
  and across repeated runs (timestamps aside);
* profiling is zero-drift — counts, OpCounters and SimReports are
  bit-identical with profiling on or off at every worker count.
"""

import pytest

from repro.compiler import compile_pattern
from repro.engine import ParallelMiner
from repro.graph import erdos_renyi
from repro.hw import FlexMinerConfig, simulate, simulate_parallel
from repro.obs import (
    NULL_PROFILER,
    PhaseProfiler,
    Tracer,
    WORKERS_PID,
    event_key,
    trace_event_set,
    validate_trace,
)
from repro.obs.prof import LaneRecorder, NullProfiler, task_label
from repro.patterns import four_clique, triangle

ER = erdos_renyi(120, 0.07, seed=11, name="er")
PLAN = compile_pattern(triangle())
CLIQUE_PLAN = compile_pattern(four_clique())


class TestLaneRecorder:
    def test_records_span_tuple(self):
        rec = LaneRecorder()
        with rec.span("attach-shm"):
            pass
        assert len(rec) == 1
        name, t0, t1, cat, args = rec.spans[0]
        assert name == "attach-shm"
        assert t1 >= t0
        assert cat == "lane"
        assert args is None

    def test_args_preserved(self):
        rec = LaneRecorder()
        with rec.span("task v3", cat="task", root=3):
            pass
        assert rec.spans[0][4] == {"root": 3}

    def test_totals_counts_durations_by_cat(self):
        rec = LaneRecorder()
        with rec.span("a", cat="task"):
            pass
        with rec.span("b", cat="task"):
            pass
        with rec.span("w", cat="queue-wait"):
            pass
        assert rec.count("task") == 2
        assert rec.count("queue-wait") == 1
        assert len(rec.durations("task")) == 2
        assert rec.total("task") == pytest.approx(
            sum(rec.durations("task"))
        )
        assert rec.total("nope") == 0.0

    def test_span_recorded_on_exception(self):
        rec = LaneRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("boom"):
                raise RuntimeError("x")
        assert rec.count("lane") == 1


class TestTaskLabel:
    def test_plain_root(self):
        assert task_label(7) == "task v7"

    def test_chunked(self):
        assert task_label(7, (1, 4)) == "task v7 [1/4]"


class TestPhaseProfiler:
    def test_records_wall_cpu_rss(self):
        prof = PhaseProfiler()
        with prof.phase("setup", workers=2):
            sum(range(1000))
        (rec,) = prof.phases()
        assert rec.name == "setup"
        assert rec.wall_s >= 0.0
        assert rec.cpu_s >= 0.0
        assert rec.peak_rss_kb > 0
        assert rec.depth == 0
        assert rec.args == {"workers": 2}

    def test_nesting_depth(self):
        prof = PhaseProfiler()
        with prof.phase("outer"):
            with prof.phase("inner"):
                pass
        by_name = {p.name: p for p in prof.phases()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1

    def test_coverage_counts_depth0_only(self):
        prof = PhaseProfiler()
        with prof.phase("outer"):
            with prof.phase("inner"):
                sum(range(20000))
        assert 0.0 < prof.coverage() <= 1.0
        # only the outer phase counts toward coverage: the nested
        # inner span must not double-book the same wall time
        top = [p for p in prof.phases() if p.depth == 0]
        assert [p.name for p in top] == ["outer"]

    def test_as_dict_shape(self):
        prof = PhaseProfiler()
        with prof.phase("mine"):
            pass
        d = prof.as_dict()
        assert d["enabled"] is True
        assert d["coverage"] >= 0.0
        assert d["phases"][0]["name"] == "mine"

    def test_table_and_timeline_render(self):
        prof = PhaseProfiler()
        with prof.phase("compile"):
            pass
        with prof.phase("mine"):
            pass
        assert "compile" in prof.table()
        assert "% wall" in prof.table() or "%" in prof.table()
        assert "mine" in prof.timeline()

    def test_timeline_empty(self):
        assert "no phases" in PhaseProfiler().timeline()

    def test_disabled_profiler_records_nothing(self):
        prof = PhaseProfiler(enabled=False)
        with prof.phase("mine"):
            pass
        assert prof.phases() == []

    def test_disabled_profiler_still_mirrors_tracer(self):
        tracer = Tracer()
        prof = PhaseProfiler(tracer=tracer, enabled=False)
        with prof.phase("mine"):
            pass
        names = {e["name"] for e in tracer.events()}
        assert "mine" in names
        assert prof.phases() == []

    def test_null_profiler_inert(self):
        assert NULL_PROFILER.enabled is False
        with NULL_PROFILER.phase("x"):
            pass
        with NULL_PROFILER.lane_span("y"):
            pass
        NULL_PROFILER.init_lanes(4)
        NULL_PROFILER.add_lane(0, [("a", 0.0, 1.0, "lane", None)])
        assert NULL_PROFILER.phases() == []
        assert NULL_PROFILER.as_dict() == {
            "enabled": False,
            "phases": [],
        }
        assert isinstance(NULL_PROFILER, NullProfiler)


class TestLaneMerge:
    def test_add_lane_places_events_on_worker_tid(self):
        tracer = Tracer()
        prof = PhaseProfiler(tracer=tracer)
        prof.init_lanes(2)
        rec = LaneRecorder()
        with rec.span("attach-shm"):
            pass
        with rec.span(task_label(5), cat="task"):
            pass
        prof.add_lane(1, rec.spans)
        lane = [
            e
            for e in tracer.events()
            if e.get("pid") == WORKERS_PID and e.get("ph") == "X"
        ]
        assert {e["tid"] for e in lane} == {2}  # worker 1 -> tid 2
        assert {e["name"] for e in lane} == {
            "attach-shm",
            "task v5",
        }
        assert validate_trace(tracer.to_dict()) == []

    def test_lane_metadata_names(self):
        tracer = Tracer()
        prof = PhaseProfiler(tracer=tracer)
        prof.init_lanes(2)
        meta = [
            e["args"]["name"]
            for e in tracer.events()
            if e.get("ph") == "M" and e.get("pid") == WORKERS_PID
        ]
        assert "coordinator" in meta
        assert "worker 0" in meta and "worker 1" in meta

    def test_add_lane_noop_without_tracer(self):
        prof = PhaseProfiler()  # NULL_TRACER
        prof.init_lanes(2)
        prof.add_lane(0, [("a", 0.0, 1.0, "lane", None)])  # no raise

    def test_lane_span_coordinator_rail(self):
        tracer = Tracer()
        prof = PhaseProfiler(tracer=tracer)
        with prof.lane_span("counter-merge"):
            pass
        (ev,) = [
            e
            for e in tracer.events()
            if e.get("pid") == WORKERS_PID and e.get("ph") == "X"
        ]
        assert ev["tid"] == 0
        assert ev["name"] == "counter-merge"


class TestEventNormalization:
    def test_event_key_drops_timing_and_lane(self):
        a = {
            "name": "task v5",
            "ph": "X",
            "cat": "task",
            "ts": 10.0,
            "dur": 3.0,
            "pid": 2,
            "tid": 1,
        }
        b = dict(a, ts=99.0, dur=7.0, tid=3)
        assert event_key(a) == event_key(b)

    def test_event_key_drops_volatile_args(self):
        a = {"name": "s", "ph": "X", "cat": "lane",
             "args": {"seconds": 0.5, "tasks": 3}}
        b = {"name": "s", "ph": "X", "cat": "lane",
             "args": {"seconds": 9.9, "tasks": 3}}
        assert event_key(a) == event_key(b)
        assert ("tasks", 3) in event_key(a)[3]

    def test_trace_event_set_excludes_meta_and_counters(self):
        events = [
            {"name": "process_name", "ph": "M", "args": {"name": "x"}},
            {"name": "gauge", "ph": "C", "args": {"v": 1}},
            {"name": "task v1", "ph": "X", "cat": "task"},
        ]
        keys = trace_event_set({"traceEvents": events})
        assert len(keys) == 1
        assert next(iter(keys))[0] == "task v1"

    def test_trace_event_set_cat_filter(self):
        events = [
            {"name": "a", "ph": "X", "cat": "task"},
            {"name": "b", "ph": "X", "cat": "lane"},
        ]
        keys = trace_event_set(events, cats=("task",))
        assert {k[0] for k in keys} == {"a"}


def _mine_trace(workers, plan=PLAN):
    """Normalized task-event set of one profiled parallel mine."""
    tracer = Tracer()
    prof = PhaseProfiler(tracer=tracer)
    miner = ParallelMiner(
        ER, plan, workers=workers, tracer=tracer, profiler=prof
    )
    result = miner.mine()
    return result, tracer.to_dict()


class TestMergedTraceDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_one_lane_per_worker_plus_coordinator(self, workers):
        _result, trace = _mine_trace(workers)
        assert validate_trace(trace) == []
        lanes = {
            e["tid"]
            for e in trace["traceEvents"]
            if e.get("pid") == WORKERS_PID and e.get("ph") == "X"
        }
        # coordinator rail (tid 0) plus every worker lane
        assert lanes == set(range(workers + 1))

    def test_task_set_invariant_across_worker_counts(self):
        result1, trace1 = _mine_trace(1)
        result2, trace2 = _mine_trace(2)
        result4, trace4 = _mine_trace(4)
        assert result1.counts == result2.counts == result4.counts
        set1 = trace_event_set(trace1, cats=("task",))
        set2 = trace_event_set(trace2, cats=("task",))
        set4 = trace_event_set(trace4, cats=("task",))
        assert set1 == set2 == set4
        assert len(set1) > 0

    def test_full_set_stable_across_repeated_runs(self):
        _r1, trace_a = _mine_trace(2)
        _r2, trace_b = _mine_trace(2)
        assert trace_event_set(trace_a) == trace_event_set(trace_b)

    def test_sim_task_set_invariant_across_worker_counts(self):
        sets = []
        for workers in (1, 2):
            tracer = Tracer()
            prof = PhaseProfiler(tracer=tracer)
            simulate_parallel(
                ER, PLAN, FlexMinerConfig(num_pes=4),
                workers=workers, profiler=prof,
            )
            trace = tracer.to_dict()
            assert validate_trace(trace) == []
            sets.append(trace_event_set(trace, cats=("task",)))
        assert sets[0] == sets[1]
        assert len(sets[0]) > 0


class TestZeroDrift:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_mining_bit_identical_with_profiling(self, workers):
        plain = ParallelMiner(ER, CLIQUE_PLAN, workers=workers).mine()
        tracer = Tracer()
        prof = PhaseProfiler(tracer=tracer)
        profiled = ParallelMiner(
            ER, CLIQUE_PLAN, workers=workers,
            tracer=tracer, profiler=prof,
        ).mine()
        assert profiled.counts == plain.counts
        assert profiled.counters.as_dict() == plain.counters.as_dict()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_sim_report_bit_identical_with_profiling(self, workers):
        config = FlexMinerConfig(num_pes=4)
        plain = simulate_parallel(ER, PLAN, config, workers=workers)
        tracer = Tracer()
        prof = PhaseProfiler(tracer=tracer)
        profiled = simulate_parallel(
            ER, PLAN, config, workers=workers, profiler=prof
        )
        assert profiled.as_dict() == plain.as_dict()

    def test_serial_sim_bit_identical_with_profiling(self):
        config = FlexMinerConfig(num_pes=4)
        plain = simulate(ER, PLAN, config)
        prof = PhaseProfiler()
        profiled = simulate(ER, PLAN, config, profiler=prof)
        assert profiled.as_dict() == plain.as_dict()
        assert {p.name for p in prof.phases()} >= {
            "sim-setup",
            "simulate",
        }


class TestPhaseAttributionWiring:
    def test_parallel_miner_records_phases(self):
        prof = PhaseProfiler()
        ParallelMiner(ER, PLAN, workers=2, profiler=prof).mine()
        names = [p.name for p in prof.phases() if p.depth == 0]
        assert names.count("mine") == 1
        assert "setup" in names and "merge" in names

    def test_parallel_sim_records_phases(self):
        prof = PhaseProfiler()
        simulate_parallel(
            ER, PLAN, FlexMinerConfig(num_pes=4),
            workers=2, profiler=prof,
        )
        names = {p.name for p in prof.phases()}
        assert {"setup", "trace", "replay", "merge"} <= names
