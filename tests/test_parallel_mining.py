"""Tests for the multi-process mining backend.

The contract: a :class:`ParallelMiner` run produces counts identical to
the serial engine on every input, and — with chunking off — op counters
identical too (every counter field is additive and the task partition is
exact).  The shared-memory plumbing, the scheduler order, the
observability wiring and the CLI/apps entry points are covered here;
wall-clock behavior lives in the engine bench.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.compiler import compile_motifs, compile_pattern
from repro.engine import (
    ParallelMiner,
    PatternAwareEngine,
    mine_multi,
    mine_parallel,
    order_tasks,
)
from repro.graph import (
    CSRGraph,
    LabeledGraph,
    SharedCSRBuffers,
    assign_random_labels,
    attach_array,
    attach_shared_csr,
    erdos_renyi,
    power_law_cluster,
    share_array,
)
from repro.obs import MetricsRegistry
from repro.patterns import (
    Pattern,
    diamond,
    four_cycle,
    house,
    k_clique,
    triangle,
)

ER = erdos_renyi(150, 0.06, seed=7, name="er")
PL = power_law_cluster(200, 3, 0.4, seed=9, name="pl")
PATTERNS = [triangle(), four_cycle(), diamond(), k_clique(4), house()]


def serial(graph, plan, **kw):
    return PatternAwareEngine(graph, plan, **kw).run()


# ----------------------------------------------------------------------
# Shared-memory plumbing
# ----------------------------------------------------------------------
class TestSharedCSR:
    def test_round_trip(self):
        with SharedCSRBuffers(PL) as shared:
            view = attach_shared_csr(shared.spec)
            assert view.num_vertices == PL.num_vertices
            assert view.num_edges == PL.num_edges
            for v in (0, 1, PL.num_vertices - 1):
                np.testing.assert_array_equal(
                    view.neighbors(v), PL.neighbors(v)
                )
            for handle in view._shm:
                handle.close()

    def test_views_are_read_only(self):
        with SharedCSRBuffers(ER) as shared:
            view = attach_shared_csr(shared.spec)
            with pytest.raises(ValueError):
                view.indices[0] = 99
            for handle in view._shm:
                handle.close()

    def test_share_array_round_trip(self):
        labels = np.arange(10, dtype=np.int32)
        shm, spec = share_array(labels)
        try:
            got, handle = attach_array(spec)
            np.testing.assert_array_equal(got, labels)
            handle.close()
        finally:
            shm.close()
            shm.unlink()


# ----------------------------------------------------------------------
# Scheduler order
# ----------------------------------------------------------------------
class TestOrderTasks:
    def test_degree_descending_with_stable_ties(self):
        tasks = order_tasks(PL)
        roots = [v for v, _ in tasks]
        degs = PL.degrees()[roots]
        assert all(degs[i] >= degs[i + 1] for i in range(len(degs) - 1))
        # Equal degrees keep ascending vertex id (stable argsort).
        for i in range(len(roots) - 1):
            if degs[i] == degs[i + 1]:
                assert roots[i] < roots[i + 1]
        assert sorted(roots) == list(range(PL.num_vertices))

    def test_chunking_covers_heavy_roots(self):
        split = 8
        tasks = order_tasks(PL, split_degree=split)
        degrees = PL.degrees()
        seen = {}
        for v, chunk in tasks:
            if degrees[v] > split:
                index, pieces = chunk
                assert pieces == -(-int(degrees[v]) // split)
                seen.setdefault(v, set()).add(index)
            else:
                assert chunk is None
        for v, indices in seen.items():
            pieces = -(-int(degrees[v]) // split)
            assert indices == set(range(pieces))

    def test_roots_subset(self):
        subset = [3, 5, 8]
        tasks = order_tasks(ER, subset)
        assert sorted(v for v, _ in tasks) == subset


# ----------------------------------------------------------------------
# Parity with the serial engine
# ----------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("graph", [ER, PL], ids=["er", "power-law"])
    @pytest.mark.parametrize(
        "pattern", PATTERNS, ids=[p.name for p in PATTERNS]
    )
    def test_single_worker_counts_and_counters(self, graph, pattern):
        plan = compile_pattern(pattern)
        base = serial(graph, plan)
        got = ParallelMiner(graph, plan, workers=1).mine()
        assert got.counts == base.counts
        assert got.counters.as_dict() == base.counters.as_dict()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_multi_process_counts_and_counters(self, workers):
        plan = compile_pattern(k_clique(4))
        base = serial(PL, plan)
        got = ParallelMiner(PL, plan, workers=workers).mine()
        assert got.counts == base.counts
        assert got.counters.as_dict() == base.counters.as_dict()

    def test_chunked_counts_exact(self):
        # Chunking inflates counters (documented) but never counts.
        # 4-cycle plans are unoriented, so the power-law hubs keep
        # their full degrees and actually get split.
        plan = compile_pattern(four_cycle())
        base = serial(PL, plan)
        got = mine_parallel(PL, plan, workers=2, split_degree=8)
        assert got.counts == base.counts
        assert got.counters.tasks > base.counters.tasks

    @pytest.mark.parametrize("workers", [1, 2])
    def test_batch_frontier_counts_and_counters(self, workers):
        plan = compile_pattern(k_clique(4))
        base = serial(PL, plan)
        got = ParallelMiner(
            PL, plan, workers=workers, batch_frontier=True
        ).mine()
        assert got.counts == base.counts
        assert got.counters.as_dict() == base.counters.as_dict()

    def test_multi_pattern(self):
        plan = compile_motifs(3)
        base = mine_multi(ER, plan)
        got = ParallelMiner(ER, plan, workers=2).mine()
        assert got.counts == base.counts
        assert got.counters.as_dict() == base.counters.as_dict()

    def test_roots_restriction(self):
        plan = compile_pattern(triangle())
        roots = list(range(0, ER.num_vertices, 3))
        base = serial(ER, plan, )
        sub = PatternAwareEngine(ER, plan)
        got = ParallelMiner(ER, plan, workers=2).mine(roots=roots)
        want = sub.run(roots=np.asarray(roots))
        assert got.counts == want.counts
        assert sum(got.counts) <= sum(base.counts)

    def test_labeled_root_filter(self):
        labeled = assign_random_labels(ER, 3, seed=11)
        pattern = Pattern(
            3, [(0, 1), (0, 2), (1, 2)], labels=[1, 0, 2],
            name="labeled-triangle",
        )
        plan = compile_pattern(pattern)
        base = serial(labeled, plan)
        got = ParallelMiner(labeled, plan, workers=2).mine()
        assert got.counts == base.counts
        assert got.counters.as_dict() == base.counters.as_dict()
        if plan.root_label is not None:
            with pytest.raises(ValueError, match="unlabeled"):
                ParallelMiner(ER, plan, workers=1).mine()


# ----------------------------------------------------------------------
# Validation and observability
# ----------------------------------------------------------------------
class TestValidation:
    def test_worker_count(self):
        plan = compile_pattern(triangle())
        with pytest.raises(ValueError):
            ParallelMiner(ER, plan, workers=0)

    def test_chunking_rejected_for_multi_plans(self):
        with pytest.raises(ValueError, match="single-pattern"):
            ParallelMiner(ER, compile_motifs(3), split_degree=8)

    def test_worker_failure_surfaces(self):
        plan = compile_pattern(triangle())
        miner = ParallelMiner(ER, plan, workers=2)
        miner.plan = None  # poison: workers crash building the engine
        with pytest.raises(RuntimeError, match="worker"):
            miner._mine_processes(order_tasks(ER))


class TestObservability:
    def test_parallel_gauges(self):
        registry = MetricsRegistry()
        plan = compile_pattern(four_cycle())
        ParallelMiner(
            PL, plan, workers=2, split_degree=16, metrics=registry
        ).mine()
        snap = registry.snapshot()
        assert snap["engine.parallel.workers"] == 2
        assert snap["engine.parallel.queue_depth"] > PL.num_vertices
        assert snap["engine.parallel.chunk_units"] > 0
        done = sum(
            snap[f"engine.parallel.worker_tasks_done{{worker={i}}}"]
            + snap[f"engine.parallel.worker_chunks_done{{worker={i}}}"]
            for i in range(2)
        )
        assert done == snap["engine.parallel.queue_depth"]
        assert snap["engine.matches"] == serial(PL, plan).counts[0]

    def test_frontier_gauges_aggregated(self):
        registry = MetricsRegistry()
        plan = compile_pattern(triangle())
        ParallelMiner(
            ER, plan, workers=2, batch_frontier=True, metrics=registry
        ).mine()
        snap = registry.snapshot()
        assert snap["engine.frontier.rows_expanded"] > 0
        assert snap["engine.frontier.peak_width"] > 0

    def test_tracer_span(self):
        from repro.obs import Tracer

        tracer = Tracer()
        plan = compile_pattern(triangle())
        ParallelMiner(ER, plan, workers=1, tracer=tracer).mine()
        names = [e["name"] for e in tracer.events()]
        assert "mine-parallel" in names


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
class TestEntryPoints:
    def test_cli_workers(self, capsys):
        assert main(
            ["mine", "triangle", "--dataset", "As", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "matches:" in out

    def test_cli_split_degree_serial(self, capsys):
        assert main(
            ["mine", "triangle", "--dataset", "As", "--split-degree", "16"]
        ) == 0
        assert "matches:" in capsys.readouterr().out

    def test_apps_api_workers(self):
        from repro.apps import clique_count
        from repro.errors import ConfigError

        base = clique_count(ER, 4)
        got = clique_count(ER, 4, workers=2)
        assert got.counts == base.counts
        with pytest.raises(ConfigError):
            clique_count(ER, 4, backend="cmap", workers=2)


# ----------------------------------------------------------------------
# Property: parity on random graphs
# ----------------------------------------------------------------------
@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=6, max_value=40))
    p = draw(st.floats(min_value=0.05, max_value=0.4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return erdos_renyi(n, p, seed=seed)


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(graph=random_graphs(), use_clique=st.booleans())
def test_property_parallel_parity(graph, use_clique):
    plan = compile_pattern(k_clique(4) if use_clique else four_cycle())
    base = serial(graph, plan)
    got = ParallelMiner(graph, plan, workers=2).mine()
    assert got.counts == base.counts
    assert got.counters.as_dict() == base.counters.as_dict()
