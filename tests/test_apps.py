"""Tests for the application-level API (TC, k-CL, SL, k-MC)."""

from math import comb

import pytest

from repro.errors import ConfigError
from repro.graph import complete_graph, erdos_renyi
from repro.hw import FlexMinerConfig, SimReport
from repro.engine import MiningResult
from repro.patterns import diamond, four_cycle
from repro.apps import (
    APP_NAMES,
    clique_count,
    motif_count,
    run_app,
    subgraph_list,
    triangle_count,
)

GRAPH = erdos_renyi(30, 0.3, seed=21)
SIM_CONFIG = FlexMinerConfig(num_pes=2)


class TestBackendsAgree:
    def test_triangle_count_all_backends(self):
        reference = triangle_count(GRAPH).counts
        for backend in ("cmap", "oblivious", "sim"):
            result = triangle_count(
                GRAPH, backend=backend, config=SIM_CONFIG
            )
            assert result.counts == reference, backend

    def test_clique_count_all_backends(self):
        reference = clique_count(GRAPH, 4).counts
        for backend in ("cmap", "oblivious", "sim"):
            assert (
                clique_count(
                    GRAPH, 4, backend=backend, config=SIM_CONFIG
                ).counts
                == reference
            ), backend

    def test_subgraph_list_all_backends(self):
        reference = subgraph_list(GRAPH, diamond()).counts
        for backend in ("cmap", "oblivious", "sim"):
            assert (
                subgraph_list(
                    GRAPH, diamond(), backend=backend, config=SIM_CONFIG
                ).counts
                == reference
            ), backend

    def test_motif_count_all_backends(self):
        reference = motif_count(GRAPH, 3).counts
        for backend in ("cmap", "oblivious", "sim"):
            assert (
                motif_count(
                    GRAPH, 3, backend=backend, config=SIM_CONFIG
                ).counts
                == reference
            ), backend


class TestSemantics:
    def test_triangle_closed_form(self):
        assert triangle_count(complete_graph(9)).counts[0] == comb(9, 3)

    def test_motif_counts_partition(self):
        result = motif_count(GRAPH, 3)
        assert len(result.counts) == 2  # wedge, triangle

    def test_four_motifs(self):
        result = motif_count(GRAPH, 4)
        assert len(result.counts) == 6

    def test_subgraph_list_collect(self):
        result = subgraph_list(GRAPH, four_cycle(), collect=True)
        assert len(result.embeddings) == result.counts[0]

    def test_result_types(self):
        assert isinstance(triangle_count(GRAPH), MiningResult)
        assert isinstance(
            triangle_count(GRAPH, backend="sim", config=SIM_CONFIG),
            SimReport,
        )


class TestRunAppDispatch:
    def test_all_apps(self):
        assert run_app(GRAPH, "TC").counts == triangle_count(GRAPH).counts
        assert run_app(GRAPH, "k-CL", k=4).counts == clique_count(
            GRAPH, 4
        ).counts
        assert (
            run_app(GRAPH, "SL", pattern=diamond()).counts
            == subgraph_list(GRAPH, diamond()).counts
        )
        assert run_app(GRAPH, "k-MC", k=3).counts == motif_count(
            GRAPH, 3
        ).counts

    def test_app_names_constant(self):
        assert set(APP_NAMES) == {"TC", "k-CL", "SL", "k-MC"}

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigError):
            run_app(GRAPH, "PageRank")

    def test_sl_requires_pattern(self):
        with pytest.raises(ConfigError):
            run_app(GRAPH, "SL")

    def test_batch_frontier_bit_identical(self):
        base = clique_count(GRAPH, 4)
        got = clique_count(GRAPH, 4, batch_frontier=True)
        assert got.counts == base.counts
        assert got.counters.as_dict() == base.counters.as_dict()

    def test_batch_frontier_requires_engine_backend(self):
        with pytest.raises(ConfigError):
            triangle_count(
                GRAPH, backend="sim", config=SIM_CONFIG,
                batch_frontier=True,
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            triangle_count(GRAPH, backend="gpu")

    def test_sim_cannot_collect(self):
        with pytest.raises(ConfigError):
            subgraph_list(
                GRAPH, diamond(), backend="sim", collect=True,
                config=SIM_CONFIG,
            )
