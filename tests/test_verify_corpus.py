"""Regression-corpus round-trip tests and the tests/corpus replay.

``tests/corpus/*.json`` are frozen differential cases (shrunken fuzz
failures and asserted negative results).  Replaying them here pins the
oracle against the stored expectations and every backend against the
oracle, forever.
"""

import os

import numpy as np
import pytest

from repro.graph import CSRGraph, LabeledGraph
from repro.patterns import triangle, wedge
from repro.verify import (
    CASE_SCHEMA,
    VerifyCase,
    case_from_dict,
    case_to_dict,
    load_case,
    load_corpus,
    replay_corpus,
    save_case,
)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


def _same_case(a: VerifyCase, b: VerifyCase) -> bool:
    topo_a = getattr(a.graph, "graph", a.graph)
    topo_b = getattr(b.graph, "graph", b.graph)
    labels_a = getattr(a.graph, "labels", None)
    labels_b = getattr(b.graph, "labels", None)
    if (labels_a is None) != (labels_b is None):
        return False
    if labels_a is not None and list(labels_a) != list(labels_b):
        return False
    if (a.pattern is None) != (b.pattern is None):
        return False
    if a.pattern is not None and (
        a.pattern.num_vertices != b.pattern.num_vertices
        or sorted(a.pattern.edges) != sorted(b.pattern.edges)
        or list(a.pattern.labels) != list(b.pattern.labels)
    ):
        return False
    return (
        topo_a == topo_b
        and a.motif_k == b.motif_k
        and a.induced == b.induced
        and a.matching_order == b.matching_order
        and a.expected == b.expected
        and a.check_oracle == b.check_oracle
    )


class TestRoundTrip:
    def test_plain_case(self):
        case = VerifyCase(
            graph=CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)]),
            pattern=triangle(),
            expected=(1,),
            name="tri",
        )
        assert _same_case(case_from_dict(case_to_dict(case)), case)

    def test_labeled_case_with_order(self):
        topo = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        case = VerifyCase(
            graph=LabeledGraph(topo, np.array([0, 1, 0, 1])),
            pattern=wedge().with_labels([0, None, 1]),
            induced=True,
            matching_order=(1, 0, 2),
            name="labeled",
        )
        assert _same_case(case_from_dict(case_to_dict(case)), case)

    def test_motif_case(self):
        case = VerifyCase(
            graph=CSRGraph.from_edges([(0, 1), (1, 2)]),
            motif_k=3,
            expected=(1, 0),
        )
        assert _same_case(case_from_dict(case_to_dict(case)), case)

    def test_no_oracle_flag_round_trips(self):
        case = VerifyCase(
            graph=CSRGraph.from_edges([(0, 1)]),
            pattern=triangle(),
            expected=(0,),
            check_oracle=False,
        )
        back = case_from_dict(case_to_dict(case))
        assert back.check_oracle is False

    def test_schema_stamped_and_enforced(self):
        payload = case_to_dict(
            VerifyCase(
                graph=CSRGraph.from_edges([(0, 1)]), pattern=triangle()
            )
        )
        assert payload["schema"] == CASE_SCHEMA
        payload["schema"] = "flexminer.verifycase/99"
        with pytest.raises(ValueError, match="unsupported corpus schema"):
            case_from_dict(payload)

    def test_save_load(self, tmp_path):
        case = VerifyCase(
            graph=CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)]),
            pattern=triangle(),
            expected=(1,),
            name="roundtrip",
        )
        path = str(tmp_path / "case.json")
        save_case(path, case, description="round-trip test")
        assert _same_case(load_case(path), case)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_corpus(str(tmp_path / "nope"))


class TestCorpusReplay:
    def test_corpus_exists_and_is_pinned(self):
        cases = load_corpus(CORPUS_DIR)
        assert len(cases) >= 5
        for path, case in cases:
            assert case.expected is not None, (
                f"{path} has no pinned expected counts"
            )

    def test_replay_full_matrix(self):
        replayed = replay_corpus(CORPUS_DIR)
        assert replayed
        for path, report in replayed:
            assert report.ok, (
                f"{path}: " + "; ".join(str(m) for m in report.mismatches)
            )

    def test_kernel_leaf_parity_case_is_meaningful(self):
        """The frozen negative result must keep exercising what it
        claims: adjacency lists past the count-only threshold."""
        from repro.engine import PatternAwareEngine

        case = load_case(
            os.path.join(CORPUS_DIR, "kernel_leaf_parity.json")
        )
        topo = getattr(case.graph, "graph", case.graph)
        assert topo.max_degree() > PatternAwareEngine.leaf_count_min_work
        assert case.check_oracle is False  # oracle pinned at promotion

    def test_corrupted_expectation_is_caught(self, tmp_path):
        """End-to-end: a corpus case whose expectation is wrong fails
        replay (guards against silently-vacuous corpus files)."""
        import json

        src = os.path.join(CORPUS_DIR, "triangle_er10.json")
        with open(src) as f:
            payload = json.load(f)
        payload["expected"] = [payload["expected"][0] + 5]
        bad_dir = tmp_path / "corpus"
        bad_dir.mkdir()
        with open(bad_dir / "bad.json", "w") as f:
            json.dump(payload, f)
        (path, report), = replay_corpus(str(bad_dir))
        assert not report.ok
        assert any(m.kind == "oracle-expected" for m in report.mismatches)
