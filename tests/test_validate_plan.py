"""Tests for empirical plan validation."""

from dataclasses import replace

import pytest

from repro.compiler import (
    VertexStep,
    compile_pattern,
    parse_ir,
    emit_ir,
    validate_plan,
)
from repro.patterns import diamond, four_cycle, k_clique, triangle


class TestValidPlans:
    @pytest.mark.parametrize(
        "pattern,kwargs",
        [
            (triangle(), {}),
            (k_clique(4), {}),
            (four_cycle(), {}),
            (diamond(), {"use_orientation": False}),
            (four_cycle(), {"induced": True}),
        ],
        ids=lambda x: getattr(x, "name", str(x)),
    )
    def test_compiler_output_validates(self, pattern, kwargs):
        result = validate_plan(compile_pattern(pattern, **kwargs), trials=8)
        assert result
        assert "validated" in result.message()

    def test_labeled_plan_validates(self):
        plan = compile_pattern(triangle().with_labels([0, 0, 1]))
        assert validate_plan(plan, trials=8)

    def test_parsed_ir_validates(self):
        plan = parse_ir(emit_ir(compile_pattern(four_cycle())))
        assert validate_plan(plan, trials=6)


class TestBrokenPlans:
    """``static=False`` forces the empirical path: the static verifier
    (tested in test_analysis_plancheck.py) would reject these first."""

    def test_missing_symmetry_bound_breaks_uniqueness(self):
        plan = compile_pattern(four_cycle())
        broken_steps = tuple(
            replace(s, upper_bounds=()) for s in plan.steps
        )
        broken = replace(
            plan, steps=broken_steps, symmetry_conditions=()
        )
        result = validate_plan(broken, trials=20, seed=2, static=False)
        assert not result
        assert result.actual > result.expected  # duplicates found
        assert "INVALID" in result.message()

    def test_extra_bound_breaks_completeness(self):
        plan = compile_pattern(diamond(), use_orientation=False)
        # Bound an unconstrained step: drops legitimate matches.
        target = plan.steps[1]
        assert not target.upper_bounds
        tightened = replace(target, upper_bounds=(0,))
        broken = replace(
            plan,
            steps=(plan.steps[0], tightened) + plan.steps[2:],
        )
        result = validate_plan(broken, trials=20, seed=3, static=False)
        assert not result
        assert result.actual < result.expected

    def test_wrong_connectivity_detected(self):
        plan = compile_pattern(four_cycle())
        last = plan.steps[-1]
        assert last.connected  # drop the closing constraint
        loosened = replace(last, connected=(), extra_connected=())
        broken = replace(plan, steps=plan.steps[:-1] + (loosened,))
        result = validate_plan(broken, trials=20, seed=4, static=False)
        assert not result

    def test_failure_reports_counterexample(self):
        plan = compile_pattern(four_cycle())
        broken = replace(
            plan,
            steps=tuple(replace(s, upper_bounds=()) for s in plan.steps),
            symmetry_conditions=(),
        )
        result = validate_plan(broken, trials=20, seed=2, static=False)
        assert result.failure_graph is not None
        assert result.failure_graph.num_vertices <= 12


class TestStaticPrePass:
    def test_static_rejection_skips_trials(self):
        plan = compile_pattern(four_cycle())
        broken = replace(
            plan,
            steps=tuple(replace(s, upper_bounds=()) for s in plan.steps),
            symmetry_conditions=(),
        )
        result = validate_plan(broken, trials=20, seed=2)
        assert not result
        assert result.trials == 0  # never reached the empirical loop
        assert result.static_findings
        assert "FM110" in result.message()
        assert "INVALID (static)" in result.message()

    def test_clean_plan_passes_static_and_empirical(self):
        result = validate_plan(compile_pattern(four_cycle()), trials=6)
        assert result
        assert result.static_findings == ()
