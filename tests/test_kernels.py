"""Unit and property tests for the set-op kernel layer.

The kernels must agree with numpy's generic primitives on *every* input
— they are pure drop-in value replacements — so each case runs under all
three strategies (merge, gallop, adaptive).  The adversarial cases
target the probe kernel's clamp-to-slot-0 trick and the prefix-cut
bounded counts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import kernels
from repro.engine.kernels import (
    GALLOP_RATIO,
    contains,
    difference_count,
    difference_count_below,
    difference_values,
    get_strategy,
    intersect_count,
    intersect_count_below,
    intersect_multi,
    intersect_values,
    members_mask,
    set_strategy,
    strategy,
)

STRATEGIES = ("merge", "gallop", "adaptive")


def arr(values):
    return np.asarray(sorted(set(values)), dtype=np.int32)


#: Adversarial operand pairs: empties, disjoint ranges, containment,
#: boundary collisions (values beyond either end exercise the probe
#: kernel's clamp-to-0), heavy skew (forces the gallop branch under
#: "adaptive"), and singletons.
CASES = [
    ([], []),
    ([], [1, 2, 3]),
    ([1, 2, 3], []),
    ([1, 2, 3], [4, 5, 6]),          # disjoint, a below b
    ([7, 8, 9], [1, 2, 3]),          # disjoint, a above b
    ([1, 2, 3, 4], [2, 3]),          # nested
    ([2, 3], [1, 2, 3, 4]),
    ([0], [0]),
    ([5], [3]),
    ([5], [9]),
    ([0, 100], [0, 1, 2, 99, 100]),  # hits at both extremes
    (list(range(100)), [0]),
    (list(range(100)), [99]),
    (list(range(100)), [100]),       # probe past the end
    (list(range(0, 64, 2)), list(range(1, 64, 2))),  # interleaved, disjoint
    (list(range(3)), list(range(3 * GALLOP_RATIO + 1))),  # gallop skew
    (list(range(3 * GALLOP_RATIO + 1)), list(range(3))),
]


@pytest.fixture(autouse=True)
def _restore_strategy():
    previous = get_strategy()
    yield
    set_strategy(previous)


@pytest.mark.parametrize("name", STRATEGIES)
@pytest.mark.parametrize("a,b", CASES)
def test_value_kernels_match_numpy(name, a, b):
    a, b = arr(a), arr(b)
    with strategy(name):
        got_i = intersect_values(a, b)
        got_d = difference_values(a, b)
    np.testing.assert_array_equal(
        got_i, np.intersect1d(a, b, assume_unique=True)
    )
    np.testing.assert_array_equal(
        got_d, np.setdiff1d(a, b, assume_unique=True)
    )


@pytest.mark.parametrize("a,b", CASES)
def test_count_kernels_match_values(a, b):
    a, b = arr(a), arr(b)
    assert intersect_count(a, b) == len(
        np.intersect1d(a, b, assume_unique=True)
    )
    assert difference_count(a, b) == len(
        np.setdiff1d(a, b, assume_unique=True)
    )


@pytest.mark.parametrize("a,b", CASES)
@pytest.mark.parametrize("bound", [None, 0, 2, 50, 1000])
def test_bounded_counts(a, b, bound):
    a, b = arr(a), arr(b)
    inter = np.intersect1d(a, b, assume_unique=True)
    diff = np.setdiff1d(a, b, assume_unique=True)
    cut = (lambda x: x) if bound is None else (lambda x: x[x < bound])
    assert intersect_count_below(a, b, bound=bound) == (
        len(inter), len(cut(inter))
    )
    assert difference_count_below(a, b, bound=bound) == (
        len(diff), len(cut(diff))
    )


@pytest.mark.parametrize("a,b", CASES)
def test_counts_with_exclusions(a, b):
    """``exclude`` subtracts exactly the excluded ids present in the
    (bounded) result — the engine's injectivity fold."""
    a, b = arr(a), arr(b)
    inter = np.intersect1d(a, b, assume_unique=True)
    diff = np.setdiff1d(a, b, assume_unique=True)
    bound = 1000  # everything in CASES is below this
    for exclude in ([0], [2, 99], [5, 500], list(range(5))):
        forb = np.asarray(exclude)
        want_i = len([v for v in inter if v not in exclude])
        want_d = len([v for v in diff if v not in exclude])
        assert intersect_count_below(a, b, bound=bound, exclude=forb)[1] \
            == want_i
        assert difference_count_below(a, b, bound=bound, exclude=forb)[1] \
            == want_d


def test_members_mask_boundaries():
    hay = arr([10, 20, 30])
    needles = np.asarray([5, 10, 15, 30, 35])  # below, hit, between, hit, past
    np.testing.assert_array_equal(
        members_mask(needles, hay),
        [False, True, False, True, False],
    )
    assert not members_mask(np.asarray([1, 2]), arr([])).any()


def test_contains():
    values = arr([2, 4, 6])
    assert contains(values, 4)
    assert not contains(values, 5)
    assert not contains(values, 7)   # past the end
    assert not contains(arr([]), 1)


@pytest.mark.parametrize("name", STRATEGIES)
def test_intersect_multi_smallest_first(name):
    arrays = [arr(range(0, 60, k)) for k in (1, 2, 3, 4)]
    want = arrays[0]
    for other in arrays[1:]:
        want = np.intersect1d(want, other, assume_unique=True)
    with strategy(name):
        np.testing.assert_array_equal(intersect_multi(arrays), want)
        # An empty operand short-circuits to empty.
        assert len(intersect_multi(arrays + [arr([])])) == 0
    with pytest.raises(ValueError):
        intersect_multi([])


def test_strategy_selection():
    assert get_strategy() == "adaptive"
    with strategy("merge"):
        assert get_strategy() == "merge"
        with strategy("gallop"):
            assert get_strategy() == "gallop"
        assert get_strategy() == "merge"
    assert get_strategy() == "adaptive"
    with pytest.raises(ValueError):
        set_strategy("bogus")
    assert get_strategy() == "adaptive"


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------

id_sets = st.sets(st.integers(min_value=0, max_value=200), max_size=60)


@settings(max_examples=60, deadline=None)
@given(a=id_sets, b=id_sets, name=st.sampled_from(STRATEGIES))
def test_property_value_kernels(a, b, name):
    a, b = arr(a), arr(b)
    with strategy(name):
        got_i = intersect_values(a, b)
        got_d = difference_values(a, b)
    np.testing.assert_array_equal(
        got_i, np.intersect1d(a, b, assume_unique=True)
    )
    np.testing.assert_array_equal(
        got_d, np.setdiff1d(a, b, assume_unique=True)
    )


@settings(max_examples=60, deadline=None)
@given(
    a=id_sets,
    b=id_sets,
    bound=st.one_of(st.none(), st.integers(min_value=0, max_value=220)),
    exclude=st.sets(st.integers(min_value=0, max_value=200), max_size=6),
)
def test_property_count_kernels(a, b, bound, exclude):
    a, b = arr(a), arr(b)
    if bound is not None:
        exclude = {v for v in exclude if v < bound}
    forb = np.asarray(sorted(exclude)) if exclude else None
    inter = set(np.intersect1d(a, b, assume_unique=True).tolist())
    diff = set(np.setdiff1d(a, b, assume_unique=True).tolist())

    def bounded(result):
        kept = result if bound is None else {v for v in result if v < bound}
        return len(kept - exclude)

    raw_i, below_i = intersect_count_below(a, b, bound=bound, exclude=forb)
    raw_d, below_d = difference_count_below(a, b, bound=bound, exclude=forb)
    assert (raw_i, below_i) == (len(inter), bounded(inter))
    assert (raw_d, below_d) == (len(diff), bounded(diff))


@settings(max_examples=40, deadline=None)
@given(
    needles=st.lists(st.integers(min_value=-5, max_value=205), max_size=30),
    hay=id_sets,
)
def test_property_members_mask(needles, hay):
    hay = arr(hay)
    got = kernels.members_mask(np.asarray(needles, dtype=np.int64), hay)
    want = [v in set(hay.tolist()) for v in needles]
    np.testing.assert_array_equal(got, want)


# ----------------------------------------------------------------------
# Batch frontier kernel: segmented intersect vs the per-segment loop
# ----------------------------------------------------------------------
def naive_segmented(base, concat, offsets, bounds=None):
    base_set = set(base.tolist())
    raw, below = [], []
    for i in range(len(offsets) - 1):
        seg = concat[offsets[i]:offsets[i + 1]]
        hits = [v for v in seg.tolist() if v in base_set]
        if bounds is None:
            bound = None
        elif np.ndim(bounds) == 0:
            bound = int(bounds)
        else:
            bound = int(bounds[i])
        raw.append(len(hits))
        below.append(
            len(hits) if bound is None
            else sum(1 for v in hits if v < bound)
        )
    return np.asarray(raw, dtype=np.int64), np.asarray(below, dtype=np.int64)


def seg_case(segments):
    concat = np.concatenate(
        [arr(s) for s in segments] or [np.empty(0, dtype=np.int32)]
    ).astype(np.int32)
    offsets = np.zeros(len(segments) + 1, dtype=np.int64)
    np.cumsum([len(set(s)) for s in segments], out=offsets[1:])
    return concat, offsets


SEGMENT_CASES = [
    ([], []),                                      # no segments at all
    ([[]], [1, 2, 3]),                             # one empty segment
    ([[1, 2, 3], [], [2, 4, 6]], [2, 3, 4]),       # empty in the middle
    ([[0, 5, 9], [5], [9, 10, 11]], []),           # empty base
    ([list(range(0, 40, 2))] * 3, list(range(0, 40, 3))),
    ([[7], [7], [7]], [7]),                        # repeated segments
]


@pytest.mark.parametrize("segments,base", SEGMENT_CASES)
def test_segmented_intersect_matches_naive(segments, base):
    base = arr(base)
    concat, offsets = seg_case(segments)
    for bounds in (None, 6, np.arange(len(segments), dtype=np.int64) * 4):
        got = kernels.segmented_intersect_count(
            base, concat, offsets, bounds=bounds
        )
        want = naive_segmented(base, concat, offsets, bounds=bounds)
        np.testing.assert_array_equal(got[0], want[0])
        np.testing.assert_array_equal(got[1], want[1])


@settings(max_examples=40, deadline=None)
@given(
    segments=st.lists(
        st.lists(st.integers(min_value=0, max_value=60), max_size=12),
        max_size=8,
    ),
    base=st.sets(st.integers(min_value=0, max_value=60), max_size=20),
    scalar_bound=st.one_of(
        st.none(), st.integers(min_value=0, max_value=70)
    ),
)
def test_property_segmented_intersect(segments, base, scalar_bound):
    base = arr(base)
    concat, offsets = seg_case(segments)
    got = kernels.segmented_intersect_count(
        base, concat, offsets, bounds=scalar_bound
    )
    want = naive_segmented(base, concat, offsets, bounds=scalar_bound)
    np.testing.assert_array_equal(got[0], want[0])
    np.testing.assert_array_equal(got[1], want[1])


# ----------------------------------------------------------------------
# Materializing segmented kernels vs per-segment value kernels
# ----------------------------------------------------------------------
def _segments_of(concat, offsets):
    return [
        concat[offsets[i]:offsets[i + 1]]
        for i in range(len(offsets) - 1)
    ]


@settings(max_examples=60, deadline=None)
@given(
    segments=st.lists(
        st.lists(st.integers(min_value=0, max_value=60), max_size=12),
        max_size=8,
    ),
    base=st.sets(st.integers(min_value=0, max_value=60), max_size=20),
)
def test_property_segmented_materialize_fixed_base(segments, base):
    """segmented_intersect/difference == per-segment value kernels."""
    base = arr(base)
    concat, offsets = seg_case(segments)
    for seg_kernel, ref in (
        (kernels.segmented_intersect, intersect_values),
        (kernels.segmented_difference, difference_values),
    ):
        got_concat, got_offsets = seg_kernel(base, concat, offsets)
        assert len(got_offsets) == len(offsets)
        assert got_offsets[-1] == len(got_concat)
        want = [ref(seg, base) for seg in _segments_of(concat, offsets)]
        for got, ref_seg in zip(
            _segments_of(got_concat, got_offsets), want
        ):
            np.testing.assert_array_equal(got, ref_seg)


pair_segments = st.lists(
    st.tuples(
        st.lists(st.integers(min_value=0, max_value=60), max_size=12),
        st.lists(st.integers(min_value=0, max_value=60), max_size=12),
    ),
    max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(pairs=pair_segments)
def test_property_segmented_pair_kernels(pairs):
    """Row-wise pair kernels == per-segment value kernels."""
    a_concat, a_offsets = seg_case([p[0] for p in pairs])
    b_concat, b_offsets = seg_case([p[1] for p in pairs])
    a_segs = _segments_of(a_concat, a_offsets)
    b_segs = _segments_of(b_concat, b_offsets)
    for pair_kernel, ref in (
        (kernels.segmented_pair_intersect, intersect_values),
        (kernels.segmented_pair_difference, difference_values),
    ):
        got_concat, got_offsets = pair_kernel(
            a_concat, a_offsets, b_concat, b_offsets, 61
        )
        assert len(got_offsets) == len(a_offsets)
        for got, a_seg, b_seg in zip(
            _segments_of(got_concat, got_offsets), a_segs, b_segs
        ):
            np.testing.assert_array_equal(got, ref(a_seg, b_seg))


@settings(max_examples=60, deadline=None)
@given(
    pairs=pair_segments,
    scalar_bound=st.one_of(
        st.none(), st.integers(min_value=0, max_value=70)
    ),
    exclude=st.booleans(),
)
def test_property_segmented_pair_count_below(
    pairs, scalar_bound, exclude
):
    """The folded count == count the materialized result by hand."""
    a_concat, a_offsets = seg_case([p[0] for p in pairs])
    b_concat, b_offsets = seg_case([p[1] for p in pairs])
    # Exclude every third element of a_concat (an arbitrary but
    # reproducible stand-in for the engine's injectivity mask).
    exclude_mask = (
        (np.arange(len(a_concat)) % 3 == 0) if exclude else None
    )
    for intersect in (True, False):
        raw, below = kernels.segmented_pair_count_below(
            a_concat,
            a_offsets,
            b_concat,
            b_offsets,
            keyspace=61,
            intersect=intersect,
            bounds=scalar_bound,
            exclude_mask=exclude_mask,
        )
        mat_concat, mat_offsets = (
            kernels.segmented_pair_intersect
            if intersect
            else kernels.segmented_pair_difference
        )(a_concat, a_offsets, b_concat, b_offsets, 61)
        np.testing.assert_array_equal(raw, np.diff(mat_offsets))
        for i in range(len(a_offsets) - 1):
            seg = a_concat[a_offsets[i]:a_offsets[i + 1]]
            keep = np.ones(len(seg), dtype=bool)
            if exclude_mask is not None:
                keep &= ~exclude_mask[a_offsets[i]:a_offsets[i + 1]]
            if scalar_bound is not None:
                keep &= seg < scalar_bound
            mat = mat_concat[mat_offsets[i]:mat_offsets[i + 1]]
            want = np.count_nonzero(keep & np.isin(seg, mat))
            assert below[i] == want


def test_gather_segments_round_trip():
    concat, offsets = seg_case([[1, 2], [5], [], [7, 9, 11]])
    take = np.array([3, 0, 0, 2, 1], dtype=np.int64)
    got_concat, got_offsets = kernels.gather_segments(
        concat, offsets, take
    )
    want = [[7, 9, 11], [1, 2], [1, 2], [], [5]]
    assert [
        got_concat[got_offsets[i]:got_offsets[i + 1]].tolist()
        for i in range(len(take))
    ] == want
    empty_concat, empty_offsets = kernels.gather_segments(
        concat, offsets, np.array([2, 2], dtype=np.int64)
    )
    assert len(empty_concat) == 0
    assert empty_offsets.tolist() == [0, 0, 0]


def test_segment_helpers():
    offsets = np.array([0, 2, 2, 5], dtype=np.int64)
    np.testing.assert_array_equal(
        kernels.segment_ids(offsets), [0, 0, 2, 2, 2]
    )
    values = np.array([1, 0, 1, 1, 0])
    np.testing.assert_array_equal(
        kernels.segment_sums(values, offsets), [1, 0, 2]
    )


def test_gather_neighbors_matches_per_vertex_views():
    from repro.graph import power_law_cluster

    g = power_law_cluster(80, 3, 0.4, seed=3)
    for verts in ([], [0], [5, 5, 2], list(range(0, 80, 7))):
        verts = np.asarray(verts, dtype=np.int64)
        concat, offsets = g.gather_neighbors(verts)
        assert len(offsets) == len(verts) + 1
        assert offsets[-1] == len(concat)
        for i, v in enumerate(verts.tolist()):
            np.testing.assert_array_equal(
                concat[offsets[i]:offsets[i + 1]], g.neighbors(v)
            )
