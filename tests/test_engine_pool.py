"""Tests for the persistent mining pool (repro.engine.pool).

The contract extends :class:`ParallelMiner`'s: every request served by
a resident pool returns counts *and* op counters bit-identical to a
serial run (with chunking off), across the whole request stream and
for every worker count.  On top of that the pool owns lifecycle edge
cases — worker death surfaces as a structured error instead of a hang,
close() is idempotent, shared-memory segments are unlinked on shutdown
— and the calibrated cost model that turns dispatch overhead into a
split degree.
"""

import os
import signal
from multiprocessing import shared_memory

import pytest

from repro.cli import main
from repro.compiler import compile_motifs, compile_pattern
from repro.engine import (
    MinerPool,
    PatternAwareEngine,
    PoolWorkerError,
    cost_model_split_degree,
    mine_multi,
    order_tasks,
)
from repro.engine.pool import MIN_SPLIT_DEGREE
from repro.graph import erdos_renyi, path_graph, power_law_cluster
from repro.obs import MetricsRegistry
from repro.patterns import four_cycle, k_clique, triangle

ER = erdos_renyi(150, 0.06, seed=7, name="er")
PL = power_law_cluster(200, 3, 0.4, seed=9, name="pl")


def serial(graph, plan, **kw):
    return PatternAwareEngine(graph, plan, **kw).run()


class SteppedClock:
    """Fake monotonic clock: advances one fixed step per reading.

    Injected into the pool's calibration path, it makes every recorded
    ping span exactly ``step`` seconds long regardless of host load —
    the calibration mean is then ``step`` by arithmetic, not by timing.
    """

    def __init__(self, step: float) -> None:
        self.step = step
        self.now = 0.0
        self.reads = 0

    def __call__(self) -> float:
        self.now += self.step
        self.reads += 1
        return self.now


# ----------------------------------------------------------------------
# Request-stream parity
# ----------------------------------------------------------------------
class TestStreamParity:
    def test_mixed_request_stream_bit_identical(self):
        plans = [
            compile_pattern(p) for p in (triangle(), k_clique(4), four_cycle())
        ]
        with MinerPool(ER, workers=2) as pool:
            for _ in range(2):  # same plans twice: resident state reused
                for plan in plans:
                    base = serial(ER, plan)
                    got = pool.mine(plan)
                    assert got.counts == base.counts
                    assert got.counters == base.counters
            assert pool.requests_served == 6

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_sweep_bit_identical(self, workers):
        plan = compile_pattern(k_clique(4))
        base = serial(PL, plan)
        with MinerPool(PL, workers=workers) as pool:
            got = pool.mine(plan)
        assert got.counts == base.counts
        assert got.counters == base.counters

    def test_batch_frontier_stream_bit_identical(self):
        plan = compile_pattern(k_clique(4))
        base = serial(PL, plan)
        with MinerPool(PL, workers=2, batch_frontier=True) as pool:
            first = pool.mine(plan)
            second = pool.mine(plan)
        for got in (first, second):
            assert got.counts == base.counts
            assert got.counters == base.counters

    def test_multi_pattern_request(self):
        plan = compile_motifs(3)
        base = mine_multi(ER, plan)
        with MinerPool(ER, workers=2) as pool:
            got = pool.mine(plan)
        assert got.counts == base.counts
        assert got.counters.as_dict() == base.counters.as_dict()

    def test_chunked_counts_exact(self):
        plan = compile_pattern(triangle())
        with MinerPool(PL, workers=2) as pool:
            got = pool.mine(plan, split_degree=16)
        assert got.counts == serial(PL, plan).counts

    def test_auto_split_counts_exact(self):
        plan = compile_pattern(k_clique(4))
        with MinerPool(PL, workers=2) as pool:
            got = pool.mine(plan, split_degree="auto")
        assert got.counts == serial(PL, plan).counts


# ----------------------------------------------------------------------
# Cost-model chunking
# ----------------------------------------------------------------------
class TestCostModel:
    def test_multi_plan_never_splits(self):
        plan = compile_motifs(3)
        assert (
            cost_model_split_degree(ER, plan, dispatch_overhead_s=1e-3)
            is None
        )

    def test_zero_overhead_hits_floor(self):
        # With free dispatch the model splits as finely as allowed.
        plan = compile_pattern(triangle())
        split = cost_model_split_degree(PL, plan, dispatch_overhead_s=0.0)
        assert split == MIN_SPLIT_DEGREE
        assert int(PL.degrees().max()) >= 2 * split

    def test_heavy_overhead_disables_splitting(self):
        # A one-second round trip: no chunk on these graphs can carry
        # enough work, so the model keeps whole-root tasks (and merged
        # counters bit-identical).
        plan = compile_pattern(triangle())
        assert (
            cost_model_split_degree(PL, plan, dispatch_overhead_s=1.0)
            is None
        )

    def test_split_monotone_in_overhead(self):
        plan = compile_pattern(triangle())
        splits = []
        for overhead in (0.0, 1e-7, 1e-6):
            got = cost_model_split_degree(
                PL, plan, dispatch_overhead_s=overhead
            )
            if got is not None:
                splits.append(got)
        assert splits == sorted(splits)
        assert splits[0] == MIN_SPLIT_DEGREE

    def test_light_graph_never_splits(self):
        # Max degree 2: no hub is worth slicing at any overhead.
        plan = compile_pattern(triangle())
        chain = path_graph(50)
        assert (
            cost_model_split_degree(chain, plan, dispatch_overhead_s=0.0)
            is None
        )

    def test_serial_pool_auto_is_none_and_overhead_zero(self):
        plan = compile_pattern(triangle())
        with MinerPool(PL, workers=1) as pool:
            assert pool.dispatch_overhead_s == 0.0
            assert pool.auto_split_degree(plan) is None

    def test_forked_pool_calibration_arithmetic_pinned(self):
        # A stepped fake clock pins the calibration arithmetic exactly:
        # each of the CALIBRATION_PINGS spans is one step long, so the
        # mean IS the step — no wall-clock dependence on loaded hosts.
        from repro.engine.pool import CALIBRATION_PINGS

        clock = SteppedClock(0.25)
        with MinerPool(ER, workers=2, calibration_clock=clock) as pool:
            overhead = pool.dispatch_overhead_s
            assert overhead == 0.25
            # Warm-up ping + measured pings, two reads per span.
            assert clock.reads == 2 * (CALIBRATION_PINGS + 1)
            # Cached: the second read is the same value, no re-ping.
            assert pool.dispatch_overhead_s == overhead
            assert clock.reads == 2 * (CALIBRATION_PINGS + 1)

    def test_fake_clock_auto_split_deterministic(self):
        # With the calibrated overhead pinned by the fake clock, the
        # pool's auto split degree equals the cost model's closed-form
        # answer for that overhead — end to end, deterministically.
        plan = compile_pattern(four_cycle())  # not oriented: work
        assert not plan.oriented             # graph is PL itself
        step = 2.0 ** -20  # ~1 µs, exactly representable
        clock = SteppedClock(step)
        with MinerPool(PL, workers=2, calibration_clock=clock) as pool:
            assert pool.dispatch_overhead_s == step
            assert pool.auto_split_degree(plan) == cost_model_split_degree(
                PL, plan, dispatch_overhead_s=step
            )
        # A one-second fake step prices every chunk out: no splitting.
        clock = SteppedClock(1.0)
        with MinerPool(PL, workers=2, calibration_clock=clock) as pool:
            assert pool.dispatch_overhead_s == 1.0
            assert pool.auto_split_degree(plan) is None


# ----------------------------------------------------------------------
# Lifecycle edge cases
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_close_is_idempotent(self):
        pool = MinerPool(ER, workers=2)
        pool.mine(compile_pattern(triangle()))
        pool.close()
        pool.close()  # second close: no-op, no error
        assert pool.closed

    def test_close_before_first_request(self):
        pool = MinerPool(ER, workers=2)
        pool.close()
        assert pool.closed

    def test_closed_pool_rejects_requests(self):
        pool = MinerPool(ER, workers=2)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.mine(compile_pattern(triangle()))

    def test_shared_segments_unlinked_on_close(self):
        pool = MinerPool(PL, workers=2)
        pool.mine(compile_pattern(triangle()))
        specs = [pool._topo_spec, pool._work_spec, pool._labels_spec]
        names = [
            spec[key]["shm"]
            for spec in specs
            if spec is not None
            for key in ("indptr", "indices")
            if key in spec
        ]
        assert names  # at least the topology was exported
        pool.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=str(name))

    def test_close_reaps_all_segments_despite_owner_failure(self):
        # Regression (FM301): a failing owner.close() used to abort the
        # teardown loop, stranding every later segment past process
        # exit.  The loop must keep going and re-raise the first error.
        pool = MinerPool(PL, workers=2)
        pool.mine(compile_pattern(triangle()))
        names = [
            spec[key]["shm"]
            for spec in (pool._topo_spec, pool._work_spec)
            if spec is not None
            for key in ("indptr", "indices")
            if key in spec
        ]
        assert names

        class _Boom:
            def close(self):
                raise OSError("close boom")

            def unlink(self):
                raise OSError("unlink boom")

        pool._shared.insert(0, _Boom())
        with pytest.raises(OSError, match="close boom"):
            pool.close()
        assert pool.closed
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=str(name))

    def test_worker_death_raises_structured_error(self):
        plan = compile_pattern(triangle())
        pool = MinerPool(ER, workers=2)
        try:
            pool.mine(plan)  # forks the workers
            victim = pool._procs[0]
            victim.terminate()
            victim.join()
            with pytest.raises(PoolWorkerError, match="died") as exc:
                pool.mine(plan)
            assert exc.value.reason == "died"
            assert pool.broken
            with pytest.raises(RuntimeError, match="broken"):
                pool.mine(plan)
        finally:
            pool.close()

    def test_timeout_raises_instead_of_hanging(self):
        # SIGSTOP leaves workers alive but unresponsive — the exact
        # failure mode the "died" check cannot see.  The request
        # timeout must surface it as a structured error, not a hang.
        plan = compile_pattern(triangle())
        pool = MinerPool(ER, workers=2)
        try:
            pool.mine(plan)  # forks the workers
            for proc in pool._procs:
                os.kill(proc.pid, signal.SIGSTOP)
            with pytest.raises(PoolWorkerError, match="timeout") as exc:
                pool.mine(plan, timeout_s=1.0)
            assert exc.value.reason == "timeout"
            assert pool.broken
        finally:
            for proc in pool._procs:
                try:
                    os.kill(proc.pid, signal.SIGCONT)
                except ProcessLookupError:  # pragma: no cover
                    pass
            pool.close()

    def test_worker_exception_surfaces_with_traceback(self):
        pool = MinerPool(ER, workers=2)
        try:
            # A poisoned plan crosses the queue fine and crashes in the
            # worker while it builds its engine.
            with pytest.raises(PoolWorkerError, match="failed") as exc:
                pool.run_tasks(None, order_tasks(ER))
            assert exc.value.reason == "failed"
            assert "Traceback" in exc.value.detail
            assert pool.broken
        finally:
            pool.close()


# ----------------------------------------------------------------------
# Leases and health (the serving layer's contract)
# ----------------------------------------------------------------------
class TestLeases:
    def test_lease_defers_close_until_last_release(self):
        pool = MinerPool(ER, workers=1)
        plan = compile_pattern(triangle())
        with pool.lease():
            with pool.lease():  # leases nest (one per request)
                pool.close()
                assert not pool.closed  # deferred, still serving
                got = pool.mine(plan)
                assert got.counts == serial(ER, plan).counts
            assert not pool.closed
        assert pool.closed  # last release ran the deferred close

    def test_close_without_leases_is_immediate(self):
        pool = MinerPool(ER, workers=1)
        pool.acquire()
        pool.release()
        pool.close()
        assert pool.closed

    def test_acquire_while_closing_rejected(self):
        pool = MinerPool(ER, workers=1)
        pool.acquire()
        pool.close()  # deferred
        with pytest.raises(RuntimeError, match="closing"):
            pool.acquire()
        pool.release()
        assert pool.closed

    def test_release_without_acquire_raises(self):
        pool = MinerPool(ER, workers=1)
        try:
            with pytest.raises(RuntimeError, match="acquire"):
                pool.release()
        finally:
            pool.close()

    def test_acquire_closed_pool_raises(self):
        pool = MinerPool(ER, workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.acquire()

    def test_health_snapshot(self):
        pool = MinerPool(ER, workers=2)
        try:
            pool.mine(compile_pattern(triangle()))
            with pool.lease():
                health = pool.health()
                assert health["healthy"]
                assert health["resident_workers"] == 2
                assert health["alive_workers"] == 2
                assert health["leases"] == 1
                assert health["requests_served"] == 1
        finally:
            pool.close()
        health = pool.health()
        assert not health["healthy"]
        assert health["closed"]

    def test_health_in_process_pool(self):
        with MinerPool(ER, workers=1) as pool:
            health = pool.health()
            assert health["healthy"]
            assert health["resident_workers"] == 0


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestObservability:
    def test_pool_gauges(self):
        registry = MetricsRegistry()
        plan = compile_pattern(triangle())
        with MinerPool(PL, workers=2, metrics=registry) as pool:
            pool.mine(plan)
            pool.mine(plan)
            overhead = pool.dispatch_overhead_s
        snap = registry.snapshot()
        assert snap["engine.pool.workers"] == 2
        assert snap["engine.pool.resident_workers"] == 2
        assert snap["engine.pool.requests"] == 2
        assert snap["engine.pool.dispatch_overhead_us"] == pytest.approx(
            overhead * 1e6
        )
        # The per-request parallel family is still published.
        assert snap["engine.parallel.workers"] == 2


# ----------------------------------------------------------------------
# Entry points: apps API and CLI
# ----------------------------------------------------------------------
class TestEntryPoints:
    def test_apps_api_pool(self):
        from repro.apps import clique_count, subgraph_list
        from repro.errors import ConfigError

        base = clique_count(ER, 4)
        with MinerPool(ER, workers=2) as pool:
            got = clique_count(ER, 4, pool=pool)
            again = clique_count(ER, 4, pool=pool)
            assert got.counts == base.counts
            assert again.counts == base.counts
            with pytest.raises(ConfigError):
                clique_count(ER, 4, backend="cmap", pool=pool)
            with pytest.raises(ConfigError):
                subgraph_list(ER, triangle(), collect=True, pool=pool)

    def test_cli_pool_workers_round_trip(self, capsys):
        matches = []
        for workers in ("1", "2", "4"):
            args = [
                "mine", "triangle", "--dataset", "As",
                "--workers", workers, "--pool",
            ]
            assert main(args) == 0
            out = capsys.readouterr().out
            line = [ln for ln in out.splitlines() if "matches:" in ln]
            matches.append(line[0])
        assert len(set(matches)) == 1

    def test_cli_pool_auto_split(self, capsys):
        args = [
            "mine", "4-clique", "--dataset", "As",
            "--workers", "2", "--pool", "--split-degree", "auto",
        ]
        assert main(args) == 0
        assert "matches:" in capsys.readouterr().out

    def test_cli_auto_split_requires_pool(self, capsys):
        args = ["mine", "triangle", "--dataset", "As", "--split-degree", "auto"]
        assert main(args) == 2
        assert "--pool" in capsys.readouterr().err
