"""Tests for repro.obs.trend and the ``flexminer bench-trend`` gate."""

import json

import pytest

from repro.cli import main
from repro.obs import make_report, write_report
from repro.obs.trend import (
    CellTrend,
    compute_trends,
    extract_cells,
    load_history,
    record_report,
    regressions,
    render_trends,
)

REPORT = make_report(
    "bench-engine",
    {
        "cells": {
            "3-TR_As": {"kernel_seconds": 0.010, "total_seconds": 0.020},
            "4-CL_As": {"kernel_seconds": 0.030},
        },
        "labels": {"3-TR_As": "triangle"},
    },
    meta={"seconds": 99.0, "host": "x"},
)


class TestExtractCells:
    def test_seconds_leaves_only(self):
        cells = extract_cells(REPORT)
        assert cells == {
            "cells.3-TR_As.kernel_seconds": 0.010,
            "cells.3-TR_As.total_seconds": 0.020,
            "cells.4-CL_As.kernel_seconds": 0.030,
        }

    def test_meta_and_nonpositive_skipped(self):
        report = make_report(
            "bench",
            {"cells": {"a": {"kernel_seconds": 0.0}}},
            meta={"seconds": 5.0},
        )
        assert extract_cells(report) == {}

    def test_raw_dict_accepted(self):
        assert extract_cells({"kernel_seconds": 1.5}) == {
            "kernel_seconds": 1.5
        }


class TestRecordAndLoad:
    def test_appends_not_overwrites(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        n1 = record_report(path, REPORT, sha="aaa", host="h", timestamp=1.0)
        n2 = record_report(path, REPORT, sha="bbb", host="h", timestamp=2.0)
        assert n1 == n2 == 3
        entries = load_history(path)
        assert len(entries) == 6
        assert {e["sha"] for e in entries} == {"aaa", "bbb"}

    def test_source_defaults_to_kind(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        record_report(path, REPORT, sha="a", host="h", timestamp=1.0)
        assert load_history(path)[0]["source"] == "bench-engine"

    def test_empty_report_writes_nothing(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        assert record_report(path, {"matches": 3}) == 0
        assert load_history(path) == []

    def test_load_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text(
            'not json\n{"cell": 5, "seconds": 1}\n'
            '{"cell": "c", "seconds": 0.5}\n'
        )
        entries = load_history(str(path))
        assert len(entries) == 1
        assert entries[0]["cell"] == "c"

    def test_load_missing_file(self, tmp_path):
        assert load_history(str(tmp_path / "nope.jsonl")) == []


def _entry(cell, seconds, *, host="h", sha="s", ts=0.0):
    return {"cell": cell, "seconds": seconds, "host": host,
            "sha": sha, "ts": ts}


class TestComputeTrends:
    def test_first_sample_is_new(self):
        (t,) = compute_trends([_entry("c", 1.0)])
        assert t.baseline is None
        assert t.delta_pct is None
        assert t.samples == 0
        assert not t.regressed(25.0)

    def test_baseline_is_median_of_window(self):
        entries = [_entry("c", s) for s in (1.0, 3.0, 2.0, 10.0)]
        (t,) = compute_trends(entries, window=3)
        assert t.latest == 10.0
        assert t.baseline == 2.0  # median of (1, 3, 2)
        assert t.samples == 3
        assert t.delta_pct == pytest.approx(400.0)

    def test_window_limits_baseline(self):
        entries = [_entry("c", s) for s in (100.0, 1.0, 1.0, 1.0, 1.0)]
        (t,) = compute_trends(entries, window=3)
        assert t.baseline == 1.0  # the 100.0 outlier aged out

    def test_hosts_never_compare(self):
        entries = [
            _entry("c", 1.0, host="fast"),
            _entry("c", 50.0, host="slow"),
        ]
        trends = compute_trends(entries)
        assert all(t.baseline is None for t in trends)
        assert {t.host for t in trends} == {"fast", "slow"}

    def test_host_filter(self):
        entries = [
            _entry("c", 1.0, host="a"),
            _entry("c", 2.0, host="b"),
        ]
        trends = compute_trends(entries, host="a")
        assert [t.host for t in trends] == ["a"]

    def test_regressions_threshold(self):
        entries = [_entry("c", 1.0), _entry("c", 1.2)]
        trends = compute_trends(entries)
        assert regressions(trends, threshold_pct=25.0) == []
        assert len(regressions(trends, threshold_pct=10.0)) == 1

    def test_render_flags_regression(self):
        trends = [
            CellTrend(cell="c", host="h", latest=2.0,
                      latest_sha="s", baseline=1.0, samples=3),
        ]
        text = render_trends(trends, threshold_pct=25.0)
        assert "REGRESSION" in text
        assert "+100.0%" in text

    def test_render_empty(self):
        assert "no history" in render_trends([])


class TestBenchTrendCli:
    def _seed(self, tmp_path, seconds_list):
        history = str(tmp_path / "hist.jsonl")
        for i, s in enumerate(seconds_list):
            report = make_report(
                "bench-engine",
                {"cells": {"tri": {"kernel_seconds": s}}},
            )
            record_report(history, report, sha=f"s{i}", host="ci",
                          timestamp=float(i))
        return history

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        history = self._seed(tmp_path, [0.010, 0.010, 0.010])
        slow = make_report(
            "bench-engine",
            {"cells": {"tri": {"kernel_seconds": 0.050}}},
        )
        slow_path = str(tmp_path / "slow.json")
        write_report(slow_path, slow)
        rc = main([
            "bench-trend", "--history", history,
            "--record", slow_path, "--host", "ci", "--sha", "new",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_report_only_exits_zero(self, tmp_path, capsys):
        history = self._seed(tmp_path, [0.010, 0.010, 0.050])
        rc = main([
            "bench-trend", "--history", history,
            "--host", "ci", "--report-only",
        ])
        assert rc == 0
        assert "REGRESSION" in capsys.readouterr().out

    def test_steady_state_passes(self, tmp_path, capsys):
        history = self._seed(tmp_path, [0.010, 0.011, 0.010])
        rc = main(["bench-trend", "--history", history, "--host", "ci"])
        assert rc == 0
        assert "REGRESSION" not in capsys.readouterr().out

    def test_new_cells_do_not_gate(self, tmp_path):
        history = self._seed(tmp_path, [0.010])
        assert main(
            ["bench-trend", "--history", history, "--host", "ci"]
        ) == 0

    def test_json_output(self, tmp_path, capsys):
        history = self._seed(tmp_path, [0.010, 0.050])
        rc = main([
            "bench-trend", "--history", history,
            "--host", "ci", "--json", "--report-only",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "bench-trend"
        trends = payload["data"]["trends"]
        assert trends[0]["cell"] == "cells.tri.kernel_seconds"
        assert payload["data"]["regressions"]

    def test_missing_record_file_is_an_error(self, tmp_path, capsys):
        history = str(tmp_path / "hist.jsonl")
        rc = main([
            "bench-trend", "--history", history,
            "--record", str(tmp_path / "nope.json"),
        ])
        assert rc == 2

    def test_record_appends_and_reports(self, tmp_path, capsys):
        history = str(tmp_path / "hist.jsonl")
        path = str(tmp_path / "r.json")
        write_report(path, REPORT)
        rc = main([
            "bench-trend", "--history", history, "--record", path,
            "--host", "ci", "--sha", "abc",
        ])
        assert rc == 0
        assert len(load_history(history)) == 3
        assert "recorded" in capsys.readouterr().err
