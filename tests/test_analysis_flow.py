"""Tests for the dataflow framework (repro.analysis.flow) and the
resource-lifecycle / lock-discipline checkers (FM300–FM309).

Two layers are pinned:

* the CFG + fixpoint framework itself — block structure, exception
  edges, the finally-duplication that makes cleanup paths visible, and
  a classic must-defined analysis run through ``run_forward``;
* one mutation test per FM30x code: a minimal snippet that must trigger
  exactly that code, plus the blessed clean idiom (try/finally close,
  ``with lock:``) that must stay silent.  These are the proof that the
  checker distinguishes the bug from the fix — delete the fix and the
  code fires, apply it and the report is empty.
"""

import ast
from typing import FrozenSet, Tuple

import pytest

from repro.analysis.flow import (
    ForwardAnalysis,
    FlowNode,
    build_cfg,
    function_defs,
    run_forward,
)
from repro.analysis.flowcheck import FLOW_CODES, check_functions
from repro.analysis.fmlint import lint_source


def cfg_of(source: str):
    tree = ast.parse(source)
    (_, func), = function_defs(tree)
    return build_cfg(func)


def codes_of(source: str):
    """Every FM30x code the snippet triggers, as a sorted tuple."""
    found = check_functions(ast.parse(source))
    return tuple(sorted(code for code, hits in found.items() if hits))


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------
class TestCFG:
    def test_linear_function(self):
        cfg = cfg_of("def f(x):\n    y = x\n    return y\n")
        kinds = [n.kind for n in cfg.nodes]
        assert "entry" in kinds and "exit" in kinds
        assert cfg.nodes[cfg.entry].kind == "entry"

    def test_branch_has_two_successors(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        branches = [n for n in cfg.nodes if n.kind == "branch"]
        assert branches and len(branches[0].succ) == 2

    def test_loop_zero_iteration_edge(self):
        # The loop head must have a path to the exit that bypasses the
        # body entirely (the zero-iteration case) — and the iteration
        # binding must live on a separate node so the bypass never sees
        # it.
        cfg = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        use(x)\n"
            "    return 1\n"
        )
        heads = [n for n in cfg.nodes if n.kind == "loop-head"]
        binds = [n for n in cfg.nodes if n.kind == "loop-bind"]
        assert len(heads) == 1 and len(binds) == 1
        assert binds[0].index in heads[0].succ
        # head also reaches the after-loop code without the bind node
        assert any(s != binds[0].index for s in heads[0].succ)

    def test_statement_exception_edges_reach_raise_exit(self):
        cfg = cfg_of("def f(x):\n    g(x)\n")
        stmts = [n for n in cfg.nodes if n.kind == "stmt"]
        assert stmts and cfg.raise_exit in stmts[0].exc

    def test_finally_body_is_duplicated_for_unwind(self):
        # try/finally compiles to two copies of the finally body: the
        # normal fall-through and the unwind copy (marked in_cleanup).
        cfg = cfg_of(
            "def f(x):\n"
            "    try:\n"
            "        g(x)\n"
            "    finally:\n"
            "        h(x)\n"
        )
        cleanup = [n for n in cfg.nodes if n.in_cleanup and n.stmt]
        normal = [
            n for n in cfg.nodes
            if not n.in_cleanup and n.kind == "stmt" and n.stmt
            and isinstance(n.stmt, ast.Expr)
        ]
        assert cleanup  # the unwind copy exists
        assert len(normal) >= 2  # g(x) plus the normal finally copy

    def test_with_enter_and_exit_nodes(self):
        cfg = cfg_of(
            "def f(lock):\n"
            "    with lock:\n"
            "        g()\n"
        )
        kinds = {n.kind for n in cfg.nodes}
        assert {"with-enter", "with-exit", "with-unwind"} <= kinds

    def test_function_defs_qualnames(self):
        tree = ast.parse(
            "class C:\n"
            "    def m(self):\n"
            "        pass\n"
            "def free():\n"
            "    pass\n"
        )
        names = [name for name, _ in function_defs(tree)]
        assert names == ["C.m", "free"]


# ----------------------------------------------------------------------
# Fixpoint driver
# ----------------------------------------------------------------------
State = FrozenSet[str]


class MustDefined(ForwardAnalysis):
    """Classic must-defined variables: intersection join."""

    def initial(self) -> State:
        return frozenset()

    def join(self, a: State, b: State) -> State:
        return a & b

    def transfer(
        self, node: FlowNode, state: State
    ) -> Tuple[State, State]:
        stmt = node.stmt
        if node.kind == "stmt" and isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state = state | {target.id}
        return state, state


class TestFixpoint:
    def test_both_branches_define(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        result = run_forward(cfg, MustDefined())
        assert "a" in result.exit_state

    def test_one_branch_does_not_dominate(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    return 0\n"
        )
        result = run_forward(cfg, MustDefined())
        assert "a" not in result.exit_state

    def test_loop_body_does_not_dominate_exit(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        a = 1\n"
            "    return 0\n"
        )
        result = run_forward(cfg, MustDefined())
        assert "a" not in result.exit_state  # zero-iteration path

    def test_straightline_reaches_exit(self):
        cfg = cfg_of("def f():\n    a = 1\n    b = 2\n    return b\n")
        result = run_forward(cfg, MustDefined())
        assert {"a", "b"} <= result.exit_state


# ----------------------------------------------------------------------
# FM30x mutation tests: each code has a minimal trigger
# ----------------------------------------------------------------------
class TestResourceCodes:
    def test_fm300_shm_leaks_on_normal_path(self):
        assert codes_of(
            "def leak(n):\n"
            "    shm = SharedMemory(create=True, size=n)\n"
            "    return None\n"
        ) == ("FM300",)

    def test_fm301_shm_leaks_on_exception_path(self):
        assert codes_of(
            "def leak_exc(arr):\n"
            "    shm = SharedMemory(create=True, size=1)\n"
            "    fill(shm, arr)\n"
            "    shm.close()\n"
            "    shm.unlink()\n"
        ) == ("FM301",)

    def test_fm302_lease_not_released_on_raise(self):
        assert codes_of(
            "def lease_leak(entry):\n"
            "    entry.pool.acquire()\n"
            "    work(entry)\n"
            "    entry.pool.release()\n"
        ) == ("FM302",)

    def test_fm303_handoff_then_release(self):
        codes = codes_of(
            "def handoff(self, arr):\n"
            "    shm = SharedMemory(create=True, size=1)\n"
            "    self._shared.append(shm)\n"
            "    shm.close()\n"
            "    shm.unlink()\n"
        )
        assert "FM303" in codes

    def test_fm304_blocking_call_under_lock(self):
        assert codes_of(
            "def blocked(self, fut):\n"
            "    with self._lock:\n"
            "        return fut.result()\n"
        ) == ("FM304",)

    def test_fm305_guarded_field_mutated_without_lock(self):
        assert codes_of(
            "class C:\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            self._items = 1\n"
            "    def b(self):\n"
            "        with self._lock:\n"
            "            self._items = 2\n"
            "    def c(self):\n"
            "        self._items = 3\n"
        ) == ("FM305",)

    def test_fm306_lock_leaks_on_exception_path(self):
        assert codes_of(
            "def lockleak(self):\n"
            "    self._lock.acquire()\n"
            "    work(self)\n"
            "    self._lock.release()\n"
        ) == ("FM306",)

    def test_fm307_double_release(self):
        assert codes_of(
            "def double(entry):\n"
            "    entry.pool.acquire()\n"
            "    entry.pool.release()\n"
            "    entry.pool.release()\n"
        ) == ("FM307",)

    def test_fm308_live_resource_rebound(self):
        codes = codes_of(
            "def rebind(n):\n"
            "    shm = SharedMemory(create=True, size=n)\n"
            "    shm = SharedMemory(create=True, size=n)\n"
            "    shm.close()\n"
            "    shm.unlink()\n"
        )
        assert "FM308" in codes

    def test_fm309_lock_held_at_return(self):
        codes = codes_of(
            "def heldexit(self):\n"
            "    self._lock.acquire()\n"
            "    return 1\n"
        )
        assert "FM309" in codes


# ----------------------------------------------------------------------
# The blessed idioms must stay silent
# ----------------------------------------------------------------------
class TestCleanIdioms:
    @pytest.mark.parametrize(
        "source",
        [
            # try/finally close + unlink (unlink even if close raises —
            # the sequential form is flagged on purpose: a raising
            # close() would skip the unlink and leak the segment)
            "def ok(n):\n"
            "    shm = SharedMemory(create=True, size=n)\n"
            "    try:\n"
            "        fill(shm)\n"
            "    finally:\n"
            "        try:\n"
            "            shm.close()\n"
            "        finally:\n"
            "            shm.unlink()\n",
            # ownership transfer via return
            "def make(n):\n"
            "    shm = SharedMemory(create=True, size=n)\n"
            "    return shm\n",
            # ownership transfer into a container
            "def stash(self, n):\n"
            "    shm = SharedMemory(create=True, size=n)\n"
            "    self._shared.append(shm)\n",
            # lease balanced through try/finally
            "def serve(entry):\n"
            "    entry.pool.acquire()\n"
            "    try:\n"
            "        return work(entry)\n"
            "    finally:\n"
            "        entry.pool.release()\n",
            # with-lock without blocking calls
            "def guarded(self):\n"
            "    with self._lock:\n"
            "        self._items = 1\n",
            # explicit lock balanced through try/finally
            "def locked(self):\n"
            "    self._lock.acquire()\n"
            "    try:\n"
            "        work(self)\n"
            "    finally:\n"
            "        self._lock.release()\n",
        ],
        ids=[
            "finally-close-unlink",
            "transfer-return",
            "transfer-append",
            "lease-finally",
            "with-lock",
            "lock-finally",
        ],
    )
    def test_clean(self, source):
        assert codes_of(source) == ()


# ----------------------------------------------------------------------
# fmlint wiring: paths, suppressions
# ----------------------------------------------------------------------
LEAK = (
    "def leak(n):\n"
    "    shm = SharedMemory(create=True, size=n)\n"
    "    return None\n"
)


class TestLintWiring:
    def test_flow_rules_fire_on_engine_paths(self):
        findings = lint_source(LEAK, path="src/repro/engine/x.py")
        flow = [d for d in findings if d.code in FLOW_CODES]
        assert [d.code for d in flow] == ["FM300"]
        assert flow[0].location == "src/repro/engine/x.py:2"

    def test_flow_rules_skip_unrelated_paths(self):
        findings = lint_source(LEAK, path="src/repro/patterns/x.py")
        assert [d.code for d in findings if d.code in FLOW_CODES] == []

    def test_inline_suppression(self):
        src = LEAK.replace(
            "size=n)", "size=n)  # fmlint: disable=FM300"
        )
        findings = lint_source(src, path="src/repro/engine/x.py")
        assert [d.code for d in findings if d.code in FLOW_CODES] == []
