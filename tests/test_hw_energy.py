"""Tests for the energy model."""

import pytest

from repro.compiler import compile_pattern
from repro.graph import erdos_renyi
from repro.hw import (
    EnergyConfig,
    FlexMinerConfig,
    cpu_energy,
    estimate_energy,
    simulate,
)
from repro.patterns import k_clique, triangle

GRAPH = erdos_renyi(64, 0.25, seed=44)


def run(pattern=None, **config_overrides):
    plan = compile_pattern(pattern or k_clique(4))
    config = FlexMinerConfig(num_pes=4, **config_overrides)
    return simulate(GRAPH, plan, config), config


class TestEstimate:
    def test_components_present_and_positive(self):
        report, config = run()
        breakdown = estimate_energy(report, config)
        for name in ("pe", "cmap", "private", "l2", "noc", "dram"):
            assert name in breakdown.dynamic_j
            assert breakdown.dynamic_j[name] >= 0
        assert breakdown.leakage_j > 0
        assert breakdown.total_j > 0

    def test_total_is_sum(self):
        report, config = run()
        b = estimate_energy(report, config)
        assert b.total_j == pytest.approx(
            sum(b.dynamic_j.values()) + b.leakage_j
        )

    def test_average_watts(self):
        report, config = run()
        b = estimate_energy(report, config)
        assert b.average_watts == pytest.approx(b.total_j / b.seconds)

    def test_more_work_more_energy(self):
        small, config = run(pattern=triangle())
        big, _ = run(pattern=k_clique(4))
        assert (
            estimate_energy(big, config).total_j
            > estimate_energy(small, config).total_j
        )

    def test_custom_constants_scale(self):
        report, config = run()
        base = estimate_energy(report, config)
        doubled = estimate_energy(
            report, config, EnergyConfig(pj_per_pe_cycle=2.4)
        )
        assert doubled.dynamic_j["pe"] == pytest.approx(
            2 * base.dynamic_j["pe"]
        )

    def test_summary_renders(self):
        report, config = run()
        text = estimate_energy(report, config).summary()
        assert "total=" in text and "avg=" in text


class TestCpuComparison:
    def test_cpu_energy_scales_with_time(self):
        assert cpu_energy(2e-3).total_j == pytest.approx(
            2 * cpu_energy(1e-3).total_j, rel=0.01
        )

    def test_accelerator_beats_cpu_energy_on_same_work(self):
        # The headline efficiency claim: tiny PEs at 1.3 GHz versus ten
        # big cores — even with equal runtimes FlexMiner wins on energy.
        report, config = run()
        accel = estimate_energy(report, config)
        cpu = cpu_energy(report.seconds)
        assert accel.total_j < cpu.total_j

    def test_zero_seconds_guard(self):
        b = cpu_energy(0.0)
        assert b.average_watts == 0.0
