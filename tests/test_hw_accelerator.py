"""Tests for the PE, scheduler, and full accelerator simulation."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.graph import complete_graph, erdos_renyi, star_graph
from repro.patterns import diamond, four_cycle, k_clique, triangle
from repro.compiler import compile_motifs, compile_pattern
from repro.engine import mine, mine_multi
from repro.hw import (
    AreaModel,
    FlexMinerAccelerator,
    FlexMinerConfig,
    PE_AREA_MM2,
    Scheduler,
    simulate,
)

GRAPH = erdos_renyi(48, 0.25, seed=13)
SMALL_CONFIG = FlexMinerConfig(num_pes=4)


class TestFunctionalEquivalence:
    @pytest.mark.parametrize(
        "pattern,kwargs",
        [
            (triangle(), {}),
            (k_clique(4), {}),
            (four_cycle(), {}),
            (diamond(), {"use_orientation": False}),
            (four_cycle(), {"induced": True}),
        ],
        ids=lambda x: getattr(x, "name", str(x)),
    )
    def test_sim_counts_match_engine(self, pattern, kwargs):
        plan = compile_pattern(pattern, **kwargs)
        sw = mine(GRAPH, plan)
        report = simulate(GRAPH, plan, SMALL_CONFIG)
        assert report.counts == sw.counts

    def test_multiplan_counts_match(self):
        plan = compile_motifs(3)
        sw = mine_multi(GRAPH, plan)
        report = simulate(GRAPH, plan, SMALL_CONFIG)
        assert report.counts == sw.counts

    def test_counts_independent_of_pe_count(self):
        plan = compile_pattern(four_cycle())
        counts = {
            simulate(GRAPH, plan, FlexMinerConfig(num_pes=p)).counts
            for p in (1, 3, 16)
        }
        assert len(counts) == 1

    def test_counts_independent_of_cmap_size(self):
        plan = compile_pattern(four_cycle())
        counts = {
            simulate(
                GRAPH, plan, FlexMinerConfig(num_pes=2, cmap_bytes=size)
            ).counts
            for size in (0, 256, 8192)
        }
        assert len(counts) == 1

    def test_exact_cmap_counts_match(self):
        plan = compile_pattern(four_cycle())
        exact = simulate(
            GRAPH,
            plan,
            FlexMinerConfig(num_pes=2, cmap_bytes=2048, cmap_exact=True),
        )
        assert exact.counts == mine(GRAPH, plan).counts

    def test_roots_subset(self):
        plan = compile_pattern(triangle(), use_orientation=False)
        full = simulate(GRAPH, plan, SMALL_CONFIG)
        partial = simulate(GRAPH, plan, SMALL_CONFIG, roots=range(10))
        assert partial.total <= full.total


class TestTimingBehaviour:
    def test_more_pes_fewer_cycles(self):
        plan = compile_pattern(k_clique(4))
        g = erdos_renyi(128, 0.2, seed=5)
        c1 = simulate(g, plan, FlexMinerConfig(num_pes=1)).cycles
        c8 = simulate(g, plan, FlexMinerConfig(num_pes=8)).cycles
        assert c8 < c1 / 3

    def test_busy_work_conserved_across_pe_counts(self):
        plan = compile_pattern(k_clique(4))
        b1 = simulate(GRAPH, plan, FlexMinerConfig(num_pes=1)).busy_cycles
        b8 = simulate(GRAPH, plan, FlexMinerConfig(num_pes=8)).busy_cycles
        assert b1 == pytest.approx(b8, rel=0.01)

    def test_cycles_positive_and_report_consistent(self):
        plan = compile_pattern(triangle())
        report = simulate(GRAPH, plan, SMALL_CONFIG)
        assert report.cycles > 0
        assert report.seconds == pytest.approx(
            report.cycles / (SMALL_CONFIG.pe_freq_ghz * 1e9)
        )
        assert 0 <= report.memory_bound_fraction <= 1
        assert report.load_imbalance >= 1.0
        assert "matches" in report.summary()

    def test_cmap_reduces_noc_traffic_for_four_cycle(self):
        # Fig. 16: memoization cuts edgelist re-reads.  The private
        # cache is shrunk so the graph does not fit (the regime of the
        # paper's full-size inputs) and re-reads become NoC traffic.
        plan = compile_pattern(four_cycle())
        g = erdos_renyi(96, 0.2, seed=3)
        base_cfg = dict(num_pes=2, private_cache_bytes=2048)
        no = simulate(g, plan, FlexMinerConfig(cmap_bytes=0, **base_cfg))
        with_cmap = simulate(
            g, plan, FlexMinerConfig(cmap_bytes=8192, **base_cfg)
        )
        assert with_cmap.noc_requests < no.noc_requests
        assert with_cmap.cycles < no.cycles

    def test_cmap_overflow_falls_back(self):
        # A tiny c-map overflows on hubs; results stay correct and the
        # fall-back events are visible.
        g = star_graph(200)
        plan = compile_pattern(four_cycle())
        tiny = simulate(
            g, plan, FlexMinerConfig(num_pes=1, cmap_bytes=100)
        )
        assert tiny.counts == mine(g, plan).counts
        assert tiny.cmap_overflows > 0

    def test_dense_graph_triangles(self):
        g = complete_graph(16)
        plan = compile_pattern(triangle())
        report = simulate(g, plan, SMALL_CONFIG)
        assert report.total == 560  # C(16,3)


class TestScheduler:
    def test_order_tasks_by_degree(self):
        g = star_graph(5)
        order = Scheduler.order_tasks(g)
        assert order[0] == 0  # the hub first (LPT)

    def test_empty_pe_list_rejected(self):
        with pytest.raises(ValueError):
            Scheduler([])

    def test_all_tasks_dispatched(self):
        plan = compile_pattern(triangle())
        accel = FlexMinerAccelerator(GRAPH, plan, SMALL_CONFIG)
        accel.run()
        assert accel.scheduler.tasks_dispatched == GRAPH.num_vertices

    def test_work_spread_over_pes(self):
        plan = compile_pattern(k_clique(4))
        accel = FlexMinerAccelerator(
            erdos_renyi(64, 0.3, seed=9), plan, SMALL_CONFIG
        )
        accel.run()
        assert all(pe.stats.tasks > 0 for pe in accel.pes)


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            FlexMinerConfig(num_pes=0)
        with pytest.raises(ConfigError):
            FlexMinerConfig(line_bytes=48)
        with pytest.raises(ConfigError):
            FlexMinerConfig(cmap_occupancy_threshold=0.0)
        with pytest.raises(ConfigError):
            FlexMinerConfig(cmap_bytes=3)

    def test_with_helpers(self):
        config = FlexMinerConfig()
        assert config.with_pes(7).num_pes == 7
        assert config.with_cmap_bytes(1024).cmap_bytes == 1024
        assert config.without_cmap().cmap_bytes == 0

    def test_bad_plan_rejected(self):
        with pytest.raises(SimulationError):
            FlexMinerAccelerator(GRAPH, object(), SMALL_CONFIG)


class TestArea:
    def test_paper_constants(self):
        model = AreaModel(FlexMinerConfig())
        # The evaluated PE (32 kB cache + 8 kB c-map) is 0.18 mm2.
        assert model.pe_area_mm2 == pytest.approx(PE_AREA_MM2, rel=0.01)

    def test_sixty_four_pes_fit_in_a_core(self):
        # §VII-A: 64 PEs take roughly one Skylake core of area.
        model = AreaModel(FlexMinerConfig(num_pes=64))
        assert 0.5 < model.skylake_core_equivalents < 1.2

    def test_area_scales_with_sram(self):
        small = AreaModel(FlexMinerConfig(cmap_bytes=0))
        big = AreaModel(FlexMinerConfig(cmap_bytes=16 * 1024))
        assert big.pe_area_mm2 > small.pe_area_mm2

    def test_clock_ratio(self):
        model = AreaModel(FlexMinerConfig())
        assert model.clock_ratio_vs_cpu == pytest.approx(1.3 / 4.0)

    def test_summary_renders(self):
        assert "PE area" in AreaModel(FlexMinerConfig()).summary()
