"""On-chip storage management hints (paper §V-C and §VI-B).

The compiler decorates the execution plan with two kinds of hints:

* **frontier-list composition** — each step starts from the deepest
  earlier frontier whose constraints are a subset of its own, and only
  applies the *remaining* constraints.  This generalizes both paper
  examples: the diamond's last step reuses ``adj(v0) ∩ adj(v1)`` with an
  empty remainder, and a k-clique's step d computes
  ``frontier(d-1) ∩ adj(v_{d-1})`` instead of re-intersecting every
  ancestor's edgelist;
* **c-map management** — only ancestors whose connectivity information is
  actually consumed later get their neighbors inserted into the c-map,
  and inserted ids can be pre-filtered against a vid upper bound shared
  by every consumer.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from .plan import VertexStep

__all__ = [
    "assign_frontier_hints",
    "cmap_insert_hints",
    "cmap_needed_depths",
]


def _constraint_sets(step: VertexStep) -> Tuple[frozenset, frozenset]:
    """(must-be-adjacent depths, must-not-be-adjacent depths)."""
    return frozenset(step.full_connected), frozenset(step.disconnected)


def assign_frontier_hints(steps: Sequence[VertexStep]) -> List[VertexStep]:
    """Fill in base_step / remainders / memoize_frontier on each step.

    A step's base is the earlier step j whose raw candidate set (all
    vertices adjacent to CA(j) and non-adjacent to D(j), unbounded) is a
    superset of this step's target set: CA(j) ⊆ CA(d) and D(j) ⊆ D(d).
    Among valid bases the one covering the most constraints wins (deepest
    step on ties, since deeper frontiers are smaller).  Bases with no
    constraints (bare adjacency lists) are skipped — composing with them
    is identical to loading the edgelist directly.
    """
    out: List[VertexStep] = []
    for step in steps:
        conn, disc = _constraint_sets(step)
        best: Optional[VertexStep] = None
        best_cover = 0
        for prior in out:
            p_conn, p_disc = _constraint_sets(prior)
            if len(p_conn) + len(p_disc) <= 1:
                continue  # bare adjacency: nothing memoized to reuse
            if p_conn <= conn and p_disc <= disc:
                cover = len(p_conn) + len(p_disc)
                if cover >= best_cover:
                    best, best_cover = prior, cover
        if best is None:
            out.append(step)
            continue
        b_conn, b_disc = _constraint_sets(best)
        out.append(
            replace(
                step,
                base_step=best.depth,
                extra_connected=tuple(sorted(conn - b_conn)),
                extra_disconnected=tuple(sorted(disc - b_disc)),
            )
        )

    used_as_base = {s.base_step for s in out if s.base_step is not None}
    return [
        step
        if step.depth not in used_as_base
        else replace(step, memoize_frontier=True)
        for step in out
    ]


def cmap_needed_depths(step: VertexStep) -> Tuple[int, ...]:
    """Depths whose connectivity info this step consumes via the c-map.

    Without a base, candidates iterate the extender's adjacency, so the
    extender check is implicit and excluded.  With a base frontier the
    candidates iterate the memoized list instead, and every remaining
    constraint — the extender included — is a live c-map check.
    """
    if step.base_step is not None:
        live = set(step.extra_connected) | set(step.extra_disconnected)
    else:
        live = set(step.connected) | set(step.disconnected)
    return tuple(sorted(live))


def cmap_insert_hints(
    steps: Sequence[VertexStep],
) -> Tuple[Tuple[int, ...], Dict[int, Optional[int]]]:
    """Which depths to insert into the c-map, and the insert-time filters.

    Returns ``(insert_depths, filters)``.  A depth j is inserted only if
    some later step checks connectivity against it (paper: for 4-cycle
    only one ancestor's neighbors enter the c-map).  ``filters[j]`` is a
    depth b whose runtime vertex id upper-bounds useful insertions,
    present only when *every* consumer bounds its candidates by the same
    earlier depth (paper: v1's neighbors above v0's id are never
    queried).
    """
    # A step consumes a depth directly through its own c-map checks, and
    # *indirectly* through any frontier it (transitively) composes on:
    # the memoized list was shaped by the insert-time filter, so every
    # descendant's bounds must respect it too.
    by_depth = {step.depth: step for step in steps}
    consumed: Dict[int, set] = {}
    for step in steps:
        checks = set(cmap_needed_depths(step))
        base = step.base_step
        while base is not None:
            checks |= consumed.get(base, set())
            base = by_depth[base].base_step
        consumed[step.depth] = checks

    consumers: Dict[int, List[VertexStep]] = {}
    for step in steps:
        for j in sorted(consumed[step.depth]):
            consumers.setdefault(j, []).append(step)

    # Profitability: inserting depth j costs ~2 cycles per entry (bulk
    # insert + stack delete).  A consumer at depth j+1 runs exactly once
    # per insertion and saves only one merge operand, a net loss; a
    # consumer deeper than j+1 runs once per *node* of every intermediate
    # level, amortizing the insertion many times over (the 4-cycle case,
    # §VI-B).  Only insert depths with such a consumer.
    consumers = {
        j: steps_using
        for j, steps_using in consumers.items()
        if any(s.depth > j + 1 for s in steps_using)
    }

    insert_depths = tuple(sorted(consumers))
    filters: Dict[int, Optional[int]] = {}
    for j, steps_using in consumers.items():
        bounds = [set(s.upper_bounds) for s in steps_using]
        common = set.intersection(*bounds) if bounds else set()
        # The filter value must be known when depth j is placed: b < j.
        usable = sorted(b for b in common if b < j)
        filters[j] = usable[0] if usable else None
    return insert_depths, filters
