"""Textual intermediate representation for execution plans (paper §V-A).

The IR mirrors Listing 1/2 of the paper: a *vertex section* describing the
candidate set and pruneBy constraints per extension step, and an
*embedding section* describing the dependency chain (or tree, for
multi-pattern plans).  Hint annotations carry the frontier and c-map
management information of §V-C/§VI-B.

Example (4-cycle)::

    plan "4-cycle" k=4 edges=(0,1),(0,3),(1,2),(2,3)
    options induced=false oriented=false order=0,1,3,2
    vertex:
      v0 in V pruneBy(inf, {})
      v1 in v0.N pruneBy(v0, {})
      v2 in v0.N pruneBy(v1, {})
      v3 in v2.N pruneBy(v0, {v1})
    embedding:
      emb0 := v0
      emb1 := emb0 + v1
      emb2 := emb1 + v2
      emb3 := emb2 + v3
    cmap:
      insert v1 filter v0

Single-pattern plans round-trip (``emit_ir`` then ``parse_ir``).  Tree
plans for multi-pattern problems are emitted for inspection and loading
into the simulated hardware but are reconstructed from patterns rather
than parsed back.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import IRSyntaxError
from ..patterns import Pattern
from .plan import ExecutionPlan, MultiPlan, PlanNode, VertexStep

__all__ = ["emit_ir", "parse_ir", "emit_multi_ir"]


def emit_ir(plan: ExecutionPlan) -> str:
    """Serialize a single-pattern execution plan to IR text."""
    p = plan.pattern
    edges = ",".join(f"({u},{v})" for u, v in p.edges)
    header = f'plan "{p.name or "pattern"}" k={p.num_vertices} edges={edges}'
    if p.is_labeled:
        encoded = ",".join(
            "_" if lab is None else str(lab) for lab in p.labels
        )
        header += f" labels={encoded}"
    lines = [
        header,
        "options induced={} oriented={} order={}".format(
            str(plan.induced).lower(),
            str(plan.oriented).lower(),
            ",".join(map(str, plan.matching_order)),
        ),
        "vertex:",
        "  v0 in V pruneBy(inf, {})",
    ]
    for step in plan.steps:
        lines.append("  " + _format_step(step))
    lines.append("embedding:")
    lines.append("  emb0 := v0")
    for step in plan.steps:
        d = step.depth
        lines.append(f"  emb{d} := emb{d - 1} + v{d}")
    if plan.cmap_insert_depths:
        lines.append("cmap:")
        for d in plan.cmap_insert_depths:
            flt = plan.cmap_insert_filter.get(d)
            suffix = f" filter v{flt}" if flt is not None else ""
            lines.append(f"  insert v{d}{suffix}")
    return "\n".join(lines) + "\n"


def _format_step(step: VertexStep) -> str:
    bound = (
        "inf"
        if not step.upper_bounds
        else ",".join(f"v{b}" for b in step.upper_bounds)
    )
    conn = ",".join(f"v{c}" for c in step.connected)
    text = (
        f"v{step.depth} in v{step.extender}.N "
        f"pruneBy({bound}, {{{conn}}})"
    )
    if step.label is not None:
        text += f" label({step.label})"
    if step.disconnected:
        not_conn = ",".join(f"v{c}" for c in step.disconnected)
        text += f" notAdj({{{not_conn}}})"
    if step.base_step is not None:
        extra_c = ",".join(f"v{c}" for c in step.extra_connected)
        extra_d = ",".join(f"v{c}" for c in step.extra_disconnected)
        text += f" base(v{step.base_step}, {{{extra_c}}}, {{{extra_d}}})"
    if step.memoize_frontier:
        text += " memoize"
    return text


_PLAN_RE = re.compile(
    r'^plan\s+"(?P<name>[^"]*)"\s+k=(?P<k>\d+)\s+edges=(?P<edges>\S*)'
    r"(?:\s+labels=(?P<labels>[\d_,]+))?$"
)
_OPTIONS_RE = re.compile(
    r"^options\s+induced=(?P<induced>true|false)\s+"
    r"oriented=(?P<oriented>true|false)\s+order=(?P<order>[\d,]+)$"
)
_STEP_RE = re.compile(
    r"^v(?P<d>\d+) in v(?P<ext>\d+)\.N "
    r"pruneBy\((?P<bound>inf|[v\d,]+), \{(?P<conn>[v\d,]*)\}\)"
    r"(?: label\((?P<label>\d+)\))?"
    r"(?: notAdj\(\{(?P<notadj>[v\d,]*)\}\))?"
    r"(?: base\(v(?P<base>\d+), \{(?P<extrac>[v\d,]*)\}, "
    r"\{(?P<extrad>[v\d,]*)\}\))?"
    r"(?P<memo> memoize)?$"
)
_CMAP_RE = re.compile(r"^insert v(?P<d>\d+)(?: filter v(?P<f>\d+))?$")


def parse_ir(text: str) -> ExecutionPlan:
    """Parse IR text back into an :class:`ExecutionPlan`.

    Raises :class:`~repro.errors.IRSyntaxError` with a line number on any
    malformed input.
    """
    lines = [ln.rstrip() for ln in text.splitlines()]
    lines = [ln for ln in lines if ln.strip()]
    if not lines:
        raise IRSyntaxError("empty IR")

    header = _PLAN_RE.match(lines[0].strip())
    if not header:
        raise IRSyntaxError(f"line 1: bad plan header: {lines[0]!r}")
    k = int(header.group("k"))
    edges = _parse_edges(header.group("edges"))
    labels = None
    if header.group("labels"):
        labels = [
            None if tok == "_" else int(tok)
            for tok in header.group("labels").split(",")
        ]
    pattern = Pattern(k, edges, name=header.group("name"), labels=labels)

    if len(lines) < 2:
        raise IRSyntaxError("missing options line")
    options = _OPTIONS_RE.match(lines[1].strip())
    if not options:
        raise IRSyntaxError(f"line 2: bad options line: {lines[1]!r}")
    induced = options.group("induced") == "true"
    oriented = options.group("oriented") == "true"
    order = tuple(int(x) for x in options.group("order").split(","))

    section = None
    steps: List[VertexStep] = []
    insert_depths: List[int] = []
    filters: Dict[int, Optional[int]] = {}
    for lineno, raw in enumerate(lines[2:], start=3):
        stripped = raw.strip()
        if stripped in ("vertex:", "embedding:", "cmap:"):
            section = stripped[:-1]
            continue
        if section == "vertex":
            if stripped == "v0 in V pruneBy(inf, {})":
                continue
            m = _STEP_RE.match(stripped)
            if not m:
                raise IRSyntaxError(f"line {lineno}: bad vertex line: {raw!r}")
            steps.append(_step_from_match(m))
        elif section == "embedding":
            continue  # derivable from the vertex section for chains
        elif section == "cmap":
            m = _CMAP_RE.match(stripped)
            if not m:
                raise IRSyntaxError(f"line {lineno}: bad cmap line: {raw!r}")
            d = int(m.group("d"))
            insert_depths.append(d)
            filters[d] = int(m.group("f")) if m.group("f") else None
        else:
            raise IRSyntaxError(f"line {lineno}: text outside a section")

    # Recompute symmetry pairs from the per-step bounds, and step labels
    # from the pattern's label vector (not serialized per step).
    conditions = tuple(
        sorted(
            ((b, s.depth) for s in steps for b in s.upper_bounds),
            key=lambda c: (c[1], c[0]),
        )
    )
    if pattern.is_labeled:
        from dataclasses import replace as _replace

        steps = [
            _replace(s, label=pattern.label(order[s.depth])) for s in steps
        ]
    return ExecutionPlan(
        pattern=pattern,
        matching_order=order,
        steps=tuple(steps),
        induced=induced,
        oriented=oriented,
        root_label=pattern.label(order[0]),
        symmetry_conditions=conditions,
        cmap_insert_depths=tuple(insert_depths),
        cmap_insert_filter=filters,
    )


def _parse_edges(text: str) -> List[Tuple[int, int]]:
    if not text:
        return []
    out: List[Tuple[int, int]] = []
    try:
        for pair in text.strip("()").split("),("):
            u_text, v_text = pair.split(",")
            out.append((int(u_text), int(v_text)))
    except ValueError as exc:
        raise IRSyntaxError(f"bad edge list: {text!r}") from exc
    return out


def _vlist(text: str) -> Tuple[int, ...]:
    if not text:
        return ()
    return tuple(int(tok[1:]) for tok in text.split(","))


def _step_from_match(m: "re.Match[str]") -> VertexStep:
    bound_text = m.group("bound")
    return VertexStep(
        depth=int(m.group("d")),
        extender=int(m.group("ext")),
        connected=_vlist(m.group("conn")),
        disconnected=_vlist(m.group("notadj") or ""),
        upper_bounds=() if bound_text == "inf" else _vlist(bound_text),
        label=int(m.group("label")) if m.group("label") else None,
        base_step=int(m.group("base")) if m.group("base") else None,
        extra_connected=_vlist(m.group("extrac") or ""),
        extra_disconnected=_vlist(m.group("extrad") or ""),
        memoize_frontier=bool(m.group("memo")),
    )


def emit_multi_ir(plan: MultiPlan) -> str:
    """Serialize a multi-pattern plan; the embedding section is a tree."""
    names = ",".join(f'"{p.name or i}"' for i, p in enumerate(plan.patterns))
    lines = [
        f"multiplan k={plan.patterns[0].num_vertices} patterns={names}",
        f"options induced={str(plan.induced).lower()}",
        "vertex:",
        "  v0 in V pruneBy(inf, {})",
    ]
    counter = [0]
    emb_lines: List[str] = ["  emb0 := v0"]

    def walk(node: PlanNode, parent_label: str) -> None:
        for child in node.children:
            assert child.step is not None  # only the root has no step
            counter[0] += 1
            label = f"emb{child.step.depth}_{counter[0]}"
            lines.append("  " + _format_step(child.step))
            tail = ""
            if child.pattern_index is not None:
                tail = f"  # matches {plan.patterns[child.pattern_index].name}"
            emb_lines.append(
                f"  {label} := {parent_label} + v{child.step.depth}{tail}"
            )
            walk(child, label)

    walk(plan.root, "emb0")
    lines.append("embedding:")
    lines.extend(emb_lines)
    return "\n".join(lines) + "\n"
