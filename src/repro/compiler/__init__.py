"""The FlexMiner compiler: pattern analysis and execution-plan generation."""

from .matching_order import (
    choose_matching_order,
    connected_ancestors,
    enumerate_matching_orders,
    score_matching_order,
)
from .symmetry import symmetry_conditions, transitive_reduction
from .plan import ExecutionPlan, MultiPlan, PlanNode, VertexStep
from .hints import assign_frontier_hints, cmap_insert_hints, cmap_needed_depths
from .compiler import compile_motifs, compile_multi, compile_pattern
from .estimate import (
    GraphProfile,
    LevelEstimate,
    choose_matching_order_for_graph,
    estimate_plan,
    measure_levels,
)
from .ir import emit_ir, emit_multi_ir, parse_ir
from .validate import PlanValidation, validate_plan

__all__ = [
    "choose_matching_order",
    "connected_ancestors",
    "enumerate_matching_orders",
    "score_matching_order",
    "symmetry_conditions",
    "transitive_reduction",
    "ExecutionPlan",
    "MultiPlan",
    "PlanNode",
    "VertexStep",
    "assign_frontier_hints",
    "cmap_insert_hints",
    "cmap_needed_depths",
    "compile_pattern",
    "compile_multi",
    "compile_motifs",
    "emit_ir",
    "emit_multi_ir",
    "parse_ir",
    "GraphProfile",
    "LevelEstimate",
    "estimate_plan",
    "measure_levels",
    "choose_matching_order_for_graph",
    "PlanValidation",
    "validate_plan",
]
