"""Symmetry-order generation (paper §II-B, Fig. 6; GraphZero [57]).

Automorphisms of the pattern make the same subgraph match several times.
Symmetry breaking adds partial-order constraints on the *data vertex ids*
so exactly one representative of every automorphism class survives.

We use the classic orbit/stabilizer construction (Grochow–Kellis):

1. start with the full automorphism group A = Aut(P);
2. take the vertex u at the earliest matching-order position whose orbit
   under A is non-trivial;
3. for every other v in u's orbit emit ``M(v) < M(u)`` (the first-matched
   vertex gets the largest id — the paper's convention, which makes every
   constraint an *upper bound* at the later vertex's step);
4. shrink A to the stabilizer of u and repeat until A is trivial.

Finally the constraint set is transitively reduced, which is what turns
the raw 4-cycle set {v1<v0, v2<v0, v2<v1, v3<v0} into the paper's
{v1<v0, v2<v1, v3<v0}.

The generated set satisfies the textbook invariant checked by our tests:

    matches_with_constraints * |Aut(P)| == matches_without_constraints
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from ..patterns import Pattern

__all__ = ["symmetry_conditions", "transitive_reduction"]

Condition = Tuple[int, int]  # (earlier_depth, later_depth): v[later] < v[earlier]


def symmetry_conditions(
    pattern: Pattern, order: Sequence[int]
) -> Tuple[Condition, ...]:
    """Partial-order conditions in embedding-depth space.

    Each returned pair ``(a, b)`` with ``a < b`` means the data vertex
    matched at depth b must have a smaller id than the one at depth a.
    """
    position = {v: d for d, v in enumerate(order)}
    group = pattern.automorphisms()
    conditions: List[Condition] = []

    while len(group) > 1:
        moved = {
            u
            for perm in group
            for u in pattern.vertices()
            if perm[u] != u
        }
        anchor = min(moved, key=lambda u: position[u])
        orbit = {perm[anchor] for perm in group}
        for v in sorted(orbit - {anchor}, key=lambda u: position[u]):
            conditions.append((position[anchor], position[v]))
        group = [perm for perm in group if perm[anchor] == anchor]

    return transitive_reduction(tuple(conditions))


def transitive_reduction(
    conditions: Tuple[Condition, ...]
) -> Tuple[Condition, ...]:
    """Drop conditions implied by transitivity (v2<v1 ∧ v1<v0 ⇒ v2<v0)."""
    edges: Set[Condition] = set(conditions)

    def reachable(src: int, dst: int, banned: Condition) -> bool:
        """Is there a path src -> dst (meaning v[dst] < v[src])?"""
        frontier = [src]
        seen = {src}
        while frontier:
            node = frontier.pop()
            for a, b in edges:
                if (a, b) == banned or a != node or b in seen:
                    continue
                if b == dst:
                    return True
                seen.add(b)
                frontier.append(b)
        return False

    for cond in sorted(conditions):
        if cond in edges and reachable(cond[0], cond[1], banned=cond):
            edges.remove(cond)
    return tuple(sorted(edges, key=lambda c: (c[1], c[0])))
