"""The FlexMiner compiler: pattern(s) in, execution plan out (paper §V).

``compile_pattern`` performs the full pattern analysis pipeline:

1. choose a matching order (density-first rule);
2. generate the symmetry order (orbit/stabilizer construction), or detect
   a k-clique and switch to the orientation technique instead (§V-C);
3. build one :class:`~repro.compiler.plan.VertexStep` per level with the
   pruneBy constraints;
4. attach frontier-memoization and c-map management hints.

``compile_multi`` compiles several patterns and merges their dependency
chains into a tree with common prefixes shared (§V-B), which is how k-MC
mines every k-motif in a single pass.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import CompileError
from ..patterns import Pattern, enumerate_motifs
from .hints import assign_frontier_hints, cmap_insert_hints
from .matching_order import choose_matching_order, connected_ancestors
from .plan import ExecutionPlan, MultiPlan, PlanNode, VertexStep
from .symmetry import symmetry_conditions

__all__ = ["compile_pattern", "compile_multi", "compile_motifs"]


def compile_pattern(
    pattern: Pattern,
    *,
    induced: bool = False,
    use_orientation: Optional[bool] = None,
    matching_order: Optional[Sequence[int]] = None,
) -> ExecutionPlan:
    """Compile one pattern into an execution plan.

    Parameters
    ----------
    pattern:
        The connected query pattern.
    induced:
        Vertex-induced semantics (k-MC style): candidates must also be
        *dis*connected from the non-ancestor embedding vertices.
    use_orientation:
        Force the k-clique orientation optimization on/off.  The default
        (None) auto-detects: cliques use orientation, everything else
        uses a symmetry order.  Orientation on a non-clique is rejected.
    matching_order:
        Override the automatically chosen matching order (used by tests
        and the matching-order ablation bench).
    """
    if not pattern.is_connected():
        raise CompileError("pattern must be connected")
    if pattern.num_vertices < 2:
        raise CompileError("pattern must have at least 2 vertices")

    # Orientation replaces the symmetry order by assuming the *full*
    # automorphism group of a clique (k! permutations).  A labeled
    # clique with mixed labels has a smaller group — rank-ordering its
    # vertices would silently drop matches — so orientation requires a
    # uniform label vector.
    is_clique = pattern.is_clique() and len(set(pattern.labels)) == 1
    if use_orientation is None:
        use_orientation = is_clique
    if use_orientation and not is_clique:
        raise CompileError(
            "orientation only applies to uniformly labeled cliques"
        )

    if matching_order is None:
        order = choose_matching_order(pattern)
    else:
        order = tuple(matching_order)
        if sorted(order) != list(pattern.vertices()):
            raise CompileError("matching_order must permute pattern vertices")
        ca_check = connected_ancestors(pattern, order)
        if any(not ca for ca in ca_check[1:]):
            raise CompileError("matching_order must be a connected order")

    ca_sets = connected_ancestors(pattern, order)
    conditions = (
        () if use_orientation else symmetry_conditions(pattern, order)
    )

    steps = _build_steps(pattern, order, ca_sets, conditions, induced=induced)
    steps = tuple(assign_frontier_hints(steps))
    insert_depths, filters = cmap_insert_hints(steps)

    return ExecutionPlan(
        pattern=pattern,
        matching_order=order,
        steps=steps,
        induced=induced,
        oriented=use_orientation,
        root_label=pattern.label(order[0]),
        symmetry_conditions=conditions,
        cmap_insert_depths=insert_depths,
        cmap_insert_filter=filters,
    )


def _build_steps(
    pattern: Pattern,
    order: Tuple[int, ...],
    ca_sets: Sequence[Tuple[int, ...]],
    conditions: Sequence[Tuple[int, int]],
    *,
    induced: bool,
) -> List[VertexStep]:
    k = pattern.num_vertices
    steps: List[VertexStep] = []
    for depth in range(1, k):
        ca = ca_sets[depth]
        if not ca:
            raise CompileError(
                f"vertex at depth {depth} has no connected ancestor"
            )
        # Iterate the most recently matched connected ancestor's list;
        # the rest become c-map/SIU connectivity checks (Listing 1 shape).
        extender = max(ca)
        connected = tuple(j for j in ca if j != extender)
        disconnected: Tuple[int, ...] = ()
        if induced:
            disconnected = tuple(
                j for j in range(depth) if j not in ca
            )
        upper = tuple(
            sorted(a for a, b in conditions if b == depth)
        )
        steps.append(
            VertexStep(
                depth=depth,
                extender=extender,
                connected=connected,
                disconnected=disconnected,
                upper_bounds=upper,
                label=pattern.label(order[depth]),
            )
        )
    return steps


def compile_multi(
    patterns: Sequence[Pattern], *, induced: bool = True
) -> MultiPlan:
    """Compile several same-size patterns into a merged dependency tree.

    Each pattern is compiled independently, then the step chains are
    merged from the root: two chains share a node while their steps are
    identical (same extender, constraints, and bounds).  Children of a
    node are explored sequentially by the engine, like the emb31/emb32
    branches of Listing 2.
    """
    if not patterns:
        raise CompileError("need at least one pattern")
    sizes = {p.num_vertices for p in patterns}
    if len(sizes) != 1:
        raise CompileError("multi-pattern plans need same-size patterns")
    if any(p.is_labeled for p in patterns):
        raise CompileError(
            "multi-pattern plans do not support labeled patterns; "
            "compile them individually"
        )

    plans = [compile_pattern(p, induced=induced, use_orientation=False)
             for p in patterns]

    root = PlanNode(step=None)
    for index, plan in enumerate(plans):
        node = root
        for step in plan.steps:
            match = next(
                (c for c in node.children if c.step == step), None
            )
            if match is None:
                match = PlanNode(step=step)
                node.children.append(match)
            node = match
        if node.pattern_index is not None:
            raise CompileError(
                "two patterns compiled to identical plans; are they "
                "duplicates?"
            )
        node.pattern_index = index

    insert_depths = sorted(
        {d for plan in plans for d in plan.cmap_insert_depths}
    )
    return MultiPlan(
        patterns=tuple(patterns),
        root=root,
        induced=induced,
        cmap_insert_depths=tuple(insert_depths),
    )


def compile_motifs(k: int) -> MultiPlan:
    """Compile the k-MC problem: all connected k-vertex motifs at once."""
    return compile_multi(enumerate_motifs(k), induced=True)
