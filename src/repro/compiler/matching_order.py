"""Matching-order generation (paper §II-B, Fig. 5).

A matching order is a permutation of the pattern vertices such that every
vertex after the first is connected to at least one earlier vertex.  The
analyzer enumerates all such *connected orders* and scores them with the
density-first rule the paper attributes to DUALSIM [49]: prefer orders
whose prefixes contain more edges, compared lexicographically from the
front.  For the diamond this picks the triangle-first order over the
wedge-first one — "the number of triangles is much fewer than the number
of wedges in a sparse graph".
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import CompileError
from ..patterns import Pattern

__all__ = [
    "enumerate_matching_orders",
    "score_matching_order",
    "choose_matching_order",
    "connected_ancestors",
]


def enumerate_matching_orders(pattern: Pattern) -> List[Tuple[int, ...]]:
    """All connected permutations of the pattern vertices.

    Raises :class:`CompileError` for disconnected patterns, which have no
    connected order covering every vertex.
    """
    if not pattern.is_connected():
        raise CompileError("pattern must be connected")
    n = pattern.num_vertices
    orders: List[Tuple[int, ...]] = []

    def backtrack(prefix: List[int], used: set) -> None:
        if len(prefix) == n:
            orders.append(tuple(prefix))
            return
        for v in pattern.vertices():
            if v in used:
                continue
            if prefix and not (pattern.neighbors(v) & used):
                continue
            prefix.append(v)
            used.add(v)
            backtrack(prefix, used)
            prefix.pop()
            used.remove(v)

    backtrack([], set())
    return orders


def score_matching_order(
    pattern: Pattern, order: Sequence[int]
) -> Tuple[int, ...]:
    """Prefix edge-count vector; lexicographically larger is better.

    Entry i is the number of pattern edges inside ``order[: i + 1]``.
    A triangle-first diamond order scores (0, 1, 3, 5); the wedge-first
    one scores (0, 1, 2, 5) and loses at position 2.
    """
    score = []
    edges = 0
    placed: set = set()
    for v in order:
        edges += len(pattern.neighbors(v) & placed)
        placed.add(v)
        score.append(edges)
    return tuple(score)


def _bound_tightness(pattern: Pattern, order: Sequence[int]) -> Tuple[int, ...]:
    """Secondary score: how early and tightly symmetry bounds bind.

    For each depth, the tightness of its vid upper bound is the bound's
    depth + 1 (bounds on recently matched vertices are tighter, since
    symmetry chains decrease), or 0 when unbounded.  Comparing these
    vectors lexicographically prefers orders that prune near the root of
    the search tree — this is what separates the paper's wedge-shaped
    4-cycle order (Listing 1) from the equal-density path order, and it
    is worth 2-4x in explored tree size on power-law graphs.
    """
    from .symmetry import symmetry_conditions  # local: avoid cycle

    conditions = symmetry_conditions(pattern, order)
    tightness = [0] * pattern.num_vertices
    for a, b in conditions:
        tightness[b] = max(tightness[b], a + 1)
    return tuple(tightness[1:])


def choose_matching_order(pattern: Pattern) -> Tuple[int, ...]:
    """Pick the best matching order deterministically.

    Primary key: prefix-density score (denser prefixes prune more).
    Ties break by symmetry-bound tightness (earlier, tighter bounds
    shrink the tree further), then by the permutation itself so the
    result is stable across runs.
    """
    if pattern.is_clique():
        # Every order of a clique is equivalent (full symmetry); skip
        # the k! enumeration that large k-CL patterns would otherwise
        # trigger.
        return tuple(pattern.vertices())
    orders = enumerate_matching_orders(pattern)
    best_density = max(score_matching_order(pattern, o) for o in orders)
    finalists = [
        o for o in orders if score_matching_order(pattern, o) == best_density
    ]
    return max(
        finalists,
        key=lambda order: (
            _bound_tightness(pattern, order),
            tuple(-v for v in order),
        ),
    )


def connected_ancestors(
    pattern: Pattern, order: Sequence[int]
) -> List[Tuple[int, ...]]:
    """CA sets per depth, as depths into the embedding (paper §II-B).

    ``result[d]`` lists the depths ``j < d`` whose pattern vertex is
    adjacent to the pattern vertex matched at depth d.  ``result[0]`` is
    always empty.
    """
    position = {v: d for d, v in enumerate(order)}
    result: List[Tuple[int, ...]] = []
    for d, v in enumerate(order):
        ca = sorted(
            position[w] for w in pattern.neighbors(v) if position[w] < d
        )
        result.append(tuple(ca))
    return result
