"""Search-tree cardinality estimation and data-aware order selection.

The paper's analyzer picks matching orders with static rules ("the
number of triangles is much fewer than the number of wedges in a sparse
graph", §II-B, following [49]).  This module provides the quantitative
version: closed-form per-level cardinality estimates from cheap data
graph statistics, an exact sampled measurement for validation, and a
``choose_matching_order_for_graph`` that ranks candidate orders by
estimated cost on the *actual* input — a data-aware extension of the
static rule.

Estimation model (documented, deliberately simple):

* a bare-adjacency step multiplies the level size by the mean degree of
  an endpoint reached by an edge (``E[d^2]/E[d]`` — the size-biased
  degree, which is what following an edge samples on power-law graphs);
* every additional connectivity constraint multiplies by the edge
  closing probability ``p ≈ E[d]/n`` scaled by the graph's observed
  triangle closure (transitivity) for the first constraint;
* every vid upper bound halves the candidates (uniform-id assumption);
* disconnected constraints keep ``(1 - p)`` of candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graph import CSRGraph
from ..patterns import Pattern
from .matching_order import enumerate_matching_orders
from .plan import ExecutionPlan, VertexStep

__all__ = [
    "GraphProfile",
    "LevelEstimate",
    "estimate_plan",
    "measure_levels",
    "choose_matching_order_for_graph",
]


@dataclass(frozen=True)
class GraphProfile:
    """The statistics the estimator needs, computed once per graph."""

    num_vertices: int
    mean_degree: float
    size_biased_degree: float
    transitivity: float

    @classmethod
    def of(cls, graph: CSRGraph, *, sample: int = 400) -> "GraphProfile":
        degrees = graph.degrees().astype(np.float64)
        n = graph.num_vertices
        mean = float(degrees.mean()) if n else 0.0
        biased = (
            float((degrees ** 2).mean() / max(degrees.mean(), 1e-9))
            if n
            else 0.0
        )
        return cls(
            num_vertices=n,
            mean_degree=mean,
            size_biased_degree=biased,
            transitivity=_sampled_transitivity(graph, sample),
        )


def _sampled_transitivity(graph: CSRGraph, sample: int) -> float:
    """Fraction of sampled wedges that close into triangles."""
    rng = np.random.default_rng(12345)
    candidates = [
        v for v in range(graph.num_vertices) if graph.degree(v) >= 2
    ]
    if not candidates:
        return 0.0
    closed = 0
    total = 0
    for _ in range(sample):
        v = int(rng.choice(candidates))
        nbrs = graph.neighbors(v)
        i, j = rng.choice(len(nbrs), size=2, replace=False)
        total += 1
        if graph.has_edge(int(nbrs[i]), int(nbrs[j])):
            closed += 1
    return closed / total if total else 0.0


@dataclass(frozen=True)
class LevelEstimate:
    """Estimated tree width and scan volume for one level."""

    depth: int
    nodes: float
    candidates_scanned: float


def estimate_plan(
    plan: ExecutionPlan,
    graph: CSRGraph,
    *,
    profile: Optional[GraphProfile] = None,
) -> List[LevelEstimate]:
    """Closed-form per-level estimates for a plan on a graph."""
    p = profile or GraphProfile.of(graph)
    n = max(p.num_vertices, 1)
    edge_prob = min(p.mean_degree / n, 1.0)

    levels = [LevelEstimate(depth=0, nodes=float(n), candidates_scanned=0.0)]
    nodes = float(n)
    for step in plan.steps:
        base = p.size_biased_degree if step.depth > 1 else p.mean_degree
        survivors = base
        for rank in range(len(step.connected)):
            # The first closure benefits from triangle correlation;
            # further ones approach the independent-edge probability.
            factor = (
                max(p.transitivity, edge_prob)
                if rank == 0
                else edge_prob * 3.0
            )
            survivors *= min(factor, 1.0)
        for _ in step.disconnected:
            survivors *= max(1.0 - edge_prob, 0.0)
        if step.upper_bounds:
            survivors *= 0.5 ** len(step.upper_bounds)
        scanned = nodes * base
        nodes *= survivors
        levels.append(
            LevelEstimate(
                depth=step.depth, nodes=nodes, candidates_scanned=scanned
            )
        )
    return levels


def measure_levels(
    plan: ExecutionPlan,
    graph: CSRGraph,
    *,
    sample_roots: Optional[int] = None,
    seed: int = 0,
) -> List[LevelEstimate]:
    """Exact (or root-sampled) per-level tree sizes, for validation."""
    from ..engine import PatternAwareEngine

    roots: Sequence[int]
    scale = 1.0
    if sample_roots is not None and sample_roots < graph.num_vertices:
        rng = np.random.default_rng(seed)
        roots = rng.choice(
            graph.num_vertices, size=sample_roots, replace=False
        ).tolist()
        scale = graph.num_vertices / sample_roots
    else:
        roots = list(graph.vertices())

    counts = [0.0] * plan.num_levels
    scans = [0.0] * plan.num_levels

    class _Probe(PatternAwareEngine):
        # The probe measures by observing every level's candidate list,
        # so the count-only leaf shortcut must stay off.
        supports_leaf_counting = False

        def _filtered_candidates(
            self, step: VertexStep, emb: Sequence[int]
        ) -> np.ndarray:
            cands = super()._filtered_candidates(step, emb)
            counts[step.depth] += len(cands)
            scans[step.depth] += len(self._raw_stack[step.depth])
            return cands

    probe = _Probe(graph, plan)
    probe.run(roots=roots)
    counts[0] = len(roots)
    return [
        LevelEstimate(
            depth=d, nodes=counts[d] * scale, candidates_scanned=scans[d] * scale
        )
        for d in range(plan.num_levels)
    ]


def choose_matching_order_for_graph(
    pattern: Pattern, graph: CSRGraph
) -> Tuple[int, ...]:
    """Data-aware order selection: minimize estimated scan volume.

    Evaluates every connected order of the pattern against the graph's
    profile and returns the cheapest.  Falls back to the static choice
    for cliques (all orders equivalent).
    """
    from .compiler import compile_pattern

    if pattern.is_clique():
        return tuple(pattern.vertices())
    profile = GraphProfile.of(graph)
    best_order = None
    best_cost = float("inf")
    for order in enumerate_matching_orders(pattern):
        plan = compile_pattern(
            pattern, use_orientation=False, matching_order=order
        )
        cost = sum(
            level.candidates_scanned
            for level in estimate_plan(plan, graph, profile=profile)
        )
        if cost < best_cost:
            best_cost = cost
            best_order = order
    return best_order