"""Empirical execution-plan validation.

Hand-written IR (or a modified plan) can silently violate the two GPM
guarantees — *completeness* (every match found) and *uniqueness* (each
found once, §II-A).  ``validate_plan`` checks a plan empirically: it
executes the plan on randomized small graphs and compares against the
brute-force ground truth, reporting the first counterexample graph on
failure.

This is the library analogue of the paper's implicit contract between
the compiler and the hardware: the hardware trusts the plan blindly, so
anything that produces plans should be able to prove them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..graph import CSRGraph
from .plan import ExecutionPlan

__all__ = ["PlanValidation", "validate_plan"]


@dataclass(frozen=True)
class PlanValidation:
    """Outcome of a static + empirical plan check."""

    ok: bool
    trials: int
    failure_graph: Optional[CSRGraph] = None
    expected: Optional[int] = None
    actual: Optional[int] = None
    #: Rendered FM1xx findings from the static verifier; when non-empty
    #: the empirical trials were skipped (``trials == 0``).
    static_findings: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.ok

    def message(self) -> str:
        if self.static_findings:
            return "plan INVALID (static): " + "; ".join(
                self.static_findings
            )
        if self.ok:
            return f"plan validated on {self.trials} random graphs"
        return (
            f"plan INVALID: on {self.failure_graph!r} expected "
            f"{self.expected} matches, plan found {self.actual}"
        )


def validate_plan(
    plan: ExecutionPlan,
    *,
    trials: int = 20,
    max_vertices: int = 12,
    seed: int = 0,
    static: bool = True,
) -> PlanValidation:
    """Check completeness + uniqueness on randomized small graphs.

    Labeled plans are validated against labeled random graphs drawn over
    the label alphabet the pattern uses.  Ground truth comes from the
    compiler-independent ESU oracle (:mod:`repro.verify.oracle`) — the
    same reference the differential verification subsystem trusts.

    The static verifier (:func:`repro.analysis.check_plan`) runs first:
    a plan it rejects is reported without burning trials — and because
    everything it proves, the oracle would eventually catch, a
    static-only failure on a dynamically clean plan is itself a bug the
    differential runner flags (the ``static-dynamic`` invariant).
    """
    from ..analysis import check_plan
    from ..engine import PatternAwareEngine
    from ..graph.labels import LabeledGraph
    from ..verify.oracle import oracle_count

    if static:
        report = check_plan(plan)
        if not report.ok:
            return PlanValidation(
                ok=False,
                trials=0,
                static_findings=tuple(str(d) for d in report.errors),
            )

    rng = np.random.default_rng(seed)
    pattern = plan.pattern
    labeled = pattern.is_labeled
    alphabet = sorted(
        {lab for lab in pattern.labels if lab is not None}
    ) or [0]

    for trial in range(trials):
        n = int(rng.integers(pattern.num_vertices, max_vertices + 1))
        density = float(rng.uniform(0.2, 0.6))
        mask = rng.random((n, n)) < density
        edges = [
            (u, v) for u in range(n) for v in range(u + 1, n) if mask[u, v]
        ]
        graph: CSRGraph = CSRGraph.from_edges(edges, num_vertices=n)
        if labeled:
            # Bias toward the pattern's own alphabet so matches exist.
            labels = rng.choice(
                alphabet + [max(alphabet) + 1], size=n
            )
            graph = LabeledGraph(graph, labels)

        expected = oracle_count(
            graph, pattern, induced=plan.induced
        )
        actual = PatternAwareEngine(graph, plan).run().counts[0]
        if actual != expected:
            return PlanValidation(
                ok=False,
                trials=trial + 1,
                failure_graph=graph if not labeled else graph.graph,
                expected=expected,
                actual=actual,
            )
    return PlanValidation(ok=True, trials=trials)
