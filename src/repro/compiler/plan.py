"""Execution plan data model (paper §V).

An execution plan is what the FlexMiner compiler hands to the hardware:
for each search-tree level it says which embedding vertex to extend, how
to prune candidates (vid upper bound from the symmetry order plus
connectivity constraints from the matching order), and how to manage the
on-chip memories (frontier-list memoization and c-map insertion hints).

Single-pattern problems use a :class:`ExecutionPlan` (a chain of
:class:`VertexStep`).  Multi-pattern problems (k-MC) use a
:class:`MultiPlan` whose steps form a dependency *tree* with common
prefixes merged (paper §V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CompileError
from ..patterns import Pattern

__all__ = ["VertexStep", "ExecutionPlan", "PlanNode", "MultiPlan"]


@dataclass(frozen=True)
class VertexStep:
    """How to extend the embedding by one vertex at a given depth.

    Mirrors one line of the IR vertex section, e.g. for the 4-cycle's
    last step ``v3 ∈ v2.N pruneBy(v0.id, {v1})``:

    * ``extender = 2`` — iterate the neighbor list of the embedding
      vertex at depth 2;
    * ``upper_bounds = (0,)`` — candidate vid must be below the depth-0
      vertex's id (symmetry order);
    * ``connected = (1,)`` — candidate must also be adjacent to the
      depth-1 vertex (matching order; checked via c-map or SIU).

    All ancestor references are *depths* into the current embedding, not
    pattern vertex ids.
    """

    depth: int
    extender: int
    connected: Tuple[int, ...] = ()
    disconnected: Tuple[int, ...] = ()
    upper_bounds: Tuple[int, ...] = ()
    #: Frontier-list composition (§V-C): depth of the earlier step whose
    #: memoized raw candidate list this step starts from.  The diamond's
    #: last step has ``base_step = 2`` with empty remainders (pure reuse);
    #: a k-clique's step d has ``base_step = d-1`` and intersects the
    #: parent frontier with one more adjacency list, exactly like
    #: GraphZero's generated ``S2 = S1 ∩ N(v1)`` code.
    base_step: Optional[int] = None
    #: Constraints left to apply on top of the base frontier.
    extra_connected: Tuple[int, ...] = ()
    extra_disconnected: Tuple[int, ...] = ()
    #: True when a later step uses this step's raw list as its base, so
    #: the hardware must keep it in the frontier-list table.
    memoize_frontier: bool = False
    #: Vertex-label constraint for candidates at this step (labeled
    #: mining); None accepts any label.
    label: Optional[int] = None
    #: Derived in ``__post_init__`` (never pass it): the connected set
    #: spans every ancestor depth, so the injectivity filter is a no-op.
    covers_all_ancestors: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise CompileError("steps start at depth 1")
        refs = (
            (self.extender,)
            + self.connected
            + self.disconnected
            + self.upper_bounds
        )
        for r in refs:
            if not 0 <= r < self.depth:
                raise CompileError(
                    f"step at depth {self.depth} references depth {r}"
                )
        if self.extender in self.connected:
            raise CompileError("extender is implicitly connected")
        if set(self.connected) & set(self.disconnected):
            raise CompileError("a depth cannot be both connected and not")
        if self.base_step is not None:
            if not 0 < self.base_step < self.depth:
                raise CompileError("base_step must be an earlier step depth")
            extras = set(self.extra_connected) | set(self.extra_disconnected)
            full = set(self.full_connected) | set(self.disconnected)
            if not extras <= full:
                raise CompileError("remainders must be step constraints")
        elif self.extra_connected or self.extra_disconnected:
            raise CompileError("remainders require a base_step")
        # Precomputed (the engines test this per candidate list): when
        # the connected set spans every ancestor depth, no embedding
        # vertex can be a candidate (no vertex neighbors itself), so the
        # injectivity filter is a no-op and the engine skips it.
        object.__setattr__(
            self,
            "covers_all_ancestors",
            len(self.full_connected) == self.depth,
        )

    @property
    def full_connected(self) -> Tuple[int, ...]:
        """Connected-ancestor set including the extender (CA of §II-B)."""
        return tuple(sorted(set(self.connected) | {self.extender}))


@dataclass(frozen=True)
class ExecutionPlan:
    """A complete single-pattern execution plan.

    Attributes
    ----------
    pattern:
        The pattern being mined.
    matching_order:
        ``matching_order[d]`` is the pattern vertex matched at depth d.
    steps:
        One :class:`VertexStep` per depth ``1..k-1``.
    induced:
        Vertex-induced semantics (k-MC) vs edge-induced (SL, cliques).
    oriented:
        True when the k-clique orientation optimization applies: the
        engine must run on the degree-ordered DAG and the symmetry bounds
        are already cleared (§V-C).
    symmetry_conditions:
        The raw partial order as (earlier_depth, later_depth) pairs
        meaning ``v[later] < v[earlier]``; kept for reporting/validation
        (each pair also appears as an upper bound on the later step).
    cmap_insert_depths:
        Depths whose new vertex's neighbors should be inserted into the
        c-map (only ancestors whose connectivity is later consumed, §VI-B).
    cmap_insert_filter:
        For each insert depth, an optional depth whose current vertex id
        upper-bounds the inserted neighbor ids (the paper's "prevent any
        v1 neighbor with VID larger than v0 from being inserted").
    """

    pattern: Pattern
    matching_order: Tuple[int, ...]
    steps: Tuple[VertexStep, ...]
    induced: bool = False
    oriented: bool = False
    #: Label constraint on the root (depth-0) vertex, for labeled mining.
    root_label: Optional[int] = None
    symmetry_conditions: Tuple[Tuple[int, int], ...] = ()
    cmap_insert_depths: Tuple[int, ...] = ()
    cmap_insert_filter: Dict[int, Optional[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        k = self.pattern.num_vertices
        if sorted(self.matching_order) != list(range(k)):
            raise CompileError("matching_order must permute pattern vertices")
        if len(self.steps) != k - 1:
            raise CompileError(f"expected {k - 1} steps, got {len(self.steps)}")
        for d, step in enumerate(self.steps, start=1):
            if step.depth != d:
                raise CompileError("steps must be ordered by depth")

    @property
    def num_levels(self) -> int:
        return self.pattern.num_vertices

    def step_at(self, depth: int) -> VertexStep:
        return self.steps[depth - 1]

    def without_cmap(self) -> "ExecutionPlan":
        """Variant with c-map memoization disabled (no-cmap baseline)."""
        return replace(self, cmap_insert_depths=(), cmap_insert_filter={})


@dataclass
class PlanNode:
    """One node of a multi-pattern dependency tree (paper Fig. 11/Listing 2).

    ``pattern_index`` is set on the node that *completes* a pattern; the
    engine bumps that pattern's counter whenever the embedding reaches
    this node with all constraints satisfied.  Children are explored
    sequentially, exactly like the emb31/emb32 branches in Listing 2.
    """

    step: Optional[VertexStep]  # None only at the root (depth 0)
    children: List["PlanNode"] = field(default_factory=list)
    pattern_index: Optional[int] = None

    @property
    def depth(self) -> int:
        return 0 if self.step is None else self.step.depth


@dataclass
class MultiPlan:
    """Execution plan for mining several patterns simultaneously."""

    patterns: Tuple[Pattern, ...]
    root: PlanNode
    induced: bool = True
    cmap_insert_depths: Tuple[int, ...] = ()

    @property
    def num_patterns(self) -> int:
        return len(self.patterns)

    def max_depth(self) -> int:
        def walk(node: PlanNode) -> int:
            return max([node.depth] + [walk(c) for c in node.children])

        return walk(self.root)

    def leaf_count(self) -> int:
        def walk(node: PlanNode) -> int:
            own = 1 if node.pattern_index is not None else 0
            return own + sum(walk(c) for c in node.children)

        return walk(self.root)

    def node_count(self) -> int:
        def walk(node: PlanNode) -> int:
            return 1 + sum(walk(c) for c in node.children)

        return walk(self.root)
