"""Area/frequency model (paper §VII-A).

The paper prototypes one PE in Bluespec, synthesizes it with Silvaco's
15 nm Open-Cell Library at 0.8 V / 1.3 GHz, and estimates SRAM area with
CACTI (22 nm node).  The reported constants: a PE with 32 kB private
cache and 8 kB scratchpad takes 0.18 mm²; a Skylake core with 1 MB L2 is
~15 mm² at ~4 GHz.  This module reproduces those comparisons with a
simple constant-per-component model — enough to regenerate the
"64 PEs ≈ one CPU core of area at one third the clock" claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import FlexMinerConfig

__all__ = ["AreaModel", "PE_AREA_MM2", "SKYLAKE_CORE_AREA_MM2",
           "SKYLAKE_FREQ_GHZ"]

#: Paper-reported constants.
PE_AREA_MM2 = 0.18
PE_REFERENCE_SRAM_BYTES = 32 * 1024 + 8 * 1024
SKYLAKE_CORE_AREA_MM2 = 15.0
SKYLAKE_FREQ_GHZ = 4.0

#: CACTI-style density for the 22 nm estimates the paper used, derived
#: from the reported PE breakdown (SRAM dominates the PE tile).
SRAM_MM2_PER_KB = 0.0035
PE_LOGIC_MM2 = PE_AREA_MM2 - PE_REFERENCE_SRAM_BYTES / 1024 * SRAM_MM2_PER_KB


@dataclass(frozen=True)
class AreaModel:
    """Area estimates for a FlexMiner configuration."""

    config: FlexMinerConfig

    @property
    def pe_area_mm2(self) -> float:
        """One PE: fixed logic plus its SRAM (private cache + c-map)."""
        sram_kb = (
            self.config.private_cache_bytes + self.config.cmap_bytes
        ) / 1024
        return PE_LOGIC_MM2 + sram_kb * SRAM_MM2_PER_KB

    @property
    def total_pe_area_mm2(self) -> float:
        return self.pe_area_mm2 * self.config.num_pes

    @property
    def skylake_core_equivalents(self) -> float:
        """How many Skylake cores the PE array's area equals."""
        return self.total_pe_area_mm2 / SKYLAKE_CORE_AREA_MM2

    @property
    def clock_ratio_vs_cpu(self) -> float:
        return self.config.pe_freq_ghz / SKYLAKE_FREQ_GHZ

    def summary(self) -> str:
        return (
            f"PE area: {self.pe_area_mm2:.3f} mm2, "
            f"{self.config.num_pes} PEs: {self.total_pe_area_mm2:.2f} mm2 "
            f"({self.skylake_core_equivalents:.2f} Skylake cores), "
            f"clock {self.config.pe_freq_ghz:.1f} GHz "
            f"({self.clock_ratio_vs_cpu:.2f}x CPU)"
        )
