"""Top-level FlexMiner accelerator simulation (paper Fig. 8).

``FlexMinerAccelerator`` wires the pieces together: it loads the
execution plan (the software/hardware interface of §V), instantiates the
PEs with their private caches and c-maps, the shared L2, the NoC and the
DRAM model, and drives the dynamic scheduler.  ``simulate`` is the
one-call convenience wrapper used by the apps and benches.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..compiler.plan import ExecutionPlan, MultiPlan
from ..errors import SimulationError
from ..graph import CSRGraph, orient_by_degree
from ..obs import NULL_PROFILER, NULL_REGISTRY, NULL_TRACER
from ..obs.trace import SIM_PID
from .config import FlexMinerConfig
from .mem import MemorySystem
from .pe import ProcessingElement
from .report import SimReport
from .scheduler import Scheduler

__all__ = [
    "FlexMinerAccelerator",
    "build_report",
    "filter_roots",
    "simulate",
]


def filter_roots(plan, graph, work_graph, roots):
    """Apply the plan's root-label constraint to the task roots.

    Returns ``roots`` unchanged for unlabeled plans; otherwise the
    filtered explicit root list.  Shared by the serial accelerator and
    the parallel sweep runner so both schedule identical task sets.
    """
    root_label = getattr(plan, "root_label", None)
    if root_label is None:
        return roots
    labels = graph.labels  # engine init validated presence
    candidates = roots if roots is not None else work_graph.vertices()
    return [v for v in candidates if int(labels[int(v)]) == root_label]


def build_report(
    pes, memsys, config: FlexMinerConfig, num_patterns: int, makespan: float
) -> SimReport:
    """Aggregate per-PE and memory-system state into a :class:`SimReport`.

    ``pes`` only needs the PE result surface (``counts``, ``stats``,
    ``private``, ``cmap``, ``time``), so the parallel runner's replay
    PEs aggregate through the same code path as the serial simulator.
    """
    counts = [0] * num_patterns
    busy = stall = 0.0
    # Unit breakdowns are integer-exact (see PEStats): keep them int so
    # serial and trace/replay aggregation agree bit for bit.
    pruner = setop = cmap_cycles = 0
    private_hits = private_misses = 0
    cmap_reads = cmap_writes = cmap_over = fallbacks = 0
    frontier_reads = 0
    tasks = 0
    per_pe = []
    for pe in pes:
        for i, c in enumerate(pe.counts):
            counts[i] += c
        busy += pe.stats.busy_cycles
        stall += pe.stats.stall_cycles
        pruner += pe.stats.pruner_cycles
        setop += pe.stats.setop_cycles
        cmap_cycles += pe.stats.cmap_cycles
        private_hits += pe.private.stats.hits
        private_misses += pe.private.stats.misses
        frontier_reads += pe.stats.frontier_reads
        fallbacks += pe.stats.cmap_fallbacks
        tasks += pe.stats.tasks
        per_pe.append(pe.time)
        if pe.cmap is not None:
            cmap_reads += pe.cmap.stats.reads
            cmap_writes += pe.cmap.stats.writes
            cmap_over += pe.cmap.stats.overflows

    seconds = makespan / (config.pe_freq_ghz * 1e9)
    return SimReport(
        counts=tuple(counts),
        cycles=makespan,
        seconds=seconds,
        num_pes=config.num_pes,
        busy_cycles=busy,
        stall_cycles=stall,
        pruner_cycles=pruner,
        setop_cycles=setop,
        cmap_cycles=cmap_cycles,
        noc_requests=memsys.noc.stats.requests,
        dram_accesses=memsys.dram.stats.accesses,
        l2_hits=memsys.l2.stats.hits,
        l2_misses=memsys.l2.stats.misses,
        private_hits=private_hits,
        private_misses=private_misses,
        cmap_reads=cmap_reads,
        cmap_writes=cmap_writes,
        cmap_overflows=cmap_over,
        cmap_fallbacks=fallbacks,
        frontier_reads=frontier_reads,
        tasks=tasks,
        per_pe_cycles=per_pe,
        extras={
            "noc_queue_cycles": memsys.noc.stats.queue_cycles,
            "dram_queue_cycles": memsys.dram.stats.queue_cycles,
            "dram_row_hit_rate": memsys.dram.stats.row_hit_rate,
        },
    )


class FlexMinerAccelerator:
    """A configured FlexMiner instance bound to one graph and plan.

    ``tracer`` (a :class:`repro.obs.Tracer`) records the simulation in
    Chrome trace-event form: one trace thread per PE with task/stall/
    set-op/c-map intervals in the cycle domain, plus sampled NoC/DRAM/L2
    counter tracks.  ``metrics`` (a :class:`repro.obs.MetricsRegistry`)
    receives the final report under ``sim.*`` gauges.  ``profiler`` (a
    :class:`repro.obs.PhaseProfiler`) attributes the wall-clock cost of
    the setup and simulate phases.  All default to no-ops; enabling
    them never changes counts, cycles or counters.
    """

    def __init__(
        self,
        graph: CSRGraph,
        plan,
        config: Optional[FlexMinerConfig] = None,
        *,
        tracer=None,
        metrics=None,
        profiler=None,
    ) -> None:
        if not isinstance(plan, (ExecutionPlan, MultiPlan)):
            raise SimulationError("plan must be an ExecutionPlan or MultiPlan")
        self.graph = graph
        self.plan = plan
        self.config = config or FlexMinerConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.profiler = (
            profiler if profiler is not None else NULL_PROFILER
        )
        with self.profiler.phase(
            "sim-setup", pes=self.config.num_pes
        ):
            oriented = isinstance(plan, ExecutionPlan) and plan.oriented
            self._work_graph = (
                orient_by_degree(graph) if oriented else graph
            )
            self.memsys = MemorySystem(self.config, graph)
            self.pes = [
                ProcessingElement(
                    i,
                    graph,
                    plan,
                    self.config,
                    self.memsys,
                    work_graph=self._work_graph,
                    tracer=self.tracer,
                )
                for i in range(self.config.num_pes)
            ]
            self.scheduler = Scheduler(self.pes)
        if self.tracer.enabled:
            self.memsys.attach_tracer(self.tracer)
            self.tracer.process_name(
                "FlexMiner accelerator (ts = PE cycles)", pid=SIM_PID
            )
            for pe in self.pes:
                self.tracer.thread_name(
                    f"PE {pe.pe_id}", pid=SIM_PID, tid=pe.pe_id
                )
            self.tracer.thread_name(
                "scheduler", pid=SIM_PID, tid=self.config.num_pes
            )

    def run(self, roots: Optional[Iterable[int]] = None) -> SimReport:
        """Simulate mining the whole graph (or the given roots)."""
        split = self.config.task_split_degree
        if split is not None and isinstance(self.plan, MultiPlan):
            raise SimulationError(
                "task splitting requires a single-pattern plan"
            )
        roots = filter_roots(self.plan, self.graph, self._work_graph, roots)
        tasks = Scheduler.order_tasks(
            self._work_graph, roots, split_degree=split
        )
        # One "simulate" span either way: the profiler's phase mirrors
        # into its own tracer when it is enabled.
        if self.profiler.enabled:
            span = self.profiler.phase("simulate", tasks=len(tasks))
        else:
            span = self.tracer.span("simulate", cat="phase")
        with span:
            makespan = self.scheduler.run(tasks)
        if self.tracer.enabled:
            self.tracer.complete(
                "run", 0.0, makespan,
                pid=SIM_PID, tid=self.config.num_pes, cat="phase",
                args={"tasks": self.scheduler.tasks_dispatched},
            )
        report = self._report(makespan)
        self.metrics.absorb(report.as_dict(), prefix="sim.")
        return report

    # ------------------------------------------------------------------
    def _report(self, makespan: float) -> SimReport:
        num_patterns = (
            self.plan.num_patterns
            if isinstance(self.plan, MultiPlan)
            else 1
        )
        return build_report(
            self.pes, self.memsys, self.config, num_patterns, makespan
        )


def simulate(
    graph: CSRGraph,
    plan,
    config: Optional[FlexMinerConfig] = None,
    *,
    roots: Optional[Iterable[int]] = None,
    tracer=None,
    metrics=None,
    profiler=None,
) -> SimReport:
    """Build an accelerator and run one simulation.

    ``tracer``/``metrics``/``profiler`` are optional observability
    sinks (see :class:`FlexMinerAccelerator`); they never affect
    simulated results.
    """
    accel = FlexMinerAccelerator(
        graph, plan, config, tracer=tracer, metrics=metrics,
        profiler=profiler,
    )
    return accel.run(roots)
