"""Parallel accelerator simulation with bit-identical SimReports.

The serial simulator interleaves two very different workloads: the
*functional* search-tree walk (set operations, candidate generation —
the expensive part) and the *timing* application (cache walks, NoC/DRAM
models, cycle charges — cheap but strictly order-dependent, because the
shared L2/NoC/DRAM state and every float accumulation depend on the
global task order).

This module splits them into a classic trace/replay pipeline:

1. **Trace phase (parallel)** — worker processes walk disjoint shards
   of the task list with a :class:`_TracePE`: a real
   :class:`~repro.hw.pe.ProcessingElement` whose timing hooks record
   *events* instead of touching caches.  A task's event stream —
   busy charges, private-cache touches, frontier writes/reads — is
   independent of which PE eventually executes it: the c-map resets per
   task, graph addresses are global, and frontier entries are resolved
   symbolically (by depth) so the replaying PE's bump allocator assigns
   the real addresses.

2. **Replay phase (serial, cheap)** — the recorded streams drive the
   real scheduler heap, per-PE private caches / frontier allocators and
   the shared memory system.  Every charge is applied individually in
   the exact order the serial simulator would apply it, so float
   accumulation order — and therefore every cycle count, stall, queue
   delay and statistic — is preserved bit-for-bit.

``workers=1`` runs trace and replay in-process (no fork) through the
same encode/decode path, which is what the differential harness uses to
pin the machinery against the serial oracle.  Workers mirror the
shared-memory transport of :class:`repro.engine.parallel.ParallelMiner`:
the CSR arrays cross into workers via POSIX shared memory, never a pipe.

Tracing (``repro.obs``) hooks into simulator internals that the trace
phase bypasses, so ``simulate_parallel`` does not accept a tracer;
callers that need a cycle-domain trace run the serial
:func:`repro.hw.simulate`.  It does accept a
:class:`repro.obs.PhaseProfiler`: phases (setup / trace / replay /
merge) are attributed on the parent and — when the profiler carries a
tracer — each trace worker ships its wall-clock span stream back for a
per-worker lane in the merged Chrome trace.  Profiling never changes
the report (tested zero-drift).
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.plan import MultiPlan
from ..errors import SimulationError
from ..graph import (
    CSRGraph,
    LabeledGraph,
    SharedCSRBuffers,
    attach_array,
    attach_shared_csr,
    orient_by_degree,
    share_array,
)
from ..obs import NULL_PROFILER, NULL_REGISTRY
from ..obs.prof import LaneRecorder, task_label
from .accelerator import build_report, filter_roots
from .cache import SetAssocCache
from .cmap import HardwareCMap
from .config import FlexMinerConfig
from .mem import GraphLayout, MemorySystem
from .pe import PEStats, ProcessingElement
from .report import SimReport
from .scheduler import Scheduler, Task

__all__ = ["simulate_parallel"]

# Event codes in the per-task streams.
_EV_BUSY = 0      # (cycles, -)       charge busy cycles
_EV_TOUCH = 1     # (base, size)      private-cache read of a byte range
_EV_FWRITE = 2    # (length, depth)   frontier-list store
_EV_FREAD = 3     # (depth, -)        frontier-list read-back

#: Sentinel base address marking a frontier read in _TracePE's table
#: (real addresses are assigned by the replaying PE's allocator).
_FR_SENTINEL = -1

#: Integer statistic deltas shipped per task (exact under re-grouping).
_PE_STAT_FIELDS = (
    "pruner_cycles",
    "setop_cycles",
    "cmap_cycles",
    "frontier_reads",
    "cmap_fallbacks",
    "cmap_resolved_checks",
    "siu_resolved_checks",
)
_CMAP_STAT_FIELDS = (
    "inserts",
    "updates",
    "queries",
    "deletes",
    "insert_cycles",
    "query_cycles",
    "delete_cycles",
    "overflows",
)


def _task_key(task: Task) -> Tuple:
    return task if isinstance(task, tuple) else (int(task), None, None)


def _task_parts(task: Task) -> Tuple[int, Optional[Tuple[int, int]]]:
    """(root, chunk) view of a scheduler task for span labeling."""
    if isinstance(task, tuple):
        return int(task[0]), (int(task[1]), int(task[2]))
    return int(task), None


class _TracePE(ProcessingElement):
    """A PE whose timing hooks record events instead of applying them.

    The functional walk (and the per-task c-map timing, which resets at
    every task boundary) runs for real; private-cache / memory-system /
    frontier-address state — everything that depends on which PE runs
    the task — is deferred to replay.
    """

    def __init__(self, graph, plan, config, *, work_graph=None) -> None:
        super().__init__(
            0, graph, plan, config, MemorySystem(config, graph),
            work_graph=work_graph,
        )
        self._events: List[Tuple[int, int, int]] = []

    # -- timing hooks: record, don't apply -----------------------------
    def _charge_busy(self, cycles) -> None:
        self._events.append((_EV_BUSY, cycles, 0))

    def _touch(self, base: int, size: int) -> None:
        if base == _FR_SENTINEL:
            self._events.append((_EV_FREAD, size, 0))
        else:
            self._events.append((_EV_TOUCH, base, size))

    def _write_frontier(self, length: int, depth: int) -> None:
        self._events.append((_EV_FWRITE, length, depth))
        # Symbolic entry: replay resolves the spill address; reads via
        # _touch(*entry) become (_FR_SENTINEL, depth) and are re-coded.
        self._frontier_table[depth] = (_FR_SENTINEL, depth)

    # -- per-task tracing ----------------------------------------------
    def trace_task(self, task: Task):
        """Run one task functionally; returns (events, stats, counts).

        Mirrors :meth:`ProcessingElement.execute_task` minus the
        dispatch charge and task counter, which replay applies.
        """
        if isinstance(task, tuple):
            v0, chunk_index, total = task
            chunk: Optional[Tuple[int, int]] = (chunk_index, total)
        else:
            v0, chunk = int(task), None
        if self.cmap is not None:
            self.cmap.reset()
        self._covered.clear()
        self._events = []
        pe_before = [getattr(self.stats, f) for f in _PE_STAT_FIELDS]
        cm_before = (
            [getattr(self.cmap.stats, f) for f in _CMAP_STAT_FIELDS]
            if self.cmap is not None
            else None
        )
        counts_before = list(self._counts)
        self.run_task(int(v0), chunk=chunk)
        deltas = [
            int(getattr(self.stats, f)) - int(b)
            for f, b in zip(_PE_STAT_FIELDS, pe_before)
        ]
        if cm_before is not None:
            deltas += [
                getattr(self.cmap.stats, f) - b
                for f, b in zip(_CMAP_STAT_FIELDS, cm_before)
            ]
        else:
            deltas += [0] * len(_CMAP_STAT_FIELDS)
        counts_delta = [
            c - b for c, b in zip(self._counts, counts_before)
        ]
        return self._events, deltas, counts_delta


class _ShardTrace:
    """Encoded trace of one worker's task shard (fast to pickle).

    Events live in three flat arrays segmented by ``bounds``; integer
    statistic deltas and per-pattern count deltas are one row per task.
    """

    def __init__(self, num_patterns: int) -> None:
        self._codes: List[int] = []
        self._arg_a: List[int] = []
        self._arg_b: List[int] = []
        self._bounds: List[int] = [0]
        self._stats: List[List[int]] = []
        self._counts: List[List[int]] = []
        self.num_patterns = num_patterns

    def add(self, events, deltas, counts_delta) -> None:
        for code, a, b in events:
            self._codes.append(code)
            self._arg_a.append(a)
            self._arg_b.append(b)
        self._bounds.append(len(self._codes))
        self._stats.append(deltas)
        self._counts.append(counts_delta)

    def seal(self) -> None:
        """Convert to numpy for compact transport."""
        self.codes = np.asarray(self._codes, dtype=np.int8)
        self.arg_a = np.asarray(self._arg_a, dtype=np.int64)
        self.arg_b = np.asarray(self._arg_b, dtype=np.int64)
        self.bounds = np.asarray(self._bounds, dtype=np.int64)
        n = len(self._stats)
        width = len(_PE_STAT_FIELDS) + len(_CMAP_STAT_FIELDS)
        self.stats = np.asarray(self._stats, dtype=np.int64).reshape(
            n, width
        )
        self.counts = np.asarray(self._counts, dtype=np.int64).reshape(
            n, self.num_patterns
        )
        del self._codes, self._arg_a, self._arg_b
        del self._bounds, self._stats, self._counts

    def task(self, i: int):
        """Decoded (events, stat deltas, count deltas) of shard task i."""
        lo, hi = int(self.bounds[i]), int(self.bounds[i + 1])
        events = list(
            zip(
                self.codes[lo:hi].tolist(),
                self.arg_a[lo:hi].tolist(),
                self.arg_b[lo:hi].tolist(),
            )
        )
        return events, self.stats[i].tolist(), self.counts[i].tolist()


def _trace_shard(
    tracer_pe: _TracePE,
    tasks: Sequence[Task],
    num_patterns: int,
    rec: Optional[LaneRecorder] = None,
):
    shard = _ShardTrace(num_patterns)
    for task in tasks:
        if rec is not None:
            root, chunk = _task_parts(task)
            with rec.span(task_label(root, chunk), cat="task"):
                shard.add(*tracer_pe.trace_task(task))
        else:
            shard.add(*tracer_pe.trace_task(task))
    shard.seal()
    return shard


def _trace_worker(
    worker_id: int,
    spec,
    labels_spec,
    work_spec,
    plan,
    config: FlexMinerConfig,
    tasks: Sequence[Task],
    num_patterns: int,
    profile: bool,
    result_queue,
) -> None:
    """Worker main: attach shared CSR buffers, trace the shard, report.

    With ``profile`` the shard is accompanied by the worker's recorded
    span stream (shm attach plus one span per traced task); the spans
    are side recordings and never influence the shard itself.
    """
    try:
        rec = LaneRecorder()
        with rec.span("attach-shm"):
            graph = attach_shared_csr(spec)
            if labels_spec is not None:
                labels, handle = attach_array(labels_spec)
                graph._shm = graph._shm + (handle,)
                graph = LabeledGraph(graph, labels)
            work_graph = (
                attach_shared_csr(work_spec)
                if work_spec is not None
                else None
            )
            tracer_pe = _TracePE(
                graph, plan, config, work_graph=work_graph
            )
        shard = _trace_shard(
            tracer_pe, tasks, num_patterns, rec if profile else None
        )
        result_queue.put(
            ("done", worker_id, (shard, rec.spans if profile else None))
        )
    except BaseException:  # pragma: no cover - exercised via error path
        result_queue.put(("error", worker_id, traceback.format_exc()))


class _ReplayPE:
    """Applies recorded event streams with real per-PE and shared state.

    Re-implements exactly the timing surface of
    :class:`~repro.hw.pe.ProcessingElement` — charge order, overlap
    credit, frontier allocation, fast/legacy kernel selection — so the
    resulting floats are bit-identical to the serial simulator's.
    """

    def __init__(
        self,
        pe_id: int,
        config: FlexMinerConfig,
        memsys: MemorySystem,
        num_patterns: int,
        traces: Dict[Tuple, Tuple],
    ) -> None:
        self.pe_id = pe_id
        self.config = config
        self.memsys = memsys
        self.time = 0.0
        self._overlap_credit = 0.0
        self.stats = PEStats()
        self.private = SetAssocCache(
            config.private_cache_bytes,
            config.private_cache_assoc,
            config.line_bytes,
        )
        self.cmap = HardwareCMap.from_config(config)
        self._counts = [0] * num_patterns
        self._traces = traces
        self._fast = config.timing_kernels
        self._frontier_table: Dict[int, Tuple[int, int]] = {}
        base, stride = GraphLayout.frontier_region(pe_id)
        self._frontier_base = base
        self._frontier_limit = base + stride
        self._frontier_ptr = base

    @property
    def counts(self) -> List[int]:
        return self._counts

    # -- identical timing primitives (see ProcessingElement) -----------
    def _charge_busy(self, cycles: float) -> None:
        self.time += cycles
        self.stats.busy_cycles += cycles
        self._overlap_credit += cycles

    def _touch(self, base: int, size: int) -> None:
        if self._fast:
            _, missed = self.private.access_range_batch(base, size)
        else:
            _, missed = self.private.access_range(base, size)
        if missed:
            fetch = (
                self.memsys.fetch_lines_batch
                if self._fast
                else self.memsys.fetch_lines
            )
            latency = fetch(self.pe_id, missed, self.time)
            stall = max(0.0, latency - self._overlap_credit)
            self._overlap_credit = 0.0
            self.time += stall
            self.stats.stall_cycles += stall

    def _write_frontier(self, length: int, depth: int) -> None:
        size = max(4 * length, 4)
        if self._frontier_ptr + size > self._frontier_limit:
            self._frontier_ptr = self._frontier_base
        addr = self._frontier_ptr
        line = self.config.line_bytes
        self._frontier_ptr = (addr + size + line - 1) // line * line
        if self._fast:
            self.private.access_range_batch(addr, size)
            self._charge_busy(
                (addr + size - 1) // line - addr // line + 1
            )
        else:
            lines = self.private.lines_of_range(addr, size)
            for ln in lines:
                self.private.access_line(int(ln))
            self._charge_busy(len(lines))
        self._frontier_table[depth] = (addr, size)

    # -- scheduler entry point ------------------------------------------
    def execute_task(
        self,
        v0: int,
        dispatch_time: float,
        *,
        chunk: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.time = max(self.time, dispatch_time)
        self._charge_busy(self.config.dispatch_cycles)
        self.stats.tasks += 1
        key = (
            (int(v0),) + tuple(chunk)
            if chunk is not None
            else (int(v0), None, None)
        )
        events, deltas, counts_delta = self._traces[key]
        for code, a, b in events:
            if code == _EV_BUSY:
                self._charge_busy(a)
            elif code == _EV_TOUCH:
                self._touch(a, b)
            elif code == _EV_FWRITE:
                self._write_frontier(a, b)
            else:  # _EV_FREAD
                entry = self._frontier_table.get(a)
                if entry is None:  # pragma: no cover - invariant guard
                    raise SimulationError(
                        "frontier read before any write at depth "
                        f"{a} during replay"
                    )
                self._touch(*entry)
        n_pe = len(_PE_STAT_FIELDS)
        for name, delta in zip(_PE_STAT_FIELDS, deltas[:n_pe]):
            setattr(self.stats, name, getattr(self.stats, name) + delta)
        if self.cmap is not None:
            for name, delta in zip(_CMAP_STAT_FIELDS, deltas[n_pe:]):
                setattr(
                    self.cmap.stats,
                    name,
                    getattr(self.cmap.stats, name) + delta,
                )
        for i, c in enumerate(counts_delta):
            self._counts[i] += c


def _fork_context():
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return mp.get_context("spawn")


def _trace_in_processes(
    topology: CSRGraph,
    labels,
    work_graph: Optional[CSRGraph],
    plan,
    config: FlexMinerConfig,
    tasks: Sequence[Task],
    num_patterns: int,
    workers: int,
    profiler=NULL_PROFILER,
) -> List[Tuple[_ShardTrace, Optional[list]]]:
    """Fan the task shards out to worker processes; shards by worker id.

    Returns one ``(shard, spans)`` pair per worker; spans are ``None``
    unless the profiler is enabled.
    """
    ctx = _fork_context()
    shared: List = []
    shards: Dict[int, Tuple[_ShardTrace, Optional[list]]] = {}
    procs = []
    try:
        topo_buffers = SharedCSRBuffers(topology)
        shared.append(topo_buffers)
        labels_spec = None
        if labels is not None:
            shm, labels_spec = share_array(np.asarray(labels))
            shared.append(_OwnedBlock(shm))
        work_spec = None
        if work_graph is not None and work_graph is not topology:
            work_buffers = SharedCSRBuffers(work_graph)
            shared.append(work_buffers)
            work_spec = work_buffers.spec

        result_queue = ctx.Queue()
        with profiler.lane_span("spawn-workers"):
            for worker_id in range(workers):
                proc = ctx.Process(
                    target=_trace_worker,
                    args=(
                        worker_id,
                        topo_buffers.spec,
                        labels_spec,
                        work_spec,
                        plan,
                        config,
                        list(tasks[worker_id::workers]),
                        num_patterns,
                        profiler.enabled,
                        result_queue,
                    ),
                    daemon=True,
                )
                proc.start()
                procs.append(proc)

        with profiler.lane_span("drain-results"):
            while len(shards) < len(procs):
                try:
                    kind, worker_id, payload = result_queue.get(
                        timeout=1.0
                    )
                except Exception:
                    dead = [
                        p for p in procs if p.exitcode not in (0, None)
                    ]
                    if dead:  # pragma: no cover - hard crash path
                        raise RuntimeError(
                            f"{len(dead)} sim trace worker(s) died with "
                            f"exit codes {[p.exitcode for p in dead]}"
                        )
                    continue
                if kind == "error":
                    raise RuntimeError(
                        f"sim trace worker {worker_id} failed:\n{payload}"
                    )
                shards[worker_id] = payload
            for proc in procs:
                proc.join()
    finally:
        for proc in procs:
            if proc.is_alive():  # pragma: no cover - error cleanup
                proc.terminate()
                proc.join()
        # a close() that raises must not strand the unlink or the
        # remaining segments; capture the first error and keep reaping
        failure = None
        for owner in shared:
            try:
                owner.close()
            except BaseException as exc:  # pragma: no cover - cleanup
                if failure is None:
                    failure = exc
            try:
                owner.unlink()
            except BaseException as exc:  # pragma: no cover - cleanup
                if failure is None:
                    failure = exc
        if failure is not None:  # pragma: no cover - cleanup
            raise failure
    return [shards[w] for w in range(workers)]


class _OwnedBlock:
    """Close/unlink adapter for a bare SharedMemory handle."""

    def __init__(self, shm) -> None:
        self._shm = shm

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def simulate_parallel(
    graph: CSRGraph,
    plan,
    config: Optional[FlexMinerConfig] = None,
    *,
    workers: int = 1,
    roots: Optional[Sequence[int]] = None,
    metrics=None,
    profiler=None,
) -> SimReport:
    """Simulate with the trace phase spread over ``workers`` processes.

    The returned :class:`SimReport` is bit-identical to
    :func:`repro.hw.simulate` with the same arguments, for any worker
    count — counts, cycles, per-PE breakdowns, cache/NoC/DRAM counters
    and all derived rates.  ``workers=1`` traces in-process (no fork)
    but still exercises the full encode/replay pipeline.  An enabled
    ``profiler`` attributes the setup/trace/replay/merge phases and, if
    it carries a tracer, emits one wall-clock lane per trace worker;
    the report stays bit-identical either way.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    profiler = profiler if profiler is not None else NULL_PROFILER
    with profiler.phase("setup", workers=workers):
        config = config or FlexMinerConfig()
        metrics = metrics if metrics is not None else NULL_REGISTRY
        split = config.task_split_degree
        if split is not None and isinstance(plan, MultiPlan):
            raise SimulationError(
                "task splitting requires a single-pattern plan"
            )
        num_patterns = (
            plan.num_patterns if isinstance(plan, MultiPlan) else 1
        )
        oriented = not isinstance(plan, MultiPlan) and plan.oriented
        topology = (
            graph.graph if isinstance(graph, LabeledGraph) else graph
        )
        work_graph = orient_by_degree(topology) if oriented else topology
        roots = filter_roots(plan, graph, work_graph, roots)
        tasks = Scheduler.order_tasks(
            work_graph, roots, split_degree=split
        )

    # Phase 1: trace.
    with profiler.phase("trace", tasks=len(tasks), workers=workers):
        if workers == 1 or len(tasks) < 2:
            rec = LaneRecorder()
            with rec.span("attach-shm"):
                tracer_pe = _TracePE(
                    graph, plan, config, work_graph=work_graph
                )
            shards = [
                _trace_shard(
                    tracer_pe, tasks, num_patterns,
                    rec if profiler.enabled else None,
                )
            ]
            shard_tasks = [tasks]
            lanes = [(0, rec.spans if profiler.enabled else None)]
        else:
            labels = getattr(graph, "labels", None)
            payloads = _trace_in_processes(
                topology, labels, work_graph, plan, config, tasks,
                num_patterns, workers, profiler=profiler,
            )
            shards = [shard for shard, _spans in payloads]
            lanes = list(enumerate(spans for _shard, spans in payloads))
            shard_tasks = [tasks[w::workers] for w in range(workers)]
        if profiler.enabled:
            profiler.init_lanes(len(lanes))
            for worker_id, spans in lanes:
                profiler.add_lane(worker_id, spans)

    # Phase 2: replay (serial; identical order to the serial simulator).
    with profiler.phase("replay", tasks=len(tasks)):
        traces: Dict[Tuple, Tuple] = {}
        for shard, assigned in zip(shards, shard_tasks):
            for i, task in enumerate(assigned):
                traces[_task_key(task)] = shard.task(i)
        memsys = MemorySystem(config, topology)
        pes = [
            _ReplayPE(i, config, memsys, num_patterns, traces)
            for i in range(config.num_pes)
        ]
        makespan = Scheduler(pes).run(tasks)

    with profiler.phase("merge"):
        report = build_report(pes, memsys, config, num_patterns, makespan)
        metrics.absorb(report.as_dict(), prefix="sim.")
        metrics.gauge("sim.parallel.workers").set(workers)
        metrics.gauge("sim.parallel.tasks").set(len(tasks))
    return report
