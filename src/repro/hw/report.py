"""Simulation report: the numbers the paper's figures are built from."""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = ["SimReport"]


def _ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Safe ratio: every derived rate treats an empty denominator the
    same way instead of each property hand-rolling its own guard."""
    return numerator / denominator if denominator else default


@dataclass
class SimReport:
    """Aggregated outcome of one accelerator simulation."""

    #: Match count per pattern (identical to the software engines).
    counts: Tuple[int, ...]
    #: Makespan in PE cycles and the wall-clock it implies at pe_freq.
    cycles: float
    seconds: float
    num_pes: int
    #: Aggregate cycle breakdown across PEs.  busy/stall live in the
    #: float cycle domain; the unit breakdowns are integer-exact by
    #: construction (PEStats) and stay ``int`` through aggregation.
    busy_cycles: float
    stall_cycles: float
    pruner_cycles: int
    setop_cycles: int
    cmap_cycles: int
    #: Memory-system event counts.
    noc_requests: int
    dram_accesses: int
    l2_hits: int
    l2_misses: int
    private_hits: int
    private_misses: int
    #: c-map behaviour.
    cmap_reads: int
    cmap_writes: int
    cmap_overflows: int
    cmap_fallbacks: int
    frontier_reads: int
    tasks: int
    #: Per-PE total cycles (load balance analysis, Fig. 15 discussion).
    per_pe_cycles: List[float] = field(default_factory=list)
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def l2_miss_rate(self) -> float:
        return _ratio(self.l2_misses, self.l2_hits + self.l2_misses)

    @property
    def l2_hit_rate(self) -> float:
        return _ratio(self.l2_hits, self.l2_hits + self.l2_misses)

    @property
    def private_hit_rate(self) -> float:
        return _ratio(
            self.private_hits, self.private_hits + self.private_misses
        )

    @property
    def private_miss_rate(self) -> float:
        return _ratio(
            self.private_misses, self.private_hits + self.private_misses
        )

    @property
    def cmap_read_ratio(self) -> float:
        return _ratio(self.cmap_reads, self.cmap_reads + self.cmap_writes)

    @property
    def memory_bound_fraction(self) -> float:
        """Share of aggregate PE time spent stalled on memory."""
        return _ratio(
            self.stall_cycles, self.busy_cycles + self.stall_cycles
        )

    @property
    def load_imbalance(self) -> float:
        """Makespan / mean PE time; 1.0 is perfect balance."""
        if not self.per_pe_cycles:
            return 1.0
        mean = sum(self.per_pe_cycles) / len(self.per_pe_cycles)
        return _ratio(max(self.per_pe_cycles), mean, default=1.0)

    def speedup_over(self, baseline_seconds: float) -> float:
        return _ratio(baseline_seconds, self.seconds)

    #: Derived properties included in the machine-readable export.
    DERIVED = (
        "total",
        "l2_miss_rate",
        "l2_hit_rate",
        "private_hit_rate",
        "private_miss_rate",
        "cmap_read_ratio",
        "memory_bound_fraction",
        "load_imbalance",
    )

    # ------------------------------------------------------------------
    # Machine-readable export (repro.obs run-report payload)
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-able payload: every field plus the derived rates."""
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            elif isinstance(value, dict):
                value = dict(value)
            elif isinstance(value, list):
                value = list(value)
            out[f.name] = value
        out["derived"] = {name: getattr(self, name) for name in self.DERIVED}
        return out

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SimReport":
        """Rebuild a report from :meth:`as_dict` output (``derived`` is
        recomputed, not trusted)."""
        kwargs = {
            f.name: data[f.name] for f in fields(cls) if f.name in data
        }
        kwargs["counts"] = tuple(kwargs["counts"])
        return cls(**kwargs)

    def summary(self) -> str:
        lines = [
            f"matches      : {self.total}",
            f"PEs          : {self.num_pes}",
            f"cycles       : {self.cycles:.0f}",
            f"time         : {self.seconds * 1e3:.3f} ms",
            f"mem-bound    : {self.memory_bound_fraction * 100:.1f}%",
            f"NoC requests : {self.noc_requests}",
            f"DRAM accesses: {self.dram_accesses}",
            f"L2 miss rate : {self.l2_miss_rate * 100:.1f}%",
            f"c-map r/w    : {self.cmap_reads}/{self.cmap_writes}"
            f" (overflows {self.cmap_overflows})",
            f"imbalance    : {self.load_imbalance:.2f}",
        ]
        return "\n".join(lines)
