"""Simulation report: the numbers the paper's figures are built from."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["SimReport"]


@dataclass
class SimReport:
    """Aggregated outcome of one accelerator simulation."""

    #: Match count per pattern (identical to the software engines).
    counts: Tuple[int, ...]
    #: Makespan in PE cycles and the wall-clock it implies at pe_freq.
    cycles: float
    seconds: float
    num_pes: int
    #: Aggregate cycle breakdown across PEs.
    busy_cycles: float
    stall_cycles: float
    pruner_cycles: float
    setop_cycles: float
    cmap_cycles: float
    #: Memory-system event counts.
    noc_requests: int
    dram_accesses: int
    l2_hits: int
    l2_misses: int
    private_hits: int
    private_misses: int
    #: c-map behaviour.
    cmap_reads: int
    cmap_writes: int
    cmap_overflows: int
    cmap_fallbacks: int
    frontier_reads: int
    tasks: int
    #: Per-PE total cycles (load balance analysis, Fig. 15 discussion).
    per_pe_cycles: List[float] = field(default_factory=list)
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def l2_miss_rate(self) -> float:
        accesses = self.l2_hits + self.l2_misses
        return self.l2_misses / accesses if accesses else 0.0

    @property
    def cmap_read_ratio(self) -> float:
        total = self.cmap_reads + self.cmap_writes
        return self.cmap_reads / total if total else 0.0

    @property
    def memory_bound_fraction(self) -> float:
        """Share of aggregate PE time spent stalled on memory."""
        total = self.busy_cycles + self.stall_cycles
        return self.stall_cycles / total if total else 0.0

    @property
    def load_imbalance(self) -> float:
        """Makespan / mean PE time; 1.0 is perfect balance."""
        if not self.per_pe_cycles:
            return 1.0
        mean = sum(self.per_pe_cycles) / len(self.per_pe_cycles)
        return max(self.per_pe_cycles) / mean if mean else 1.0

    def speedup_over(self, baseline_seconds: float) -> float:
        return baseline_seconds / self.seconds if self.seconds else 0.0

    def summary(self) -> str:
        lines = [
            f"matches      : {self.total}",
            f"PEs          : {self.num_pes}",
            f"cycles       : {self.cycles:.0f}",
            f"time         : {self.seconds * 1e3:.3f} ms",
            f"mem-bound    : {self.memory_bound_fraction * 100:.1f}%",
            f"NoC requests : {self.noc_requests}",
            f"DRAM accesses: {self.dram_accesses}",
            f"L2 miss rate : {self.l2_miss_rate * 100:.1f}%",
            f"c-map r/w    : {self.cmap_reads}/{self.cmap_writes}"
            f" (overflows {self.cmap_overflows})",
            f"imbalance    : {self.load_imbalance:.2f}",
        ]
        return "\n".join(lines)
