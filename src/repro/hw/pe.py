"""Processing-element model (paper §IV, Fig. 8/10).

A PE walks the subgraph search tree for its assigned tasks with the
iterative extender FSM, charging cycles for each microarchitectural
component:

* **pruner** — one cycle per candidate for the vid-bound/injectivity
  scan;
* **c-map** — banked hash probes for queries, bulk inserts on descend,
  stack deletions on backtrack, occupancy-threshold fall-back (§VI);
* **SIU/SDU** — one merge-loop iteration per cycle when the c-map cannot
  serve a connectivity check (paper Fig. 9);
* **frontier-list table** — memoized candidate lists written to a per-PE
  spill region and re-read through the private cache (§V-C);
* **memory** — edgelist and frontier reads go through the private cache;
  misses stall the PE for the NoC + L2 (+ DRAM) round trip.

Functionally the PE *is* a :class:`~repro.engine.explore.PatternAwareEngine`
subclass, so its match counts are the verified reference computation; the
overrides only add timing and hardware state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.plan import VertexStep
from ..engine.explore import PatternAwareEngine
from ..engine.setops import bound_below, difference, intersect, merge_iterations
from ..graph import CSRGraph
from ..obs.trace import SIM_PID
from .cache import SetAssocCache
from .cmap import HardwareCMap
from .config import FlexMinerConfig
from .mem import GraphLayout, MemorySystem

__all__ = ["PEStats", "ProcessingElement"]


@dataclass
class PEStats:
    """Per-PE cycle breakdown and event counts.

    ``busy_cycles``/``stall_cycles`` live in the float cycle domain
    (memory stalls include fractional issue gaps).  The unit breakdowns
    are declared ``int`` on purpose: every producer charges whole
    cycles, and the parallel simulator ships them as per-task integer
    deltas that must re-group exactly (fmlint FM202 guards the
    producers; test_sim_parallel pins the re-grouping).
    """

    tasks: int = 0
    busy_cycles: float = 0.0
    stall_cycles: float = 0.0
    pruner_cycles: int = 0
    setop_cycles: int = 0
    cmap_cycles: int = 0
    frontier_reads: int = 0
    cmap_fallbacks: int = 0
    cmap_resolved_checks: int = 0
    siu_resolved_checks: int = 0

    @property
    def total_cycles(self) -> float:
        return self.busy_cycles + self.stall_cycles

    def as_dict(self) -> Dict[str, float]:
        """Flat export for run reports and the metrics registry."""
        out = {
            name: getattr(self, name) for name in self.__dataclass_fields__
        }
        out["total_cycles"] = self.total_cycles
        return out


class ProcessingElement(PatternAwareEngine):
    """One FlexMiner PE: the functional engine plus cycle accounting."""

    # Every candidate list must flow through the timed c-map/SIU pipeline
    # below; the base engine's count-only leaf shortcut would skip it.
    supports_leaf_counting = False

    def __init__(
        self,
        pe_id: int,
        graph: CSRGraph,
        plan,
        config: FlexMinerConfig,
        memsys: MemorySystem,
        *,
        work_graph: Optional[CSRGraph] = None,
        tracer=None,
    ) -> None:
        super().__init__(graph, plan, collect=False, work_graph=work_graph)
        self.pe_id = pe_id
        self.config = config
        self.memsys = memsys
        # Vectorized timing kernels (batch cache walks + batch fetch);
        # bit-identical to the legacy per-element loops.
        self._fast = config.timing_kernels
        self.time = 0.0
        self._overlap_credit = 0.0
        self.stats = PEStats()
        # Cycle-domain tracer: None when tracing is off, so hot paths pay
        # one identity check.  Timing/counters are never affected.
        self._trace = (
            tracer if tracer is not None and tracer.enabled else None
        )
        self.private = SetAssocCache(
            config.private_cache_bytes,
            config.private_cache_assoc,
            config.line_bytes,
        )
        self.cmap: Optional[HardwareCMap] = HardwareCMap.from_config(config)
        if self._trace is not None and self.cmap is not None:
            self.cmap.attach_tracer(
                self._trace, clock=lambda: self.time, tid=pe_id
            )
        self._insert_depths = set(plan.cmap_insert_depths)
        self._insert_filter = getattr(plan, "cmap_insert_filter", {})
        self._covered: Dict[int, bool] = {}
        # Frontier-list table: depth -> (spill address, bytes).
        self._frontier_table: Dict[int, Tuple[int, int]] = {}
        base, stride = GraphLayout.frontier_region(pe_id)
        self._frontier_base = base
        self._frontier_limit = base + stride
        self._frontier_ptr = base

    # ------------------------------------------------------------------
    # Scheduler entry point
    # ------------------------------------------------------------------
    def execute_task(
        self,
        v0: int,
        dispatch_time: float,
        *,
        chunk: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Run one task; ``dispatch_time`` is when the scheduler sent it.

        ``chunk`` restricts the walk to a slice of the depth-1
        candidates (fine-grained task splitting; see the scheduler).
        """
        self.time = max(self.time, dispatch_time)
        start = self.time
        self._charge_busy(self.config.dispatch_cycles)
        if self.cmap is not None:
            self.cmap.reset()
        self._covered.clear()
        self.stats.tasks += 1
        self.run_task(v0, chunk=chunk)
        if self._trace is not None:
            args = {"root": int(v0)}
            if chunk is not None:
                args["chunk"] = list(chunk)
            self._trace.complete(
                f"task v{int(v0)}", start, self.time - start,
                pid=SIM_PID, tid=self.pe_id, cat="task", args=args,
            )

    @property
    def counts(self) -> List[int]:
        return self._counts

    # ------------------------------------------------------------------
    # Cycle charging helpers
    # ------------------------------------------------------------------
    def _charge_busy(self, cycles: float) -> None:
        self.time += cycles
        self.stats.busy_cycles += cycles
        # Compute executed since the last fetch gives the decoupled
        # fetch pipeline that much run-ahead to hide the next miss.
        self._overlap_credit += cycles

    def _touch(self, base: int, size: int) -> None:
        """Read a byte range through the private cache.

        Misses go to the L2/DRAM; the PE's decoupled access pipeline
        (the extender FSM issues edgelist requests ahead of the SIU and
        pruner consuming them) hides miss latency behind the compute
        cycles charged since the previous fetch.  Only the uncovered
        remainder stalls the PE.
        """
        if self._fast:
            _, missed = self.private.access_range_batch(base, size)
        else:
            _, missed = self.private.access_range(base, size)
        if missed:
            fetch = (
                self.memsys.fetch_lines_batch
                if self._fast
                else self.memsys.fetch_lines
            )
            latency = fetch(self.pe_id, missed, self.time)
            stall = max(0.0, latency - self._overlap_credit)
            self._overlap_credit = 0.0
            self.time += stall
            self.stats.stall_cycles += stall
            if self._trace is not None and stall > 0:
                self._trace.complete(
                    "stall", self.time - stall, stall,
                    pid=SIM_PID, tid=self.pe_id, cat="mem",
                    args={"lines": len(missed)},
                )

    def _write_frontier(self, length: int, depth: int) -> None:
        """Store a memoized candidate list in the spill region."""
        size = max(4 * length, 4)
        if self._frontier_ptr + size > self._frontier_limit:
            self._frontier_ptr = self._frontier_base  # wrap (bump allocator)
        addr = self._frontier_ptr
        line = self.config.line_bytes
        self._frontier_ptr = (addr + size + line - 1) // line * line
        # Write-allocate without fetch: lines become resident; one store
        # cycle per line.
        if self._fast:
            self.private.access_range_batch(addr, size)
            self._charge_busy(
                (addr + size - 1) // line - addr // line + 1
            )
        else:
            lines = self.private.lines_of_range(addr, size)
            for ln in lines:
                self.private.access_line(int(ln))
            self._charge_busy(len(lines))
        self._frontier_table[depth] = (addr, size)

    def _load_adjacency_timed(self, v: int) -> np.ndarray:
        """Fetch a neighbor list through the memory hierarchy."""
        nbrs = self._load_adjacency(v)  # functional read + op counters
        layout = self.memsys.layout
        self._touch(*layout.indptr_range(v))
        start = int(self._work_graph.indptr[v])
        self._touch(*layout.indices_range(start, len(nbrs)))
        return nbrs

    # ------------------------------------------------------------------
    # Candidate generation with hardware timing
    # ------------------------------------------------------------------
    def _raw_candidates(
        self, step: VertexStep, emb: Sequence[int]
    ) -> np.ndarray:
        if step.base_step is not None:
            cands = self._raw_stack[step.base_step]
            self.counters.frontier_hits += 1
            self.stats.frontier_reads += 1
            entry = self._frontier_table.get(step.base_step)
            if entry is not None:
                self._touch(*entry)
            conn, disc = step.extra_connected, step.extra_disconnected
        else:
            cands = self._load_adjacency_timed(emb[step.extender])
            conn, disc = step.connected, step.disconnected

        checks = conn + disc
        if checks:
            if self._cmap_ready(checks):
                cycles = self.cmap.query_batch(len(cands))
                self._charge_busy(cycles)
                self.stats.cmap_cycles += cycles
                self.stats.cmap_resolved_checks += len(checks)
                if self._trace is not None and cycles > 0:
                    self._trace.complete(
                        "cmap-query", self.time - cycles, cycles,
                        pid=SIM_PID, tid=self.pe_id, cat="cmap",
                        args={"candidates": len(cands)},
                    )
                # Values come from the verified functional computation.
                for d in conn:
                    cands = intersect(
                        cands, self._work_graph.neighbors(emb[d]), None
                    )
                for d in disc:
                    cands = difference(
                        cands, self._work_graph.neighbors(emb[d]), None
                    )
            else:
                if self.cmap is not None:
                    self.stats.cmap_fallbacks += 1
                self.stats.siu_resolved_checks += len(checks)
                for d in conn:
                    other = self._load_adjacency_timed(emb[d])
                    cycles = merge_iterations(len(cands), len(other))
                    self._charge_busy(cycles)
                    self.stats.setop_cycles += cycles
                    self._trace_setop("siu", cycles)
                    cands = intersect(cands, other, self.counters)
                for d in disc:
                    other = self._load_adjacency_timed(emb[d])
                    cycles = merge_iterations(len(cands), len(other))
                    self._charge_busy(cycles)
                    self.stats.setop_cycles += cycles
                    self._trace_setop("sdu", cycles)
                    cands = difference(cands, other, self.counters)

        # Pruner scan: one candidate per cycle for bound + injectivity.
        self._charge_busy(len(cands))
        self.stats.pruner_cycles += len(cands)

        self._raw_stack[step.depth] = cands
        if step.memoize_frontier:
            self._write_frontier(len(cands), step.depth)
        return cands

    def _trace_setop(self, unit: str, cycles: float) -> None:
        """Record one SIU/SDU merge interval ending at the current time."""
        if self._trace is not None and cycles > 0:
            self._trace.complete(
                unit, self.time - cycles, cycles,
                pid=SIM_PID, tid=self.pe_id, cat="setop",
                args={"iterations": cycles},
            )

    def _cmap_ready(self, checks: Tuple[int, ...]) -> bool:
        """Can every check be answered from the c-map right now?"""
        if self.cmap is None:
            return False
        return all(self._covered.get(d, False) for d in checks)

    # ------------------------------------------------------------------
    # c-map maintenance on DFS moves (Fig. 12)
    # ------------------------------------------------------------------
    def _on_descend(self, depth: int, emb: List[int]) -> None:
        if self.cmap is None or depth not in self._insert_depths:
            return
        neighbors = self._work_graph.neighbors(emb[depth])
        flt = self._insert_filter.get(depth)
        if flt is not None:
            neighbors = bound_below(neighbors, emb[flt])
        # The degree is known from indptr before the list is brought in,
        # so the footprint estimate precedes the data fetch (§VI-B).
        outcome = self.cmap.try_insert(neighbors, depth)
        self._charge_busy(outcome.cycles)
        self.stats.cmap_cycles += outcome.cycles
        if self._trace is not None and outcome.accepted and outcome.cycles > 0:
            self._trace.complete(
                "cmap-insert", self.time - outcome.cycles, outcome.cycles,
                pid=SIM_PID, tid=self.pe_id, cat="cmap",
                args={"depth": depth, "entries": len(neighbors)},
            )
        if outcome.accepted:
            layout = self.memsys.layout
            start = int(self._work_graph.indptr[emb[depth]])
            self._touch(*layout.indices_range(start, len(neighbors)))
        self._covered[depth] = outcome.accepted

    def _on_backtrack(self, depth: int, emb: List[int]) -> None:
        if self.cmap is None or depth not in self._insert_depths:
            return
        if self._covered.pop(depth, False):
            cycles = self.cmap.remove_level(depth)
            self._charge_busy(cycles)
            self.stats.cmap_cycles += cycles
