"""The iterative extender finite-state machine (paper Fig. 10).

"Pattern-aware software solutions use recursion, which is not suitable
for direct implementation in hardware.  Instead, FlexMiner uses the
iterative execution model ... implemented using a simple finite state
machine."

This module implements that FSM literally: three states (IDLE,
EXTENDING, ITERATING_EDGES), a depth counter, the ancestor stack ``emb``
and per-depth candidate-index registers.  It is the architectural
reference for the PE control logic; the timing simulator's PE walks the
same tree via the verified recursive engine, and the test suite asserts
this FSM produces identical counts — demonstrating the recursion ⇄ FSM
equivalence the paper relies on.

Only single-pattern plans are handled here, matching Fig. 10's caption
("single-pattern"); the multi-pattern control flow adds the embedding
section's dependency tree (§V-D).
"""

from __future__ import annotations

import enum
from typing import List, Optional

import numpy as np

from ..compiler.plan import ExecutionPlan
from ..engine.setops import bound_below, difference, intersect, remove_values
from ..graph import CSRGraph, orient_by_degree

__all__ = ["PEState", "ExtenderFSM"]


class PEState(enum.Enum):
    """Fig. 10 runtime states."""

    IDLE = "idle"
    EXTENDING = "extending"
    ITERATING_EDGES = "iterating_edges"


class ExtenderFSM:
    """Iterative DFS walker over the subgraph search tree.

    Drive it with :meth:`run_task` per root vertex, or :meth:`run` for
    the whole graph.  ``matches`` accumulates the reduction result (the
    paper's reducer uses ``+``).
    """

    def __init__(self, graph: CSRGraph, plan: ExecutionPlan) -> None:
        self.graph = graph
        self.plan = plan
        self._work_graph = (
            orient_by_degree(graph) if plan.oriented else graph
        )
        self.state = PEState.IDLE
        self.matches = 0
        #: Per-depth candidate lists and iteration indices — the
        #: "registers to hold the current vertex being extended and the
        #: index of edge used for extension".
        self._candidates: List[Optional[np.ndarray]] = []
        self._index: List[int] = []
        self._raw: List[Optional[np.ndarray]] = []
        self._emb: List[int] = []

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Mine every root vertex; returns the total match count."""
        for v in self._work_graph.vertices():
            self.run_task(int(v))
        return self.matches

    def run_task(self, v_init: int) -> None:
        """Fig. 10 control flow for one scheduler-assigned task."""
        k = self.plan.num_levels
        # Reset the per-task registers.
        self._emb = [v_init]
        self._candidates = [None] * k
        self._index = [0] * k
        self._raw = [None] * k
        depth = 1
        self.state = PEState.EXTENDING

        while self.state is not PEState.IDLE:
            if self.state is PEState.EXTENDING:
                if depth == k:
                    # Match found in the stack; count and backtrack.
                    self.matches += 1
                    self._emb.pop()
                    depth -= 1
                    self.state = PEState.ITERATING_EDGES
                else:
                    self._candidates[depth] = self._compute_candidates(
                        depth
                    )
                    self._index[depth] = 0
                    self.state = PEState.ITERATING_EDGES
            else:  # ITERATING_EDGES
                cands = self._candidates[depth]
                i = self._index[depth]
                if cands is None or i >= len(cands):
                    # End of the neighbor list: backtrack.
                    if depth == 1:
                        self.state = PEState.IDLE
                    else:
                        depth -= 1
                        self._emb.pop()
                    continue
                self._index[depth] = i + 1
                candidate = int(cands[i])
                # The pruner already filtered candidates when the list
                # was produced; push and descend.
                self._emb.append(candidate)
                depth += 1
                self.state = PEState.EXTENDING

    # ------------------------------------------------------------------
    def _compute_candidates(self, depth: int) -> np.ndarray:
        """Pruner output for one step (bounds + connectivity checks)."""
        step = self.plan.step_at(depth)
        if step.base_step is not None:
            cands = self._raw[step.base_step]
            for d in step.extra_connected:
                cands = intersect(cands, self._adj(self._emb[d]))
            for d in step.extra_disconnected:
                cands = difference(cands, self._adj(self._emb[d]))
        else:
            cands = self._adj(self._emb[step.extender])
            for d in step.connected:
                cands = intersect(cands, self._adj(self._emb[d]))
            for d in step.disconnected:
                cands = difference(cands, self._adj(self._emb[d]))
        self._raw[depth] = cands
        if step.upper_bounds:
            bound = min(self._emb[b] for b in step.upper_bounds)
            cands = bound_below(cands, bound)
        return remove_values(cands, self._emb)

    def _adj(self, v: int) -> np.ndarray:
        return self._work_graph.neighbors(v)
