"""Shared memory system: address layout, L2, NoC and DRAM glue.

The simulator is trace-driven: PEs issue line-granular requests stamped
with their local cycle time.  Each private-cache miss becomes a NoC
request (the Fig. 16 traffic metric) and an L2 lookup; L2 misses go to
the DDR4 model.  Requests in a batch (one adjacency-list fetch) are
issued back-to-back and complete out of order; the PE blocks until the
last response.

Address map (synthetic, byte-addressed):

* ``indptr``   at 0x1000_0000 — 8 bytes per vertex offset entry;
* ``indices``  at 0x4000_0000 — 4 bytes per neighbor id;
* frontier spill space per PE above 0x1_0000_0000 — frontier lists live
  in the private cache and spill to L2, so these addresses never reach
  DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..graph import CSRGraph
from .cache import SetAssocCache
from .config import FlexMinerConfig
from .dram import DramModel
from .noc import NocModel

__all__ = ["GraphLayout", "MemorySystem"]

INDPTR_BASE = 0x1000_0000
INDICES_BASE = 0x4000_0000
FRONTIER_BASE = 0x1_0000_0000
FRONTIER_STRIDE = 0x0100_0000  # 16 MB of spill address space per PE


@dataclass(frozen=True)
class GraphLayout:
    """Byte addresses of the CSR arrays in the simulated address space."""

    num_vertices: int

    def indptr_range(self, v: int) -> Tuple[int, int]:
        """Address/size of the two offsets bounding v's neighbor list."""
        return INDPTR_BASE + 8 * v, 16

    def indices_range(self, start: int, count: int) -> Tuple[int, int]:
        """Address/size of a slice of the indices array."""
        return INDICES_BASE + 4 * start, 4 * count

    @staticmethod
    def frontier_region(pe_id: int) -> Tuple[int, int]:
        base = FRONTIER_BASE + pe_id * FRONTIER_STRIDE
        return base, FRONTIER_STRIDE

    @staticmethod
    def is_frontier(addr: int) -> bool:
        return addr >= FRONTIER_BASE


class MemorySystem:
    """Shared L2 + NoC + DRAM serving all PEs."""

    #: Back-to-back request issue gap from one PE (cycles).
    ISSUE_GAP = 1.0

    def __init__(self, config: FlexMinerConfig, graph: CSRGraph) -> None:
        self.config = config
        self.layout = GraphLayout(graph.num_vertices)
        self.l2 = SetAssocCache(
            config.l2_bytes, config.l2_assoc, config.line_bytes
        )
        self.dram = DramModel(config)
        self.noc = NocModel(config)
        # Observability: sampled L2 counter track (attach_tracer).
        self._trace = None
        self._sample_every = 0

    def attach_tracer(self, tracer, *, every: int = 64) -> None:
        """Wire the shared memory system into a cycle-domain tracer.

        Forwards to the NoC and DRAM models and emits an ``l2`` counter
        sample every ``every``-th miss batch.
        """
        self._trace = tracer if tracer is not None and tracer.enabled else None
        self._sample_every = max(1, every)
        self.noc.attach_tracer(tracer, every=every)
        self.dram.attach_tracer(tracer, every=every)

    def fetch_lines(
        self, pe_id: int, lines: List[int], now: float
    ) -> float:
        """Service a batch of private-cache misses; returns stall cycles.

        Each line costs a NoC round trip plus the L2 hit latency; an L2
        miss adds the DRAM access (frontier spill addresses always hit in
        L2 by construction — they were written there, never to DRAM).
        """
        if not lines:
            return 0.0
        finish = now
        for i, line in enumerate(lines):
            issue = now + i * self.ISSUE_GAP
            latency = self.noc.request_latency(
                pe_id, self.config.line_bytes, issue
            )
            latency += self.config.l2_hit_cycles
            addr = line * self.config.line_bytes
            hit = self.l2.access_line(line)
            if not hit and not GraphLayout.is_frontier(addr):
                latency += self.dram.access(line, issue + latency)
            finish = max(finish, issue + latency)
        if (
            self._trace is not None
            and self.l2.stats.accesses % self._sample_every == 0
        ):
            self._emit_l2_sample(now)
        return finish - now

    def fetch_lines_batch(
        self, pe_id: int, lines: List[int], now: float
    ) -> float:
        """Batch form of :meth:`fetch_lines` (timing-kernels path).

        The NoC latencies for the whole batch are computed in one pass
        and the L2 lookups in another; because the NoC bucket, the L2
        LRU state and the DRAM models are mutually independent, every
        per-line latency — and every counter — is bit-identical to the
        per-line reference loop.
        """
        count = len(lines)
        if count < 4:
            # Short batches: the hoisting overhead of the batch path
            # exceeds the per-line dispatch it saves.
            return self.fetch_lines(pe_id, lines, now)
        line_bytes = self.config.line_bytes
        gap = self.ISSUE_GAP
        noc_latency = self.noc.batch_latency(
            pe_id, line_bytes, now, gap, count
        )
        hit_flags = self.l2.access_lines_batch(lines)
        l2_hit_cycles = self.config.l2_hit_cycles
        frontier_line = FRONTIER_BASE // line_bytes
        dram_access = self.dram.access
        finish = now
        for i in range(count):
            issue = now + i * gap
            latency = noc_latency[i] + l2_hit_cycles
            if not hit_flags[i] and lines[i] < frontier_line:
                latency += dram_access(lines[i], issue + latency)
            finish = max(finish, issue + latency)
        if (
            self._trace is not None
            and self.l2.stats.accesses % self._sample_every == 0
        ):
            self._emit_l2_sample(now)
        return finish - now

    def _emit_l2_sample(self, now: float) -> None:
        from ..obs.trace import SIM_PID

        self._trace.counter(
            "l2",
            now,
            {
                "hits": self.l2.stats.hits,
                "misses": self.l2.stats.misses,
                "hit_rate": self.l2.stats.hit_rate,
            },
            pid=SIM_PID,
        )
