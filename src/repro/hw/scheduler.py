"""Dynamic task scheduler (paper §IV-A).

The scheduler hands root-vertex tasks to idle PEs.  Because every task
is independent, the hardware policy is simply "next task to the first PE
that frees up"; the simulator realizes that with a min-heap on PE local
time.  A task's dispatch costs a NoC message (``dispatch_cycles``).

Tasks are issued in descending root-degree order, a standard
longest-processing-time heuristic that mirrors what dynamic hardware
scheduling achieves on skewed graphs (big tasks don't straggle at the
end).
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..graph import CSRGraph
from .pe import ProcessingElement

__all__ = ["Scheduler", "Task"]

#: A task is a root vertex, optionally with a (chunk, total) slice of
#: its depth-1 candidates (fine-grained splitting of straggler roots).
Task = Union[int, Tuple[int, int, int]]


class Scheduler:
    """Greedy earliest-available-PE task scheduler."""

    def __init__(self, pes: Sequence[ProcessingElement]) -> None:
        if not pes:
            raise ValueError("scheduler needs at least one PE")
        self.pes = list(pes)
        self.tasks_dispatched = 0

    @staticmethod
    def order_tasks(
        graph: CSRGraph,
        roots: Optional[Iterable[int]] = None,
        *,
        split_degree: Optional[int] = None,
    ) -> List[Task]:
        """Issue order: descending degree, ties by vertex id.

        With ``split_degree`` set, roots whose degree exceeds it become
        several ``(vertex, chunk, total)`` sub-tasks, so one power-law
        hub cannot serialize the tail of the schedule.

        Sorting runs over the cached ``graph.degrees()`` vector (one
        lexsort) rather than one ``graph.degree(v)`` call per key.
        """
        degrees = graph.degrees()
        if roots is None:
            verts = np.arange(graph.num_vertices, dtype=np.int64)
        else:
            verts = np.asarray(list(roots), dtype=np.int64)
        if len(verts) == 0:
            return []
        degs = degrees[verts]
        # Primary key descending degree, ties broken by vertex id —
        # identical to sorted(key=lambda v: (-degree(v), v)).
        order = np.lexsort((verts, -degs))
        ordered = verts[order].tolist()
        if split_degree is None:
            return ordered
        pieces_per_root = np.maximum(
            1, np.ceil(degs[order] / split_degree).astype(np.int64)
        ).tolist()
        tasks: List[Task] = []
        for v, pieces in zip(ordered, pieces_per_root):
            if pieces == 1:
                tasks.append(v)
            else:
                tasks.extend((v, i, pieces) for i in range(pieces))
        return tasks

    def run(self, tasks: Iterable[Task]) -> float:
        """Dispatch every task; returns the makespan in cycles."""
        heap = [(pe.time, i) for i, pe in enumerate(self.pes)]
        heapq.heapify(heap)
        for task in tasks:
            ready_time, index = heapq.heappop(heap)
            pe = self.pes[index]
            if isinstance(task, tuple):
                v0, chunk_index, total = task
                pe.execute_task(
                    int(v0), ready_time, chunk=(chunk_index, total)
                )
            else:
                pe.execute_task(int(task), ready_time)
            self.tasks_dispatched += 1
            heapq.heappush(heap, (pe.time, index))
        return max(pe.time for pe in self.pes)
