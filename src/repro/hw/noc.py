"""Network-on-chip model (BookSim stand-in, paper §VII-A).

PEs, the shared L2 and the scheduler sit on a 2-D mesh.  Each request
pays a hop-proportional base latency, serialization of the response line
into flits, and a *contention* term: the L2-side ejection ports (one per
L2 bank) accept a bounded number of requests per cycle, and excess
demand queues.  The queue is a leaky bucket per the same reasoning as
the DRAM model — PE-local timestamps are not globally ordered, so the
backlog drains with observed time instead of keeping absolute horizons.

Request *counts* per PE are the "NoC traffic" metric of Fig. 16 (the
number of memory requests sent from the PEs to the NoC, i.e. L2
accesses).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from .config import FlexMinerConfig

__all__ = ["NocStats", "NocModel"]


@dataclass
class NocStats:
    requests: int = 0
    response_bytes: int = 0
    queue_cycles: float = 0.0
    requests_per_pe: Dict[int, int] = field(default_factory=dict)

    @property
    def avg_queue_cycles(self) -> float:
        return self.queue_cycles / self.requests if self.requests else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat export for run reports and counter-track samples."""
        return {
            "requests": self.requests,
            "response_bytes": self.response_bytes,
            "queue_cycles": self.queue_cycles,
            "avg_queue_cycles": self.avg_queue_cycles,
        }


class NocModel:
    """Mesh NoC latency/traffic/contention model."""

    def __init__(self, config: FlexMinerConfig) -> None:
        self.config = config
        side = max(1, int(math.ceil(math.sqrt(config.num_pes))))
        #: Average Manhattan distance to the L2/scheduler corner on a
        #: side x side mesh, used as the per-request hop count.
        self.avg_hops = max(1, side)
        self.stats = NocStats()
        self._backlog = 0.0
        self._last_seen = 0.0
        # Observability: sampled counter-track emission (attach_tracer).
        self._trace = None
        self._sample_every = 0

    @property
    def ejection_ports(self) -> int:
        """Requests the L2 side can accept per cycle (bank slices)."""
        return self.config.noc.l2_ejection_ports

    def attach_tracer(self, tracer, *, every: int = 64) -> None:
        """Emit a cycle-domain ``noc`` counter sample every ``every``-th
        request (full per-event tracing would swamp the file)."""
        self._trace = tracer if tracer is not None and tracer.enabled else None
        self._sample_every = max(1, every)

    def request_latency(
        self, pe_id: int, payload_bytes: int, now: float = 0.0
    ) -> float:
        """Round-trip cycles for one request issued at PE-time ``now``."""
        self.stats.requests += 1
        self.stats.response_bytes += payload_bytes
        per_pe = self.stats.requests_per_pe
        per_pe[pe_id] = per_pe.get(pe_id, 0) + 1

        # Ejection-port contention (leaky bucket over observed time).
        elapsed = now - self._last_seen
        if elapsed > 0:
            self._backlog = max(0.0, self._backlog - elapsed)
            self._last_seen = now
        queue_delay = self._backlog
        self._backlog += 1.0 / self.ejection_ports
        self.stats.queue_cycles += queue_delay

        if (
            self._trace is not None
            and self.stats.requests % self._sample_every == 0
        ):
            self._emit_sample(now)

        flits = max(
            1,
            math.ceil(payload_bytes / self.config.noc.link_bytes_per_flit),
        )
        one_way = self.avg_hops * self.config.noc.hop_latency_cycles
        return 2 * one_way + flits + queue_delay

    def _emit_sample(self, now: float) -> None:
        from ..obs.trace import SIM_PID

        self._trace.counter(
            "noc",
            now,
            {
                "requests": self.stats.requests,
                "backlog": self._backlog,
                "queue_cycles": self.stats.queue_cycles,
            },
            pid=SIM_PID,
        )

    def batch_latency(
        self,
        pe_id: int,
        payload_bytes: int,
        now: float,
        gap: float,
        count: int,
    ) -> list:
        """Round-trip latencies for ``count`` back-to-back requests.

        Request i is issued at ``now + i * gap``.  The leaky bucket is a
        sequential recurrence, so the loop stays scalar — but with the
        per-request dispatch overhead hoisted, and the identical float
        operation order, results are bit-identical to ``count`` calls to
        :meth:`request_latency`.
        """
        stats = self.stats
        per_pe = stats.requests_per_pe
        per_pe[pe_id] = per_pe.get(pe_id, 0) + count
        stats.response_bytes += payload_bytes * count
        flits = max(
            1,
            math.ceil(payload_bytes / self.config.noc.link_bytes_per_flit),
        )
        base = 2 * (self.avg_hops * self.config.noc.hop_latency_cycles) + flits
        ports = self.ejection_ports
        trace = self._trace
        every = self._sample_every
        backlog = self._backlog
        last_seen = self._last_seen
        queue_cycles = stats.queue_cycles
        requests = stats.requests
        out = []
        append = out.append
        for i in range(count):
            issue = now + i * gap
            requests += 1
            elapsed = issue - last_seen
            if elapsed > 0:
                backlog = max(0.0, backlog - elapsed)
                last_seen = issue
            queue_delay = backlog
            backlog += 1.0 / ports
            queue_cycles += queue_delay
            if trace is not None and requests % every == 0:
                # Flush state so the sample reads the same values the
                # per-request path would have seen.
                self._backlog = backlog
                stats.requests = requests
                stats.queue_cycles = queue_cycles
                self._emit_sample(issue)
            append(base + queue_delay)
        self._backlog = backlog
        self._last_seen = last_seen
        stats.requests = requests
        stats.queue_cycles = queue_cycles
        return out
