"""Energy model for FlexMiner and the CPU baseline.

The paper positions accelerators as improving "performance *and
energy-efficiency*" (§I) and gives the area/frequency data of §VII-A;
this module completes the picture with a CACTI-class event-energy model:
every counted simulator event (SIU iteration, c-map probe, cache access,
NoC flit, DRAM burst) is assigned a per-event energy, plus leakage
proportional to area and runtime.

The constants are representative 14/15 nm-class numbers (order-of-
magnitude correct); as with the CPU timing model, the meaningful outputs
are *ratios* — accelerator vs CPU energy on identical mining work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .area import AreaModel
from .config import FlexMinerConfig
from .report import SimReport

__all__ = ["EnergyConfig", "EnergyBreakdown", "estimate_energy",
           "cpu_energy"]


@dataclass(frozen=True)
class EnergyConfig:
    """Per-event energies (picojoules) and static power densities."""

    #: Core events.
    pj_per_pe_cycle: float = 1.2  # active PE datapath + control
    pj_per_cmap_access: float = 0.6  # small scratchpad SRAM access
    pj_per_private_access: float = 1.0  # 32 kB SRAM line access
    pj_per_l2_access: float = 12.0  # 4 MB SRAM line access
    pj_per_noc_byte: float = 0.35
    pj_per_dram_burst: float = 1300.0  # 64 B DDR4 access (~20 pJ/b)
    #: Leakage per mm^2 of logic+SRAM (watts).
    leakage_w_per_mm2: float = 0.08
    #: CPU-side constants.
    cpu_pj_per_cycle_per_core: float = 450.0  # high-end core incl. caches
    cpu_idle_w: float = 18.0  # uncore/DRAM background


@dataclass
class EnergyBreakdown:
    """Joules by component plus derived metrics."""

    dynamic_j: Dict[str, float] = field(default_factory=dict)
    leakage_j: float = 0.0
    seconds: float = 0.0

    @property
    def total_j(self) -> float:
        return sum(self.dynamic_j.values()) + self.leakage_j

    @property
    def average_watts(self) -> float:
        return self.total_j / self.seconds if self.seconds else 0.0

    def summary(self) -> str:
        parts = ", ".join(
            f"{name}={joules * 1e6:.2f}uJ"
            for name, joules in sorted(self.dynamic_j.items())
        )
        return (
            f"total={self.total_j * 1e6:.2f}uJ "
            f"(leakage={self.leakage_j * 1e6:.2f}uJ, {parts}) "
            f"avg={self.average_watts:.2f}W"
        )


def estimate_energy(
    report: SimReport,
    config: FlexMinerConfig,
    energy: EnergyConfig | None = None,
) -> EnergyBreakdown:
    """Energy of one simulated FlexMiner run."""
    e = energy or EnergyConfig()
    line = config.line_bytes
    dynamic = {
        "pe": report.busy_cycles * e.pj_per_pe_cycle,
        "cmap": (report.cmap_reads + report.cmap_writes)
        * e.pj_per_cmap_access,
        "private": (report.private_hits + report.private_misses)
        * e.pj_per_private_access,
        "l2": (report.l2_hits + report.l2_misses) * e.pj_per_l2_access,
        "noc": report.noc_requests * line * e.pj_per_noc_byte,
        "dram": report.dram_accesses * e.pj_per_dram_burst,
    }
    area = AreaModel(config).total_pe_area_mm2
    leakage = area * e.leakage_w_per_mm2 * report.seconds
    return EnergyBreakdown(
        dynamic_j={k: v * 1e-12 for k, v in dynamic.items()},
        leakage_j=leakage,
        seconds=report.seconds,
    )


def cpu_energy(
    seconds: float,
    *,
    cores_active: int = 10,
    freq_ghz: float = 4.0,
    energy: EnergyConfig | None = None,
) -> EnergyBreakdown:
    """Energy of the CPU baseline running for ``seconds``."""
    e = energy or EnergyConfig()
    dynamic = (
        seconds * cores_active * freq_ghz * 1e9 * e.cpu_pj_per_cycle_per_core
    ) * 1e-12
    idle = e.cpu_idle_w * seconds
    return EnergyBreakdown(
        dynamic_j={"cores": dynamic},
        leakage_j=idle,
        seconds=seconds,
    )
