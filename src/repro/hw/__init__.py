"""FlexMiner hardware model: cycle-level trace-driven simulator."""

from .config import DramConfig, FlexMinerConfig, NocConfig
from .cache import CacheStats, SetAssocCache
from .cmap import CMapStats, HardwareCMap, InsertOutcome
from .dram import DramModel, DramStats
from .noc import NocModel, NocStats
from .fsm import ExtenderFSM, PEState
from .mem import GraphLayout, MemorySystem
from .pe import PEStats, ProcessingElement
from .scheduler import Scheduler
from .report import SimReport
from .accelerator import FlexMinerAccelerator, simulate
from .parallel_sim import simulate_parallel
from .area import (
    PE_AREA_MM2,
    SKYLAKE_CORE_AREA_MM2,
    SKYLAKE_FREQ_GHZ,
    AreaModel,
)
from .energy import EnergyBreakdown, EnergyConfig, cpu_energy, estimate_energy

__all__ = [
    "DramConfig",
    "FlexMinerConfig",
    "NocConfig",
    "CacheStats",
    "SetAssocCache",
    "CMapStats",
    "HardwareCMap",
    "InsertOutcome",
    "DramModel",
    "DramStats",
    "NocModel",
    "NocStats",
    "ExtenderFSM",
    "PEState",
    "GraphLayout",
    "MemorySystem",
    "PEStats",
    "ProcessingElement",
    "Scheduler",
    "SimReport",
    "FlexMinerAccelerator",
    "simulate",
    "simulate_parallel",
    "AreaModel",
    "PE_AREA_MM2",
    "SKYLAKE_CORE_AREA_MM2",
    "SKYLAKE_FREQ_GHZ",
    "EnergyBreakdown",
    "EnergyConfig",
    "cpu_energy",
    "estimate_energy",
]
