"""Set-associative LRU cache model.

Used for both the per-PE private cache and the shared L2 (the paper's L2
is a "standard cycle-accurate non-inclusive cache model"; non-inclusive
means we simply model each level independently).  Only line presence and
LRU state are tracked — the simulator routes data values separately — so
one model serves reads, writes and frontier-list spills.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from ..errors import ConfigError

__all__ = ["CacheStats", "SetAssocCache"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat export for run reports and counter-track samples."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class SetAssocCache:
    """A set-associative cache with true-LRU replacement.

    Addresses are byte addresses; the cache operates on line granularity.
    """

    def __init__(
        self, capacity_bytes: int, assoc: int, line_bytes: int
    ) -> None:
        num_lines = capacity_bytes // line_bytes
        if num_lines < assoc:
            raise ConfigError("cache smaller than one set")
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.num_sets = max(num_lines // assoc, 1)
        self.stats = CacheStats()
        # Per-set mapping line_tag -> last-use tick (true LRU).
        self._sets: List[Dict[int, int]] = [
            {} for _ in range(self.num_sets)
        ]
        self._tick = 0

    # ------------------------------------------------------------------
    def line_of(self, addr: int) -> int:
        return addr // self.line_bytes

    def lines_of_range(self, base: int, size: int) -> np.ndarray:
        """Distinct line ids covering [base, base + size)."""
        if size <= 0:
            return np.empty(0, dtype=np.int64)
        first = base // self.line_bytes
        last = (base + size - 1) // self.line_bytes
        return np.arange(first, last + 1, dtype=np.int64)

    def access_line(self, line: int) -> bool:
        """Touch one line; returns True on hit (allocates on miss)."""
        self._tick += 1
        index = line % self.num_sets
        ways = self._sets[index]
        if line in ways:
            ways[line] = self._tick
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(ways) >= self.assoc:
            victim = min(ways, key=ways.get)
            del ways[victim]
            self.stats.evictions += 1
        ways[line] = self._tick
        return False

    def access_range(self, base: int, size: int) -> Tuple[int, List[int]]:
        """Touch every line of a byte range.

        Returns ``(hits, missed_lines)`` so the caller can forward the
        misses to the next memory level.
        """
        hits = 0
        missed: List[int] = []
        for line in self.lines_of_range(base, size):
            if self.access_line(int(line)):
                hits += 1
            else:
                missed.append(int(line))
        return hits, missed

    # ------------------------------------------------------------------
    # Batch kernels (FlexMinerConfig.timing_kernels path)
    # ------------------------------------------------------------------
    def access_range_batch(self, base: int, size: int) -> Tuple[int, List[int]]:
        """Batch form of :meth:`access_range`.

        Decision-identical — same hits, misses, evictions, LRU ticks and
        missed-line order — with the per-line dispatch overhead (method
        calls, array materialization, scalar casts) hoisted out of the
        loop.
        """
        if size <= 0:
            return 0, []
        first = base // self.line_bytes
        last = (base + size - 1) // self.line_bytes
        if first == last:
            # Single-line ranges dominate the touch stream; skip the
            # loop setup entirely.
            tick = self._tick + 1
            self._tick = tick
            ways = self._sets[first % self.num_sets]
            if first in ways:
                ways[first] = tick
                self.stats.hits += 1
                return 1, []
            self.stats.misses += 1
            if len(ways) >= self.assoc:
                del ways[min(ways, key=ways.get)]
                self.stats.evictions += 1
            ways[first] = tick
            return 0, [first]
        tick = self._tick
        sets = self._sets
        num_sets = self.num_sets
        assoc = self.assoc
        hits = 0
        evictions = 0
        missed: List[int] = []
        append = missed.append
        for line in range(first, last + 1):
            tick += 1
            ways = sets[line % num_sets]
            if line in ways:
                ways[line] = tick
                hits += 1
            else:
                if len(ways) >= assoc:
                    del ways[min(ways, key=ways.get)]
                    evictions += 1
                ways[line] = tick
                append(line)
        self._tick = tick
        self.stats.hits += hits
        self.stats.misses += last - first + 1 - hits
        self.stats.evictions += evictions
        return hits, missed

    def access_lines_batch(self, lines: Iterable[int]) -> List[bool]:
        """Touch an explicit line sequence; per-line hit flags in order.

        Same state transitions as calling :meth:`access_line` per line.
        """
        tick = self._tick
        sets = self._sets
        num_sets = self.num_sets
        assoc = self.assoc
        hits = 0
        evictions = 0
        flags: List[bool] = []
        append = flags.append
        for line in lines:
            tick += 1
            ways = sets[line % num_sets]
            if line in ways:
                ways[line] = tick
                hits += 1
                append(True)
            else:
                if len(ways) >= assoc:
                    del ways[min(ways, key=ways.get)]
                    evictions += 1
                ways[line] = tick
                append(False)
        self._tick = tick
        self.stats.hits += hits
        self.stats.misses += len(flags) - hits
        self.stats.evictions += evictions
        return flags

    def contains(self, line: int) -> bool:
        return line in self._sets[line % self.num_sets]

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()
