"""FlexMiner hardware configuration (paper §IV, §VII-A).

Defaults follow the evaluated design point: 64 PEs at 1.3 GHz, 32 kB
private cache per PE, an 8 kB scratchpad c-map (4 banks, 5-byte entries,
75 % occupancy threshold), a 4 MB shared L2, and 64 GB of DDR4-2666 over
four channels — the same memory system as the CPU baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import ConfigError

__all__ = ["DramConfig", "NocConfig", "FlexMinerConfig"]


@dataclass(frozen=True)
class DramConfig:
    """DDR4 channel/bank timing model parameters (DRAMsim3 stand-in)."""

    num_channels: int = 4
    banks_per_channel: int = 16
    row_bytes: int = 8192
    #: Timing in nanoseconds (DDR4-2666 grade).
    t_cas_ns: float = 14.0
    t_rcd_ns: float = 14.0
    t_rp_ns: float = 14.0
    t_burst_ns: float = 3.0  # 64B over a 64-bit bus at 1333 MHz DDR

    def __post_init__(self) -> None:
        if self.num_channels < 1 or self.banks_per_channel < 1:
            raise ConfigError("DRAM needs at least one channel and bank")
        if min(self.t_cas_ns, self.t_rcd_ns, self.t_rp_ns) <= 0:
            raise ConfigError("DRAM timings must be positive")

    @property
    def peak_bandwidth_gbs(self) -> float:
        """Aggregate peak bandwidth (64 B per burst per channel)."""
        return self.num_channels * 64.0 / self.t_burst_ns


@dataclass(frozen=True)
class NocConfig:
    """Network-on-chip model parameters (BookSim stand-in)."""

    hop_latency_cycles: int = 2
    link_bytes_per_flit: int = 16
    #: L2 bank slices accepting requests concurrently (ejection ports).
    l2_ejection_ports: int = 8

    def __post_init__(self) -> None:
        if self.hop_latency_cycles < 1:
            raise ConfigError("hop latency must be >= 1 cycle")
        if self.link_bytes_per_flit < 1:
            raise ConfigError("flit width must be positive")
        if self.l2_ejection_ports < 1:
            raise ConfigError("need at least one ejection port")


@dataclass(frozen=True)
class FlexMinerConfig:
    """Top-level accelerator configuration."""

    num_pes: int = 64
    pe_freq_ghz: float = 1.3
    #: Private (per-PE) cache.
    private_cache_bytes: int = 32 * 1024
    private_cache_assoc: int = 4
    line_bytes: int = 64
    #: Shared L2.
    l2_bytes: int = 4 * 1024 * 1024
    l2_assoc: int = 16
    l2_hit_cycles: int = 18
    #: c-map scratchpad; 0 disables the c-map entirely (no-cmap baseline).
    cmap_bytes: int = 8 * 1024
    cmap_banks: int = 4
    cmap_entry_bytes: int = 5
    cmap_occupancy_threshold: float = 0.75
    #: Exact (per-entry) linear-probe simulation vs analytic probe costs.
    cmap_exact: bool = False
    #: Vectorized timing kernels: batch the per-element cycle accounting
    #: (c-map insert/delete probe math, cache line walks, NoC/DRAM line
    #: batches) with numpy.  Bit-identical to the legacy per-element
    #: loops — ``False`` keeps the original reference path for parity
    #: checks and the BENCH_sim baseline.  ``cmap_exact=True`` always
    #: simulates slots individually regardless of this switch.
    timing_kernels: bool = True
    dram: DramConfig = field(default_factory=DramConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    #: Scheduler task-dispatch latency (NoC message to an idle PE).
    dispatch_cycles: int = 8
    #: Split root tasks whose degree exceeds this into chunks of roughly
    #: this many depth-1 candidates (None = paper-faithful one task per
    #: root vertex).  Mitigates power-law straggler tasks on small
    #: graphs; single-pattern plans only.
    task_split_degree: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_pes < 1:
            raise ConfigError("need at least one PE")
        if self.pe_freq_ghz <= 0:
            raise ConfigError("PE frequency must be positive")
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigError("line size must be a power of two")
        for name in ("private_cache_bytes", "l2_bytes"):
            if getattr(self, name) < self.line_bytes:
                raise ConfigError(f"{name} smaller than one line")
        if self.private_cache_assoc < 1 or self.l2_assoc < 1:
            raise ConfigError("associativity must be >= 1")
        if self.cmap_bytes < 0:
            raise ConfigError("cmap_bytes must be >= 0")
        if self.cmap_bytes and self.cmap_bytes < self.cmap_entry_bytes:
            raise ConfigError("c-map smaller than one entry")
        if not 0.0 < self.cmap_occupancy_threshold <= 1.0:
            raise ConfigError("occupancy threshold must be in (0, 1]")
        if self.cmap_banks < 1:
            raise ConfigError("c-map needs at least one bank")

    # Convenience derived values -------------------------------------
    @property
    def cmap_entries(self) -> int:
        return self.cmap_bytes // self.cmap_entry_bytes

    @property
    def cycles_per_ns(self) -> float:
        return self.pe_freq_ghz

    def ns_to_cycles(self, ns: float) -> float:
        return ns * self.pe_freq_ghz

    @classmethod
    def small(cls, **overrides) -> "FlexMinerConfig":
        """A deliberately tiny design point for functional checks.

        Differential verification simulates hundreds of small graphs per
        run; 4 PEs with a 1 kB c-map keep each simulation cheap while
        still exercising scheduling, the c-map, and the memory system.
        Timing fidelity is irrelevant there — only counts are compared.
        """
        params = dict(num_pes=4, cmap_bytes=1024)
        params.update(overrides)
        return cls(**params)

    def with_pes(self, num_pes: int) -> "FlexMinerConfig":
        """Copy with a different PE count (Fig. 13/15 sweeps)."""
        return replace(self, num_pes=num_pes)

    def with_cmap_bytes(self, cmap_bytes: int) -> "FlexMinerConfig":
        """Copy with a different c-map size (Fig. 14 sweep)."""
        return replace(self, cmap_bytes=cmap_bytes)

    def without_cmap(self) -> "FlexMinerConfig":
        return self.with_cmap_bytes(0)
