"""Hardware connectivity-map model (paper §VI).

The hardware c-map is a small scratchpad hash table: 4-byte vertex-id
keys, 1-byte depth-bitset values, simplified linear probing partitioned
into m banks so m successive slots are probed per cycle.  Two GPM
properties make deletion trivial (find-and-invalidate): updates happen in
bulk per DFS level and only existing keys are ever deleted, so the map
self-cleans in stack order during backtracking.

The model tracks *exact* occupancy and per-depth insertion lists so the
compiler's dynamic footprint estimation and the overflow fall-back of
§VI-B behave like the hardware.  Probe timing has two modes:

* ``exact=True`` — slots are simulated individually (hash = id mod
  capacity, banked linear probing); probe cycle counts are exact.  Used
  by unit tests and small runs.
* ``exact=False`` (default) — keys live in a dict and probe cycles use
  the standard expected-probe formula for linear probing at the current
  load factor, divided by the bank width.  Orders of magnitude faster
  with the same first-order behaviour ("most accesses take only a single
  cycle" below 75 % occupancy).

The analytic mode itself has two implementations selected by
``kernels``:

* ``kernels=False`` — the legacy per-key Python loop (the reference
  path kept alive by ``FlexMinerConfig.timing_kernels=False``);
* ``kernels=True`` (default) — vectorized batch accounting: values live
  in a dense numpy array indexed by vertex id and a whole level's probe
  cycles come from one closed-form pass (exclusive-cumsum occupancy into
  the expected-probe formula).  Because the per-key formula is evaluated
  elementwise in the same IEEE-754 order, the cycle counts — and every
  statistic — are bit-identical to the legacy loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from .config import FlexMinerConfig

__all__ = ["CMapStats", "InsertOutcome", "HardwareCMap"]


@dataclass
class CMapStats:
    """Access statistics for one PE's c-map."""

    inserts: int = 0
    updates: int = 0
    queries: int = 0
    deletes: int = 0
    insert_cycles: int = 0
    query_cycles: int = 0
    delete_cycles: int = 0
    overflows: int = 0

    @property
    def reads(self) -> int:
        return self.queries

    @property
    def writes(self) -> int:
        return self.inserts + self.updates + self.deletes

    @property
    def read_ratio(self) -> float:
        total = self.reads + self.writes
        return self.reads / total if total else 0.0

    @property
    def total_cycles(self) -> int:
        return self.insert_cycles + self.query_cycles + self.delete_cycles

    def as_dict(self) -> Dict[str, float]:
        """Flat export for run reports and the metrics registry."""
        return {
            "inserts": self.inserts,
            "updates": self.updates,
            "queries": self.queries,
            "deletes": self.deletes,
            "overflows": self.overflows,
            "total_cycles": self.total_cycles,
            "read_ratio": self.read_ratio,
        }


@dataclass(frozen=True)
class InsertOutcome:
    """Result of a bulk neighbor insertion at one DFS level."""

    accepted: bool
    cycles: int
    new_entries: int = 0


class HardwareCMap:
    """One PE's banked linear-probing connectivity map."""

    def __init__(
        self,
        capacity_entries: int,
        *,
        banks: int = 4,
        occupancy_threshold: float = 0.75,
        exact: bool = False,
        value_bits: int = 8,
        kernels: bool = True,
    ) -> None:
        if capacity_entries < 1:
            raise SimulationError("c-map needs at least one entry")
        self.capacity = capacity_entries
        self.banks = banks
        self.threshold = occupancy_threshold
        self.exact = exact
        self.value_bits = value_bits
        # Exact slot simulation is inherently per-key; the batch kernels
        # only apply to the analytic probe model.
        self.kernels = bool(kernels) and not exact
        self.stats = CMapStats()
        # Functional state: key -> depth bitset.  The legacy path keeps
        # a dict; the kernel path keeps a dense value array indexed by
        # vertex id (grown on demand) plus an occupancy counter.
        self._table: Dict[int, int] = {}
        self._values = np.zeros(0, dtype=np.uint32)
        self._occupancy = 0
        # Per-depth stack of (depth, ids actually written) for cleanup.
        self._level_stack: List[Tuple[int, np.ndarray]] = []
        # Observability: set by attach_tracer; None means no emission.
        self._trace = None
        self._clock = None
        self._trace_tid = 0
        if exact:
            self._slots = np.full(capacity_entries, -1, dtype=np.int64)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer, *, clock, tid: int = 0) -> None:
        """Emit cycle-domain instants for rare c-map incidents.

        ``clock`` supplies the owning PE's local time (the c-map itself
        is timeless); overflows and capacity rejections become ``instant``
        events on the PE's trace thread.
        """
        self._trace = tracer if tracer is not None and tracer.enabled else None
        self._clock = clock
        self._trace_tid = tid

    def _trace_overflow(self, depth: int, incoming: int) -> None:
        if self._trace is None:
            return
        from ..obs.trace import SIM_PID

        self._trace.instant(
            "cmap-overflow",
            self._clock(),
            pid=SIM_PID,
            tid=self._trace_tid,
            cat="cmap",
            args={
                "depth": depth,
                "incoming": incoming,
                "occupancy": self.occupancy,
                "capacity": self.capacity,
            },
        )

    # ------------------------------------------------------------------
    # Occupancy / footprint estimation (§VI-B)
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return self._occupancy if self.kernels else len(self._table)

    @property
    def load_factor(self) -> float:
        return self.occupancy / self.capacity

    def fits(self, incoming: int) -> bool:
        """Dynamic footprint check before fetching the neighbor list.

        The hardware knows the degree (from indptr) before the list
        arrives, so it can reject an insertion that would push occupancy
        past the threshold — the trigger for the SIU/SDU fall-back.
        """
        return (self.occupancy + incoming) <= self.threshold * self.capacity

    @classmethod
    def from_config(cls, config: FlexMinerConfig) -> Optional["HardwareCMap"]:
        """Build from an accelerator config; None when c-map is disabled."""
        if config.cmap_bytes == 0:
            return None
        return cls(
            config.cmap_entries,
            banks=config.cmap_banks,
            occupancy_threshold=config.cmap_occupancy_threshold,
            exact=config.cmap_exact,
            kernels=config.timing_kernels,
        )

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    def try_insert(self, ids: Sequence[int], depth: int) -> InsertOutcome:
        """Insert a (filtered) neighbor list for the given DFS depth.

        On success every id gets bit ``depth`` set (inserting a fresh
        entry when absent).  On projected overflow nothing is written and
        the caller must fall back to SIU/SDU for the consuming checks.
        """
        if depth >= self.value_bits:
            # Beyond the value width the c-map simply cannot represent
            # the level (paper §VII-D); treat like an overflow.
            self.stats.overflows += 1
            self._trace_overflow(depth, len(ids))
            return InsertOutcome(accepted=False, cycles=1)
        ids = np.asarray(ids, dtype=np.int64)
        if not self.fits(len(ids)):
            self.stats.overflows += 1
            self._trace_overflow(depth, len(ids))
            return InsertOutcome(accepted=False, cycles=1)

        bit = 1 << depth
        if self.kernels:
            cycles, new_entries = self._insert_kernel(ids, bit)
        else:
            cycles = 0
            new_entries = 0
            for key in ids.tolist():
                present = key in self._table
                cycles += self._probe_cycles(key, insert=not present)
                if present:
                    self._table[key] |= bit
                    self.stats.updates += 1
                else:
                    self._table[key] = bit
                    self.stats.inserts += 1
                    new_entries += 1
        self.stats.insert_cycles += cycles
        self._level_stack.append((depth, ids))
        return InsertOutcome(
            accepted=True, cycles=cycles, new_entries=new_entries
        )

    def remove_level(self, depth: int) -> int:
        """Backtrack cleanup: undo the most recent insertion level.

        Returns the cycle cost.  Raises if levels are popped out of
        stack order — the property the simplified deletion relies on.
        """
        if not self._level_stack:
            raise SimulationError("c-map remove with empty level stack")
        top_depth, ids = self._level_stack.pop()
        if top_depth != depth:
            raise SimulationError(
                f"c-map cleanup out of order: expected depth {top_depth}, "
                f"got {depth}"
            )
        bit = 1 << depth
        if self.kernels:
            cycles = self._remove_kernel(ids, bit)
        else:
            cycles = 0
            for key in ids.tolist():
                if key not in self._table:
                    raise SimulationError(
                        "deleting a key that was never inserted"
                    )
                cycles += self._probe_cycles(key, insert=False)
                value = self._table[key] & ~bit
                if value:
                    self._table[key] = value
                else:
                    del self._table[key]
                    if self.exact:
                        self._free_slot(key)
                self.stats.deletes += 1
        self.stats.delete_cycles += cycles
        return cycles

    def query(self, key: int) -> int:
        """Connectivity bitset for a vertex (0 when absent)."""
        self.stats.queries += 1
        self.stats.query_cycles += self._probe_cycles(key, insert=False)
        if self.kernels:
            return (
                int(self._values[key]) if key < self._values.size else 0
            )
        return self._table.get(key, 0)

    def query_batch(self, n: int) -> int:
        """Cycle cost of n pipelined queries (values come from the
        functional engine; only timing is needed)."""
        self.stats.queries += n
        cycles = math.ceil(n * self._expected_probe_groups())
        self.stats.query_cycles += cycles
        return cycles

    def reset(self) -> None:
        """Invalidate everything (end of task, paper §VI)."""
        if self.kernels:
            # Only keys named by outstanding levels can be live, so a
            # stack walk clears the dense array without a full zero.
            for _, ids in self._level_stack:
                if len(ids):
                    self._values[ids] = 0
            self._occupancy = 0
        else:
            self._table.clear()
        self._level_stack.clear()
        if self.exact:
            self._slots.fill(-1)

    # ------------------------------------------------------------------
    # Vectorized batch kernels (kernels=True)
    # ------------------------------------------------------------------
    def _ensure_capacity(self, max_key: int) -> None:
        if max_key < self._values.size:
            return
        grown = np.zeros(
            max(2 * self._values.size, max_key + 1), dtype=np.uint32
        )
        grown[: self._values.size] = self._values
        self._values = grown

    def _batch_cycles(self, occupancies: np.ndarray) -> int:
        """Probe cycles for a batch, one closed-form pass.

        ``occupancies[i]`` is the occupancy the i-th access observes.
        Elementwise this is exactly ``_probe_cycles``: same divisions,
        same clamp, same ceil — so the sum is bit-identical to the
        legacy per-key loop.
        """
        rho = np.minimum(occupancies / self.capacity, 0.95)
        probes = 0.5 * (1.0 + 1.0 / (1.0 - rho))
        groups = np.maximum(1.0, probes / self.banks)
        return int(np.ceil(groups).astype(np.int64).sum())

    #: Below this batch length the numpy fixed costs (fancy indexing,
    #: cumsum, temporaries) exceed the per-key loop they replace; short
    #: batches run a scalar pass over the same dense array with the same
    #: per-key formula, so the cycle counts are identical either way.
    VECTOR_MIN = 24

    def _insert_scalar(self, keys: List[int], bit: int) -> Tuple[int, int]:
        values = self._values
        size = values.size
        capacity = self.capacity
        banks = self.banks
        occupancy = self._occupancy
        cycles = 0
        new_entries = 0
        for key in keys:
            if key < 0:
                raise SimulationError("c-map keys must be non-negative ids")
            if key >= size:
                self._ensure_capacity(key)
                values = self._values
                size = values.size
            # Inline _probe_cycles at the occupancy this key observes.
            rho = occupancy / capacity
            if rho > 0.95:
                rho = 0.95
            groups = 0.5 * (1.0 + 1.0 / (1.0 - rho)) / banks
            if groups < 1.0:
                groups = 1.0
            cycles += math.ceil(groups)
            value = values.item(key)
            if value:
                values[key] = value | bit
            else:
                values[key] = bit
                occupancy += 1
                new_entries += 1
        self._occupancy = occupancy
        self.stats.inserts += new_entries
        self.stats.updates += len(keys) - new_entries
        return cycles, new_entries

    def _insert_kernel(self, ids: np.ndarray, bit: int) -> Tuple[int, int]:
        n = len(ids)
        if n == 0:
            return 0, 0
        if n < self.VECTOR_MIN or not bool(np.all(ids[1:] > ids[:-1])):
            # Short, duplicate-carrying, or unsorted batches: the scalar
            # pass replays the legacy per-key semantics over the dense
            # array (a key's observed occupancy depends on earlier keys
            # in the same batch).
            return self._insert_scalar(ids.tolist(), bit)
        if int(ids[0]) < 0:
            raise SimulationError("c-map keys must be non-negative ids")
        self._ensure_capacity(int(ids[-1]))
        values = self._values
        vals = values[ids]
        new = vals == 0
        new_entries = int(new.sum())
        # Occupancy observed by the i-th key: entries present before the
        # batch plus the new entries earlier keys created (exclusive
        # cumulative sum) — the "compute the statistics once per batch"
        # form of the legacy per-key re-derivation.
        steps = np.cumsum(new)
        cycles = self._batch_cycles(self._occupancy + steps - new)
        values[ids] = vals | np.uint32(bit)
        self._occupancy += new_entries
        self.stats.inserts += new_entries
        self.stats.updates += n - new_entries
        return cycles, new_entries

    def _remove_scalar(self, keys: List[int], bit: int) -> int:
        values = self._values
        capacity = self.capacity
        banks = self.banks
        occupancy = self._occupancy
        cycles = 0
        mask = ~bit
        for i, key in enumerate(keys):
            value = values.item(key)
            if value == 0:
                # Mirror the legacy mid-loop raise: earlier keys stay
                # deleted and counted, the failing key charges nothing.
                self._occupancy = occupancy
                self.stats.deletes += i
                raise SimulationError(
                    "deleting a key that was never inserted"
                )
            rho = occupancy / capacity
            if rho > 0.95:
                rho = 0.95
            groups = 0.5 * (1.0 + 1.0 / (1.0 - rho)) / banks
            if groups < 1.0:
                groups = 1.0
            cycles += math.ceil(groups)
            value &= mask
            values[key] = value
            if value == 0:
                occupancy -= 1
        self._occupancy = occupancy
        self.stats.deletes += len(keys)
        return cycles

    def _remove_kernel(self, ids: np.ndarray, bit: int) -> int:
        n = len(ids)
        if n == 0:
            return 0
        if n < self.VECTOR_MIN or not bool(np.all(ids[1:] > ids[:-1])):
            return self._remove_scalar(ids.tolist(), bit)
        values = self._values
        vals = values[ids]
        if bool(np.any(vals == 0)):
            raise SimulationError("deleting a key that was never inserted")
        remaining = vals & np.uint32(~bit & 0xFFFFFFFF)
        removed = remaining == 0
        steps = np.cumsum(removed)
        cycles = self._batch_cycles(self._occupancy - (steps - removed))
        values[ids] = remaining
        self._occupancy -= int(removed.sum())
        self.stats.deletes += n
        return cycles

    # ------------------------------------------------------------------
    # Probe timing
    # ------------------------------------------------------------------
    def _expected_probe_groups(self, extra: int = 0) -> float:
        """Expected probe cycles per access at the current load factor.

        Linear probing expected probes ~ (1 + 1/(1-rho)) / 2; the m-way
        banking probes m successive slots per cycle.
        """
        rho = min((self.occupancy + extra) / self.capacity, 0.95)
        probes = 0.5 * (1.0 + 1.0 / (1.0 - rho))
        return max(1.0, probes / self.banks)

    def _probe_cycles(self, key: int, *, insert: bool) -> int:
        if not self.exact:
            return math.ceil(self._expected_probe_groups())
        # Exact banked linear probing over simulated slots.
        start = key % self.capacity
        for distance in range(self.capacity):
            slot = (start + distance) % self.capacity
            occupant = self._slots[slot]
            if occupant == key or occupant == -1:
                if insert and occupant == -1:
                    self._slots[slot] = key
                return distance // self.banks + 1
        raise SimulationError("c-map slots exhausted despite threshold")

    def _free_slot(self, key: int) -> None:
        start = key % self.capacity
        for distance in range(self.capacity):
            slot = (start + distance) % self.capacity
            if self._slots[slot] == key:
                self._slots[slot] = -1
                return
        raise SimulationError(f"key {key} missing from exact slot array")
