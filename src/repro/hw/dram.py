"""DDR4 DRAM timing model (DRAMsim3 stand-in, paper §VII-A).

Models the first-order DDR4 behaviour that matters for GPM traffic:
channel-level data-bus serialization (bandwidth), per-bank row buffers
(row hits cost tCAS only, conflicts pay precharge + activate), and bank
interleaving on line addresses.  The paper's configuration — 64 GB
DDR4-2666 over four channels, same as the CPU baseline — is the default
(:class:`~repro.hw.config.DramConfig`).

Requests carry the issuing PE's local timestamp; each channel keeps a
busy-until horizon so bandwidth saturation shows up as queueing latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import DramConfig, FlexMinerConfig

__all__ = ["DramStats", "DramModel"]


@dataclass
class DramStats:
    accesses: int = 0
    row_hits: int = 0
    row_conflicts: int = 0
    queue_cycles: float = 0.0
    busy_cycles: float = 0.0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict:
        """Flat export for run reports and counter-track samples."""
        return {
            "accesses": self.accesses,
            "row_hits": self.row_hits,
            "row_conflicts": self.row_conflicts,
            "row_hit_rate": self.row_hit_rate,
            "queue_cycles": self.queue_cycles,
            "busy_cycles": self.busy_cycles,
        }


class DramModel:
    """Per-channel, per-bank DDR4 timing at PE clock granularity."""

    def __init__(self, config: FlexMinerConfig) -> None:
        dram: DramConfig = config.dram
        self.config = dram
        self.line_bytes = config.line_bytes
        to_cycles = config.ns_to_cycles
        self.t_cas = to_cycles(dram.t_cas_ns)
        self.t_rcd = to_cycles(dram.t_rcd_ns)
        self.t_rp = to_cycles(dram.t_rp_ns)
        self.t_burst = to_cycles(dram.t_burst_ns)
        self.stats = DramStats()
        n_banks = dram.num_channels * dram.banks_per_channel
        self._open_row = np.full(n_banks, -1, dtype=np.int64)
        # Leaky-bucket backlog per channel: requests arrive stamped with
        # their PE's *local* time, which is not globally ordered, so an
        # absolute busy-until horizon would inflate queueing wildly.
        # Instead each channel drains its backlog at one cycle per cycle
        # of (non-decreasing) observed time.
        self._backlog = np.zeros(dram.num_channels, dtype=np.float64)
        self._last_seen = np.zeros(dram.num_channels, dtype=np.float64)
        # Observability: sampled counter-track emission (attach_tracer).
        self._trace = None
        self._sample_every = 0

    def attach_tracer(self, tracer, *, every: int = 64) -> None:
        """Emit a cycle-domain ``dram`` counter sample every ``every``-th
        access; queueing shows bandwidth saturation over time."""
        self._trace = tracer if tracer is not None and tracer.enabled else None
        self._sample_every = max(1, every)

    # ------------------------------------------------------------------
    def _map(self, line: int) -> tuple:
        """Line address -> (channel, global bank index, row)."""
        channel = line % self.config.num_channels
        bank_local = (line // self.config.num_channels) % (
            self.config.banks_per_channel
        )
        bank = channel * self.config.banks_per_channel + bank_local
        row = (line * self.line_bytes) // self.config.row_bytes
        return channel, bank, row

    def access(self, line: int, now: float) -> float:
        """Service one line fill issued at PE-cycle ``now``.

        Returns the latency in PE cycles until the data is back.
        """
        channel, bank, row = self._map(line)
        self.stats.accesses += 1

        if self._open_row[bank] == row:
            array_latency = self.t_cas
            self.stats.row_hits += 1
        else:
            array_latency = self.t_rp + self.t_rcd + self.t_cas
            self.stats.row_conflicts += 1
            self._open_row[bank] = row

        # Drain the channel backlog for the time elapsed since the last
        # request this channel observed (clamped: local times may run
        # backwards across PEs).
        elapsed = now - float(self._last_seen[channel])
        if elapsed > 0:
            self._backlog[channel] = max(
                0.0, float(self._backlog[channel]) - elapsed
            )
            self._last_seen[channel] = now
        queue_delay = float(self._backlog[channel])
        self._backlog[channel] = queue_delay + self.t_burst

        self.stats.queue_cycles += queue_delay
        self.stats.busy_cycles += self.t_burst

        if (
            self._trace is not None
            and self.stats.accesses % self._sample_every == 0
        ):
            from ..obs.trace import SIM_PID

            self._trace.counter(
                "dram",
                now,
                {
                    "accesses": self.stats.accesses,
                    "row_hit_rate": self.stats.row_hit_rate,
                    "backlog": float(self._backlog[channel]),
                },
                pid=SIM_PID,
            )
        return queue_delay + array_latency + self.t_burst

    # ------------------------------------------------------------------
    @property
    def peak_bandwidth_gbs(self) -> float:
        return self.config.peak_bandwidth_gbs
