"""fmlint: AST-based determinism lint for the repro tree (``FM2xx``).

PR 2 and PR 4 promise *bit-identical* results — the parallel miner's
OpCounters and the parallel simulator's SimReport must match the serial
references exactly at any worker count.  Those guarantees rest on code
conventions nothing enforced until now:

* **FM201** — no iteration over unordered ``set``/``frozenset``
  expressions in the ``engine``/``hw`` hot paths (hash order leaks into
  op order and merge order);
* **FM202** — no float literals flowing into ``*cycles`` accumulators
  (cycle accounting is integer-exact so per-task deltas re-group
  losslessly);
* **FM203** — no direct mutation of metric instruments
  (``registry.counter("x").value = ...`` bypasses the ``inc``/``set``
  API the observability layer audits);
* **FM204** — every locally created ``shared_memory.SharedMemory`` must
  be closed/unlinked or handed off (leaked segments outlive the
  process);
* **FM205** — no wall-clock or RNG calls inside the simulator
  (``hw/``): cycle accounting must be a pure function of the inputs;
* **FM206** — no direct ``perf_counter``/``process_time``/``monotonic``
  calls in ``engine/``/``hw/`` (dotted or from-imported): timing flows
  through ``repro.obs`` (LaneRecorder / PhaseProfiler / Tracer) so the
  profile is the single source of wall-clock truth;
* **FM207** — no ``multiprocessing`` ``Process``/``Pool`` construction
  in ``engine/`` outside :mod:`repro.engine.pool`: per-request process
  spawning is exactly the overhead the persistent pool exists to
  amortize, so all worker lifecycles live in one audited module.
* **FM208** — no per-element Python ``for`` loops over ndarray contents
  inside :mod:`repro.engine.kernels` hot functions: the kernels module
  exists to keep set algebra vectorized, and an interpreter-speed loop
  over array elements silently re-introduces the O(n) Python overhead
  the frontier engine batches away.  Documented scalar fallbacks carry
  the standard per-line suppression.

Rules are deliberately *syntactic*: they flag the patterns that caused
(or nearly caused) real drift bugs, run in milliseconds, and are each
unit-tested on a failing and a passing snippet.  Findings can be
suppressed per line (``# fmlint: disable=FM201``) or per file
(``# fmlint: skip-file`` in the first ten lines).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .diagnostics import AnalysisReport, Diagnostic, register_code
from .flowcheck import FLOW_CODES, flow_findings

__all__ = [
    "DEFAULT_RULES",
    "FLOW_RULES",
    "LintRule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
]

FM200 = register_code(
    "FM200", "file could not be parsed", "error",
    "fix the syntax error before linting",
)
FM201 = register_code(
    "FM201", "iteration over an unordered set expression", "error",
    "wrap the iterable in sorted(...); hash order is not deterministic "
    "across runs and workers",
)
FM202 = register_code(
    "FM202", "float literal flows into a cycle accumulator", "error",
    "keep cycle accounting integral (int()/math.ceil the contribution); "
    "per-task deltas must re-group exactly",
)
FM203 = register_code(
    "FM203", "metric instrument mutated directly", "error",
    "use inc()/set() on the instrument instead of writing its fields",
)
FM204 = register_code(
    "FM204", "SharedMemory created without close/unlink or hand-off",
    "error",
    "close and unlink the segment, or return/store the handle so an "
    "owner can",
)
FM205 = register_code(
    "FM205", "wall-clock or RNG call inside the simulator", "error",
    "simulator accounting must be a pure function of its inputs; pass "
    "times/seeds in explicitly",
)
FM206 = register_code(
    "FM206", "direct wall-clock timing call outside repro.obs", "error",
    "route timing through repro.obs (LaneRecorder, PhaseProfiler or "
    "Tracer) so busy accounting and profiles share one clock",
)
FM207 = register_code(
    "FM207", "worker process constructed outside repro.engine.pool",
    "error",
    "route worker lifecycles through repro.engine.pool (MinerPool, or "
    "ParallelMiner's pool delegation); per-request Process/Pool spawns "
    "re-pay the startup cost the persistent pool amortizes",
)

FM208 = register_code(
    "FM208", "per-element Python loop over ndarray contents in a kernel",
    "error",
    "vectorize with numpy (searchsorted/cumsum/fancy indexing) or move "
    "the loop out of repro.engine.kernels; a documented scalar fallback "
    "may stay with '# fmlint: disable=FM208' on the loop line",
)

_SUPPRESS_RE = re.compile(
    r"#\s*fmlint:\s*disable(?:=(?P<codes>[A-Z0-9,\s]+))?"
)
_SKIP_FILE_RE = re.compile(r"#\s*fmlint:\s*skip-file")


@dataclass
class LintContext:
    """Everything a rule needs about one file."""

    path: str  #: display path (repo-relative where possible)
    tree: ast.AST
    lines: Sequence[str]


@dataclass(frozen=True)
class LintRule:
    """One lint rule: a code plus a per-file AST check.

    ``paths`` holds path fragments (posix style); a non-empty tuple
    scopes the rule to files whose display path contains one of them.
    """

    code: str
    check: "RuleCheck"
    paths: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if not self.paths:
            return True
        posix = path.replace(os.sep, "/")
        return any(fragment in posix for fragment in self.paths)


class RuleCheck:
    """Protocol-ish callable: (LintContext) -> iterator of (line, msg)."""

    def __call__(self, ctx: LintContext) -> Iterator[Tuple[int, str]]:
        raise NotImplementedError  # pragma: no cover


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def _dotted_name(node: ast.AST) -> str:
    """'time.perf_counter' for the func of a call, '' when dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_set_expression(node: ast.AST) -> bool:
    """Syntactically guaranteed to evaluate to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        return name in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
    ):
        return _is_set_expression(node.left) or _is_set_expression(
            node.right
        )
    return False


_INT_COERCIONS = {"int", "round", "ceil", "floor", "len"}


def _has_uncoerced_float(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        if name.rsplit(".", 1)[-1] in _INT_COERCIONS:
            return False
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    return any(
        _has_uncoerced_float(child) for child in ast.iter_child_nodes(node)
    )


def _target_name(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
def _check_unordered_iteration(
    ctx: LintContext,
) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(ctx.tree):
        iters: List[ast.AST] = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            # Sets/dicts built from sets stay unordered — harmless.
            # Lists/sequences built from sets bake hash order in.
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expression(it):
                yield (
                    it.lineno,
                    "iterating an unordered set expression",
                )


def _check_float_cycles(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.AugAssign):
            continue
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            continue
        name = _target_name(node.target)
        if not name.endswith("cycles"):
            continue
        if _has_uncoerced_float(node.value):
            yield (
                node.lineno,
                f"float literal accumulated into {name!r}",
            )


_INSTRUMENT_FACTORIES = {"counter", "gauge", "histogram"}


def _check_metric_mutation(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(ctx.tree):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets.extend(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets.append(node.target)
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            value = target.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _INSTRUMENT_FACTORIES
            ):
                yield (
                    target.lineno,
                    f"writes .{target.attr} on a "
                    f"{value.func.attr}() instrument",
                )


def _check_shared_memory(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        created: Dict[str, int] = {}
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and _dotted_name(node.value.func).rsplit(".", 1)[-1]
                == "SharedMemory"
            ):
                created[node.targets[0].id] = node.lineno
        if not created:
            continue
        released: Set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Name) or node.id not in created:
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            parent = _PARENTS.get(id(node))
            # `.buf` access only *borrows* the mapping; anything else
            # (close/unlink, return, call argument, storage) counts as
            # releasing or handing off ownership.
            if (
                isinstance(parent, ast.Attribute)
                and parent.attr == "buf"
            ):
                continue
            released.add(node.id)
        for name, lineno in created.items():
            if name not in released:
                yield (
                    lineno,
                    f"SharedMemory bound to {name!r} is never closed, "
                    "unlinked, or handed off",
                )


#: Parent map for the file currently being linted (rebuilt per file).
_PARENTS: Dict[int, ast.AST] = {}


def _index_parents(tree: ast.AST) -> None:
    _PARENTS.clear()
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            _PARENTS[id(child)] = parent


_WALLCLOCK_PREFIXES = ("time.", "random.", "datetime.")
_WALLCLOCK_EXACT = {"default_rng"}


def _check_wallclock(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted_name(node.func)
        if not name:
            continue
        hit = (
            name.startswith(_WALLCLOCK_PREFIXES)
            or ".random." in name
            or name in _WALLCLOCK_EXACT
            or name.endswith(".default_rng")
        )
        if hit:
            yield (node.lineno, f"call to {name}()")


#: Clock functions of the ``time`` module FM206 polices.
_TIMING_FUNCS = {
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "monotonic",
    "monotonic_ns",
}


def _check_direct_timing(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    """FM206: dotted *and* from-imported clock calls in engine//hw/.

    ``from time import perf_counter`` would slip past the dotted-name
    check of FM205, so the rule first collects local aliases bound by
    from-imports of :mod:`time` and then flags bare calls to them too.
    """
    bare: Dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _TIMING_FUNCS:
                    bare[alias.asname or alias.name] = alias.name
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted_name(node.func)
        if not name:
            continue
        leaf = name.rsplit(".", 1)[-1]
        if name.startswith("time.") and leaf in _TIMING_FUNCS:
            yield (node.lineno, f"direct call to {name}()")
        elif "." not in name and name in bare:
            yield (
                node.lineno,
                f"direct call to {name}() "
                f"(from-imported time.{bare[name]})",
            )


#: Constructors FM207 polices.  Matched on the attribute leaf of a
#: dotted call (``mp.Process``, ``ctx.Pool``) and on bare names bound by
#: ``from multiprocessing[...] import Process/Pool``.
_PROCESS_CTORS = {"Process", "Pool"}


def _check_process_construction(
    ctx: LintContext,
) -> Iterator[Tuple[int, str]]:
    """FM207: Process/Pool construction in engine/ outside the pool.

    :mod:`repro.engine.pool` is the one sanctioned home for worker
    lifecycles (the ``paths`` scope cannot express exclusions, so the
    carve-out lives here).
    """
    posix = ctx.path.replace(os.sep, "/")
    if posix.endswith("engine/pool.py"):
        return
    bare: Dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module == "multiprocessing"
            or node.module.startswith("multiprocessing.")
        ):
            for alias in node.names:
                if alias.name in _PROCESS_CTORS:
                    bare[alias.asname or alias.name] = alias.name
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted_name(node.func)
        if not name:
            continue
        if "." in name:
            if name.rsplit(".", 1)[-1] in _PROCESS_CTORS:
                yield (node.lineno, f"constructs {name}()")
        elif name in bare:
            yield (
                node.lineno,
                f"constructs {name}() "
                f"(from-imported multiprocessing {bare[name]})",
            )


def _is_ndarray_annotation(node: ast.AST) -> bool:
    """``np.ndarray`` / ``ndarray`` / ``Optional[np.ndarray]`` — but NOT
    container types like ``Sequence[np.ndarray]``, whose loops are
    per-array rather than per-element."""
    if isinstance(node, ast.Attribute):
        return node.attr == "ndarray"
    if isinstance(node, ast.Name):
        return node.id == "ndarray"
    if isinstance(node, ast.Subscript):
        name = _dotted_name(node.value)
        if name.rsplit(".", 1)[-1] == "Optional":
            return _is_ndarray_annotation(node.slice)
    return False


def _ndarray_params(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Set[str]:
    """Parameter names annotated as ``np.ndarray`` (top level)."""
    names: Set[str] = set()
    args = (
        list(func.args.posonlyargs)
        + list(func.args.args)
        + list(func.args.kwonlyargs)
    )
    for arg in args:
        if arg.annotation is not None and _is_ndarray_annotation(
            arg.annotation
        ):
            names.add(arg.arg)
    return names


def _is_len_of(node: ast.AST, names: Set[str]) -> bool:
    return (
        isinstance(node, ast.Call)
        and _dotted_name(node.func) == "len"
        and bool(node.args)
        and isinstance(node.args[0], ast.Name)
        and node.args[0].id in names
    )


def _iterates_elements(node: ast.AST, names: Set[str]) -> bool:
    """The iterable walks an ndarray parameter element-by-element."""
    if isinstance(node, ast.Name):
        return node.id in names
    if isinstance(node, ast.Subscript) and isinstance(
        node.value, ast.Name
    ):
        # A slice of an ndarray parameter still yields its elements.
        return node.value.id in names
    if isinstance(node, ast.Call):
        fname = _dotted_name(node.func)
        if fname in ("range", "enumerate", "zip", "reversed"):
            return any(
                _iterates_elements(arg, names) or _is_len_of(arg, names)
                for arg in node.args
            )
    return False


def _check_elementwise_loops(
    ctx: LintContext,
) -> Iterator[Tuple[int, str]]:
    """FM208: interpreter-speed element loops inside kernel functions."""
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        names = _ndarray_params(func)
        if not names:
            continue
        for node in func.body:
            for inner in ast.walk(node):
                if isinstance(inner, ast.For) and _iterates_elements(
                    inner.iter, names
                ):
                    yield (
                        inner.lineno,
                        f"Python for loop over ndarray contents in "
                        f"{func.name}()",
                    )
                elif isinstance(
                    inner,
                    (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
                ):
                    for gen in inner.generators:
                        if _iterates_elements(gen.iter, names):
                            yield (
                                inner.lineno,
                                f"comprehension over ndarray contents in "
                                f"{func.name}()",
                            )


class _FlowRule:
    """Adapter exposing one FM30x dataflow code as a LintRule check.

    All ten rules share a single CFG/fixpoint run per file —
    :func:`repro.analysis.flowcheck.flow_findings` memoizes on the
    parsed tree — so the dataflow pass costs one analysis, not ten.
    """

    def __init__(self, code: str) -> None:
        self.code = code

    def __call__(self, ctx: LintContext) -> Iterator[Tuple[int, str]]:
        yield from flow_findings(ctx.tree).get(self.code, [])


#: dataflow checkers run where the shared-memory/lease/lock machinery
#: lives: the engine (pool, parallel, frontier) and the serving layer.
FLOW_RULE_PATHS: Tuple[str, ...] = ("engine/", "serve/", "graph/", "hw/")

FLOW_RULES: Tuple[LintRule, ...] = tuple(
    LintRule(code, _FlowRule(code), paths=FLOW_RULE_PATHS)
    for code in FLOW_CODES
)

DEFAULT_RULES: Tuple[LintRule, ...] = (
    LintRule(
        FM201, _check_unordered_iteration, paths=("engine/", "hw/")
    ),
    LintRule(FM202, _check_float_cycles, paths=("engine/", "hw/")),
    LintRule(FM203, _check_metric_mutation),
    LintRule(FM204, _check_shared_memory),
    LintRule(FM205, _check_wallclock, paths=("hw/",)),
    LintRule(FM206, _check_direct_timing, paths=("engine/", "hw/")),
    LintRule(FM207, _check_process_construction, paths=("engine/",)),
    LintRule(
        FM208, _check_elementwise_loops, paths=("engine/kernels.py",)
    ),
) + FLOW_RULES


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _suppressions(lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
    """lineno -> suppressed codes (None = all codes)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = {
                c.strip() for c in codes.split(",") if c.strip()
            }
    return out


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[LintRule] = DEFAULT_RULES,
) -> List[Diagnostic]:
    """Lint one source blob; returns the surviving findings."""
    lines = source.splitlines()
    if any(_SKIP_FILE_RE.search(line) for line in lines[:10]):
        return []
    tree = ast.parse(source, filename=path)
    _index_parents(tree)
    suppressed = _suppressions(lines)
    findings: List[Diagnostic] = []
    for rule in rules:
        if not rule.applies_to(path):
            continue
        ctx = LintContext(path=path, tree=tree, lines=lines)
        for lineno, message in rule.check(ctx):
            if lineno in suppressed:
                allowed = suppressed[lineno]
                if allowed is None or rule.code in allowed:
                    continue
            findings.append(
                Diagnostic(
                    code=rule.code,
                    message=message,
                    location=f"{path}:{lineno}",
                )
            )
    findings.sort(key=lambda d: (d.location, d.code))
    return findings


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    out.append(os.path.join(dirpath, filename))
    return sorted(dict.fromkeys(out))


def lint_paths(
    paths: Sequence[str],
    rules: Sequence[LintRule] = DEFAULT_RULES,
) -> AnalysisReport:
    """Lint every python file under ``paths`` into one report."""
    files = iter_python_files(paths)
    rep = AnalysisReport(subject=f"fmlint:{','.join(paths)}")
    rep.data["files"] = len(files)
    rep.data["rules"] = [rule.code for rule in rules]
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            rep.extend(lint_source(source, path, rules))
        except SyntaxError as exc:
            rep.add(FM200, f"could not parse: {exc}", location=path)
    return rep
