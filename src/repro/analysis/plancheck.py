"""Static execution-plan verifier (``FM1xx`` diagnostics).

The differential subsystem (PR 3) proves plans *empirically*: run them
and compare against the ESU oracle.  This module proves the same
contract *statically*, in milliseconds, before anything runs:

* **FM10x** — the matching order is connected and every step's
  adjacency/exclusion constraints are exactly the pattern's edges to
  ancestor depths (AutoMine/GraphZero check the same property on their
  generated loop nests);
* **FM11x** — the symmetry order is *sound and complete* against the
  pattern's automorphism group: for every relative id-ordering of the
  pattern vertices exactly one automorphism satisfies the bounds.  More
  than one means an unbroken automorphism (double counting); zero means
  a legitimate embedding is never counted.  The check is algebraic on
  ``Pattern.automorphisms()`` — it enumerates the k! vertex orderings of
  the *pattern*, never a data graph;
* **FM12x** — the injectivity-skip flag (``covers_all_ancestors``) and
  count-only-leaf usage are legal;
* **FM13x** — DAG orientation is claimed only where it is correct
  (uniformly-labeled cliques, with symmetry bounds cleared);
* **FM14x** — frontier-memoization hints are consistent (bases exist,
  are memoized, and base+remainder reconstructs the step constraints);
* **FM15x** — c-map hints reference existing levels and fit the
  :class:`~repro.hw.config.FlexMinerConfig` the plan will run on.

``check_plan`` also attaches a static shape/cost summary (reusing
:mod:`repro.compiler.estimate` when a graph is supplied) so ``flexminer
check-plan`` doubles as a plan inspector.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # import cycle: hw.config pulls in the compiler
    from ..graph import CSRGraph
    from ..hw.config import FlexMinerConfig

from ..compiler.hints import cmap_needed_depths
from ..compiler.plan import ExecutionPlan, MultiPlan, PlanNode
from .diagnostics import AnalysisReport, register_code

__all__ = ["check_plan", "check_multi_plan", "plan_shape"]

# -- FM10x: structure and connectivity ---------------------------------
FM100 = register_code(
    "FM100", "malformed plan structure", "error",
    "rebuild the plan through compile_pattern or parse_ir",
)
FM101 = register_code(
    "FM101", "disconnected matching order", "error",
    "reorder so every vertex has a pattern edge to an earlier one",
)
FM102 = register_code(
    "FM102", "step adjacency mismatch", "error",
    "set the step's connected set to the pattern edges into ancestors",
)
FM103 = register_code(
    "FM103", "exclusion set contradicts plan semantics", "error",
    "induced plans exclude exactly the non-adjacent ancestors; "
    "edge-induced plans exclude nothing",
)
FM104 = register_code(
    "FM104", "label constraint mismatch", "error",
    "each step's label must equal the pattern label of its vertex",
)

# -- FM11x: symmetry soundness/completeness ----------------------------
FM110 = register_code(
    "FM110", "automorphism not broken (double counting)", "error",
    "add symmetry bounds until exactly one automorphism survives "
    "every id-ordering",
)
FM111 = register_code(
    "FM111", "valid embedding excluded by symmetry bounds", "error",
    "drop the over-tight bound; some id-orderings match no automorphism",
)
FM112 = register_code(
    "FM112", "symmetry_conditions and step bounds disagree", "error",
    "every (earlier, later) condition must appear as an upper bound on "
    "the later step, and vice versa",
)
FM113 = register_code(
    "FM113", "symmetry check skipped (pattern too large)", "warning",
    "the k!·|Aut| enumeration is capped; verify large plans empirically",
)

# -- FM12x: injectivity / count-only leaves ----------------------------
FM120 = register_code(
    "FM120", "injectivity-skip flag inconsistent", "error",
    "covers_all_ancestors must hold exactly when the connected set "
    "spans every ancestor depth",
)
FM121 = register_code(
    "FM121", "counting node has children", "error",
    "a pattern-completing tree node must be a leaf: the count-only "
    "path never descends past it",
)

# -- FM13x: orientation ------------------------------------------------
FM130 = register_code(
    "FM130", "orientation on a non-clique pattern", "error",
    "the degree-ordered DAG transform is only counting-safe for "
    "uniformly labeled cliques",
)
FM131 = register_code(
    "FM131", "oriented plan retains symmetry bounds", "error",
    "orientation already breaks all automorphisms; residual bounds "
    "drop valid matches",
)

# -- FM14x: frontier memoization ---------------------------------------
FM140 = register_code(
    "FM140", "frontier base is not memoized", "error",
    "mark the base step memoize_frontier (the hardware only keeps "
    "memoized lists in the frontier table)",
)
FM141 = register_code(
    "FM141", "frontier base + remainder misses step constraints", "error",
    "base constraints plus extras must reconstruct the step's full "
    "connected/disconnected sets",
)
FM142 = register_code(
    "FM142", "memoized frontier never reused", "warning",
    "clear memoize_frontier or point a later step's base_step at it",
)

# -- FM15x: c-map hints ------------------------------------------------
FM150 = register_code(
    "FM150", "c-map insert never consumed", "warning",
    "drop the insert hint; no later step checks connectivity against it",
)
FM151 = register_code(
    "FM151", "c-map hint references a nonexistent level", "error",
    "insert depths must be existing non-leaf levels and filters must "
    "reference strictly earlier depths",
)
FM152 = register_code(
    "FM152", "c-map value width cannot represent the insert depth",
    "warning",
    "every insert at this depth overflows to the SIU on this config",
)
FM153 = register_code(
    "FM153", "c-map hints on a config without a c-map", "warning",
    "the config disables the c-map; hints are dead weight",
)

# -- FM17x: batch-frontier (level-synchronous) legality ----------------
FM170 = register_code(
    "FM170", "plan is ineligible for batch-frontier execution", "info",
    "patterns with fewer than three vertices (and multi-pattern trees) "
    "run on the recursive path; batch_frontier=True is a silent no-op",
)
FM171 = register_code(
    "FM171", "leaf shape does not reduce to one varying operand",
    "warning",
    "the batch leaf kernel needs a single varying intersection or "
    "difference at the last level; this plan falls back to per-vertex "
    "leaf counting inside the level-synchronous engine",
)
FM172 = register_code(
    "FM172", "frontier base references a depth with no level store",
    "error",
    "level-synchronous execution keeps candidate stores for depths >= 1 "
    "only; a base_step of 0 (the root) cannot be composed and crashes "
    "the batch engine",
)
FM173 = register_code(
    "FM173", "frontier row limit cannot engage the recursion fallback",
    "error",
    "frontier_row_limit must be a positive integer: the over-budget "
    "bailout compares materialized rows against it, and a non-positive "
    "limit makes the bit-identical fallback unreachable or permanent",
)
FM174 = register_code(
    "FM174", "frontier row limit overflows the segment key space",
    "error",
    "segmented kernels key rows as row*num_vertices+value in int64; "
    "keep frontier_row_limit * num_vertices below 2**63",
)
FM175 = register_code(
    "FM175", "multi-pattern plan is forced onto the recursive path",
    "info",
    "the level-synchronous engine only runs single-pattern plans; the "
    "multi-pattern tree executes recursively regardless of "
    "batch_frontier",
)

# -- FM16x: multi-plan trees -------------------------------------------
FM160 = register_code(
    "FM160", "pattern leaf coverage broken", "error",
    "each pattern index must complete at exactly one tree node",
)
FM161 = register_code(
    "FM161", "tree depth discontinuity", "error",
    "every child step must sit one depth below its parent",
)

#: ``HardwareCMap`` value-field width; ``from_config`` never overrides
#: the default, so depths at or beyond it always overflow (§VII-D).
_CMAP_VALUE_BITS = 8

#: k!·|Aut| budget for the exhaustive symmetry check.  Every named
#: library pattern (k ≤ 5) is far below it; a 6-clique (720·720) still
#: fits, beyond that FM113 reports the skip.
_SYMMETRY_BUDGET = 600_000


def plan_shape(plan: ExecutionPlan) -> Dict[str, object]:
    """Static shape summary: what the hardware will be asked to hold."""
    return {
        "levels": plan.num_levels,
        "induced": plan.induced,
        "oriented": plan.oriented,
        "symmetry_bounds": sum(len(s.upper_bounds) for s in plan.steps),
        "memoized_frontiers": sum(
            1 for s in plan.steps if s.memoize_frontier
        ),
        "frontier_reuses": sum(
            1 for s in plan.steps if s.base_step is not None
        ),
        "cmap_inserts": list(plan.cmap_insert_depths),
        "cmap_filters": {
            str(k): v for k, v in sorted(plan.cmap_insert_filter.items())
        },
    }


def _check_structure(plan: ExecutionPlan, rep: AnalysisReport) -> bool:
    """FM100: re-validate the dataclass invariants defensively.

    Construction already enforces these; a plan mutated through
    ``object.__setattr__`` (or a future deserializer bug) should still
    fail the checker, not corrupt the deeper passes.
    """
    k = plan.pattern.num_vertices
    ok = True
    if sorted(plan.matching_order) != list(range(k)):
        rep.add(
            FM100,
            f"matching_order {plan.matching_order} is not a "
            f"permutation of 0..{k - 1}",
        )
        ok = False
    if len(plan.steps) != k - 1:
        rep.add(
            FM100,
            f"expected {k - 1} steps, found {len(plan.steps)}",
        )
        ok = False
    for d, step in enumerate(plan.steps, start=1):
        if step.depth != d:
            rep.add(
                FM100,
                f"step {d} carries depth {step.depth}",
                location=f"step {d}",
            )
            ok = False
            continue
        refs = (
            (step.extender,)
            + step.connected
            + step.disconnected
            + step.upper_bounds
        )
        bad = [r for r in refs if not 0 <= r < d]
        if bad:
            rep.add(
                FM100,
                f"step {d} references non-ancestor depth(s) {bad}",
                location=f"step {d}",
            )
            ok = False
    return ok


def _check_connectivity(plan: ExecutionPlan, rep: AnalysisReport) -> None:
    pattern = plan.pattern
    order = plan.matching_order
    for step in plan.steps:
        d = step.depth
        loc = f"step {d}"
        ancestors_adj = {
            j
            for j in range(d)
            if pattern.has_edge(order[j], order[d])
        }
        if not ancestors_adj:
            rep.add(
                FM101,
                f"pattern vertex {order[d]} (depth {d}) has no edge "
                "to any ancestor",
                location=loc,
            )
            continue
        full = set(step.full_connected)
        if full != ancestors_adj:
            missing = sorted(ancestors_adj - full)
            extra = sorted(full - ancestors_adj)
            detail = []
            if missing:
                detail.append(f"missing adjacency to depth(s) {missing}")
            if extra:
                detail.append(
                    f"requires adjacency to non-adjacent depth(s) {extra}"
                )
            rep.add(FM102, "; ".join(detail), location=loc)
        expected_disc = (
            set(range(d)) - ancestors_adj if plan.induced else set()
        )
        disc = set(step.disconnected)
        if disc != expected_disc:
            rep.add(
                FM103,
                f"exclusion set {sorted(disc)} != expected "
                f"{sorted(expected_disc)} for "
                + ("induced" if plan.induced else "edge-induced")
                + " semantics",
                location=loc,
            )


def _check_labels(plan: ExecutionPlan, rep: AnalysisReport) -> None:
    pattern = plan.pattern
    order = plan.matching_order
    if plan.root_label != pattern.label(order[0]):
        rep.add(
            FM104,
            f"root_label {plan.root_label!r} != pattern label "
            f"{pattern.label(order[0])!r} of vertex {order[0]}",
            location="root",
        )
    for step in plan.steps:
        want = pattern.label(order[step.depth])
        if step.label != want:
            rep.add(
                FM104,
                f"step label {step.label!r} != pattern label {want!r} "
                f"of vertex {order[step.depth]}",
                location=f"step {step.depth}",
            )


def _bound_conditions(plan: ExecutionPlan) -> Set[Tuple[int, int]]:
    """(earlier, later) pairs the steps actually enforce."""
    return {
        (u, step.depth)
        for step in plan.steps
        for u in step.upper_bounds
    }


def _check_symmetry(plan: ExecutionPlan, rep: AnalysisReport) -> None:
    pattern = plan.pattern
    order = plan.matching_order
    enforced = _bound_conditions(plan)
    declared = set(plan.symmetry_conditions)
    if declared != enforced:
        rep.add(
            FM112,
            f"declared conditions {sorted(declared)} != step bounds "
            f"{sorted(enforced)}",
            location="symmetry",
        )

    if plan.oriented:
        uniform = len(set(pattern.labels)) == 1
        if not (pattern.is_clique() and uniform):
            rep.add(
                FM130,
                "oriented plan for a pattern that is not a uniformly "
                "labeled clique",
                location="symmetry",
            )
        if enforced or declared:
            rep.add(
                FM131,
                f"oriented plan still enforces {sorted(enforced or declared)}",
                location="symmetry",
            )
        return

    autos = pattern.automorphisms()
    k = pattern.num_vertices
    budget = len(autos) * _factorial(k)
    if budget > _SYMMETRY_BUDGET:
        rep.add(
            FM113,
            f"k!·|Aut| = {budget} exceeds the {_SYMMETRY_BUDGET} "
            "enumeration budget",
            location="symmetry",
        )
        return

    # Conditions in pattern-vertex space: (pa, pb) means the vertex
    # matched to pb must take a smaller id than the one matched to pa.
    pv_conds = [(order[a], order[b]) for a, b in enforced]
    over: Optional[Tuple[Tuple[int, ...], int]] = None
    under: Optional[Tuple[int, ...]] = None
    for ranking in itertools.permutations(range(k)):
        # ranking[v] = relative id rank the data graph hands vertex v.
        survivors = sum(
            1
            for sigma in autos
            if all(
                ranking[sigma[pb]] < ranking[sigma[pa]]
                for pa, pb in pv_conds
            )
        )
        if survivors == 0 and under is None:
            under = ranking
        elif survivors > 1 and over is None:
            over = (ranking, survivors)
        if over is not None and under is not None:
            break
    if over is not None:
        ranking, survivors = over
        rep.add(
            FM110,
            f"id-ordering {ranking} of the pattern vertices satisfies "
            f"the bounds under {survivors} automorphisms "
            f"(|Aut| = {len(autos)}); each such ordering is counted "
            f"{survivors} times",
            location="symmetry",
        )
    if under is not None:
        rep.add(
            FM111,
            f"id-ordering {under} of the pattern vertices satisfies "
            "the bounds under no automorphism; embeddings with that "
            "id-ordering are never counted",
            location="symmetry",
        )


def _factorial(n: int) -> int:
    out = 1
    for i in range(2, n + 1):
        out *= i
    return out


def _check_injectivity(plan: ExecutionPlan, rep: AnalysisReport) -> None:
    for step in plan.steps:
        expected = len(set(step.full_connected)) == step.depth
        if bool(step.covers_all_ancestors) != expected:
            rep.add(
                FM120,
                f"covers_all_ancestors={step.covers_all_ancestors} but "
                f"connected ancestors {sorted(step.full_connected)} "
                + ("span" if expected else "do not span")
                + f" all {step.depth} ancestor depth(s); the engines "
                "would "
                + ("apply a redundant" if expected else "skip the")
                + " injectivity filter",
                location=f"step {step.depth}",
            )


def _check_frontier_hints(
    plan: ExecutionPlan, rep: AnalysisReport
) -> None:
    by_depth = {s.depth: s for s in plan.steps}
    used: Set[int] = set()
    for step in plan.steps:
        if step.base_step is None:
            continue
        used.add(step.base_step)
        loc = f"step {step.depth}"
        base = by_depth.get(step.base_step)
        if base is None:
            continue  # FM100 already covers depth gaps
        if not base.memoize_frontier:
            rep.add(
                FM140,
                f"base_step {step.base_step} is not marked "
                "memoize_frontier",
                location=loc,
            )
        b_conn = set(base.full_connected)
        b_disc = set(base.disconnected)
        conn = set(step.full_connected)
        disc = set(step.disconnected)
        if not (b_conn <= conn and b_disc <= disc):
            rep.add(
                FM141,
                f"base step {step.base_step} constraints "
                f"(CA={sorted(b_conn)}, D={sorted(b_disc)}) are not a "
                f"subset of this step's (CA={sorted(conn)}, "
                f"D={sorted(disc)}); its frontier is not a candidate "
                "superset",
                location=loc,
            )
            continue
        got_conn = b_conn | set(step.extra_connected)
        got_disc = b_disc | set(step.extra_disconnected)
        if got_conn != conn or got_disc != disc:
            rep.add(
                FM141,
                f"base + remainders reconstruct (CA={sorted(got_conn)}, "
                f"D={sorted(got_disc)}) but the step requires "
                f"(CA={sorted(conn)}, D={sorted(disc)})",
                location=loc,
            )
    for step in plan.steps:
        if step.memoize_frontier and step.depth not in used:
            rep.add(
                FM142,
                "frontier is memoized but no later step composes on it",
                location=f"step {step.depth}",
            )


def _check_cmap_hints(
    plan: ExecutionPlan,
    rep: AnalysisReport,
    config: "Optional[FlexMinerConfig]" = None,
) -> None:
    k = plan.pattern.num_vertices
    # A depth's connectivity is consumed directly by a step's live c-map
    # checks, and indirectly through any frontier composed on it.
    by_depth = {s.depth: s for s in plan.steps}
    consumed: Dict[int, Set[int]] = {}
    for step in plan.steps:
        checks = set(cmap_needed_depths(step))
        base = step.base_step
        while base is not None:
            checks |= consumed.get(base, set())
            base = by_depth[base].base_step if base in by_depth else None
        consumed[step.depth] = checks
    consumers: Dict[int, List[int]] = {}
    for step in plan.steps:
        for j in consumed[step.depth]:
            consumers.setdefault(j, []).append(step.depth)

    for j in plan.cmap_insert_depths:
        loc = f"cmap insert {j}"
        if not 0 <= j < k - 1:
            rep.add(
                FM151,
                f"insert depth {j} is not a non-leaf level of a "
                f"{k}-level plan",
                location=loc,
            )
            continue
        if j not in consumers:
            rep.add(
                FM150,
                f"no step checks connectivity against depth {j}",
                location=loc,
            )
        if config is not None and j >= _CMAP_VALUE_BITS:
            rep.add(
                FM152,
                f"depth {j} >= value width {_CMAP_VALUE_BITS}",
                location=loc,
            )
    inserts = set(plan.cmap_insert_depths)
    for j, filt in plan.cmap_insert_filter.items():
        loc = f"cmap filter {j}"
        if j not in inserts:
            rep.add(
                FM151,
                f"filter for depth {j} which is never inserted",
                location=loc,
            )
        if filt is not None and not 0 <= filt < j:
            rep.add(
                FM151,
                f"filter depth {filt} is not strictly earlier than the "
                f"insert depth {j} (unknown at insert time)",
                location=loc,
            )
    if (
        config is not None
        and plan.cmap_insert_depths
        and config.cmap_entries == 0
    ):
        rep.add(
            FM153,
            "plan carries c-map insert hints but the config allocates "
            "no c-map entries",
            location="cmap",
        )


#: mirrors ``FrontierExplorer.frontier_row_limit``'s default budget.
_FRONTIER_ROW_LIMIT_DEFAULT = 1 << 22

#: segmented kernels key (row, value) pairs as ``row*keyspace+value``
#: in int64; the proof obligation is ``limit * keyspace < 2**63``.
_SEGMENT_KEY_BITS = 63


def batch_leaf_shape(plan: ExecutionPlan) -> Optional[Tuple[str, Optional[int]]]:
    """Port of the engine's ``_batch_leaf_shape`` decision, statically.

    Returns the ``(kind, fixed_slot)`` the level-synchronous engine
    derives for the last level — ``("memo", None)``,
    ``("memo-diff", None)``, ``("direct", i)``, ``("diff-fixed", i)``,
    ``("diff-varying", i)`` — or ``None`` when the leaf op chain does
    not reduce to a single varying intersection/difference and the
    engine falls back to per-vertex leaf counting.  Must stay
    expression-for-expression in sync with
    ``repro.engine.explore.FrontierExplorer._batch_leaf_shape``; the
    fuzz invariant in the test suite pins the two together.
    """
    leaf_depth = len(plan.steps)
    if leaf_depth < 2:
        return None
    step = plan.steps[leaf_depth - 1]
    if step.label is not None:
        return None
    d = leaf_depth - 1
    if step.base_step is not None:
        extra_c = tuple(step.extra_connected)
        extra_d = tuple(step.extra_disconnected)
        if extra_c == (d,) and not extra_d and step.covers_all_ancestors:
            return ("memo", None)
        if extra_d == (d,) and not extra_c:
            return ("memo-diff", None)
        return None
    connected = tuple(step.connected)
    disconnected = tuple(step.disconnected)
    if not disconnected and step.covers_all_ancestors:
        if (
            step.extender == d
            and len(connected) == 1
            and connected[0] != d
        ):
            return ("direct", connected[0])
        if step.extender != d and connected == (d,):
            return ("direct", step.extender)
        return None
    if not connected and len(disconnected) == 1:
        if step.extender != d and disconnected == (d,):
            return ("diff-fixed", step.extender)
        if step.extender == d and disconnected[0] != d:
            return ("diff-varying", disconnected[0])
    return None


def _check_batch_frontier(
    plan: ExecutionPlan,
    rep: AnalysisReport,
    *,
    graph: "Optional[CSRGraph]" = None,
    frontier_row_limit: Optional[int] = None,
    batch_frontier: bool = False,
) -> None:
    """FM17x: prove (or refute) legality of ``batch_frontier=True``.

    Always attaches a ``data["batch_frontier"]`` proof section — the
    batch/recursive routing decision plus one entry per obligation.
    The decision-grade diagnostics (FM170/FM171) only fire when the
    caller opted in with ``batch_frontier=True``; the hard errors
    (FM172-FM174) fire whenever the obligation is outright violated,
    because those plans crash or drift the moment anyone flips the
    engine flag.
    """
    leaf_depth = len(plan.steps)
    limit = (
        _FRONTIER_ROW_LIMIT_DEFAULT
        if frontier_row_limit is None
        else frontier_row_limit
    )
    obligations: List[Dict[str, object]] = []
    reasons: List[str] = []

    eligible = leaf_depth >= 2
    if not eligible:
        reasons.append(
            f"pattern has {plan.num_levels} level(s); the batch engine "
            "needs a leaf depth of at least 2"
        )
        if batch_frontier:
            rep.add(FM170, reasons[-1], location="batch-frontier")

    shape = batch_leaf_shape(plan)
    if eligible:
        if shape is None:
            obligations.append(
                {
                    "code": FM171,
                    "status": "fallback",
                    "detail": "leaf shape does not reduce; per-vertex "
                    "leaf counting inside the level-synchronous engine",
                }
            )
            if batch_frontier:
                rep.add(
                    FM171,
                    "leaf ops are not a single varying "
                    "intersection/difference; the batch leaf kernel "
                    "does not apply",
                    location=f"step {leaf_depth}",
                )
        else:
            obligations.append(
                {
                    "code": FM171,
                    "status": "proved",
                    "detail": f"leaf shape {shape[0]}"
                    + (
                        f" (fixed slot {shape[1]})"
                        if shape[1] is not None
                        else ""
                    ),
                }
            )

    # level stores exist for depths >= 1 only: a base_step of 0 can
    # never be composed level-synchronously (the root has no store)
    bad_bases = [
        step.depth for step in plan.steps if step.base_step == 0
    ]
    for depth in bad_bases:
        rep.add(
            FM172,
            "base_step 0 points at the root, which has no level store "
            "in batch execution",
            location=f"step {depth}",
        )
    obligations.append(
        {
            "code": FM172,
            "status": "violated" if bad_bases else "proved",
            "detail": "all frontier bases reference stored levels"
            if not bad_bases
            else f"step(s) {bad_bases} compose on the root",
        }
    )

    if limit < 1:
        rep.add(
            FM173,
            f"frontier_row_limit={limit} can never admit a frontier; "
            "every task would take the fallback before mining anything",
            location="batch-frontier",
        )
        obligations.append(
            {"code": FM173, "status": "violated", "detail": f"limit {limit}"}
        )
    else:
        detail = f"row limit {limit}; fallback reachable"
        if graph is not None:
            from ..compiler.estimate import estimate_plan

            over = [
                lv.depth
                for lv in estimate_plan(plan, graph)
                if lv.nodes > limit
            ]
            detail += (
                f"; estimate engages it first at depth {over[0]}"
                if over
                else "; estimates stay under the limit on this graph"
            )
        obligations.append(
            {"code": FM173, "status": "proved", "detail": detail}
        )

    if graph is None:
        obligations.append(
            {
                "code": FM174,
                "status": "unverified",
                "detail": "segment-key overflow needs the graph's "
                "vertex count; pass graph= to prove it",
            }
        )
    else:
        keyspace = max(1, graph.num_vertices)
        if limit >= 1 and limit * keyspace >= 1 << _SEGMENT_KEY_BITS:
            rep.add(
                FM174,
                f"frontier_row_limit={limit} times keyspace "
                f"{keyspace} overflows the int64 segment keys",
                location="batch-frontier",
            )
            obligations.append(
                {
                    "code": FM174,
                    "status": "violated",
                    "detail": f"{limit} * {keyspace} >= 2**{_SEGMENT_KEY_BITS}",
                }
            )
        else:
            obligations.append(
                {
                    "code": FM174,
                    "status": "proved",
                    "detail": f"{limit} * {keyspace} < 2**{_SEGMENT_KEY_BITS}",
                }
            )

    decision = "batch" if eligible and not bad_bases and limit >= 1 else "recursive"
    if decision == "recursive" and eligible:
        reasons.append("an FM17x obligation is violated")
    rep.data["batch_frontier"] = {
        "eligible": eligible,
        "decision": decision,
        "leaf_shape": (
            {"kind": shape[0], "fixed_slot": shape[1]}
            if shape is not None
            else {"kind": None, "fixed_slot": None}
        ),
        "row_limit": limit,
        "row_limit_default": frontier_row_limit is None,
        "reasons": reasons,
        "obligations": obligations,
    }


def check_plan(
    plan: ExecutionPlan,
    *,
    config: "Optional[FlexMinerConfig]" = None,
    graph: "Optional[CSRGraph]" = None,
    frontier_row_limit: Optional[int] = None,
    batch_frontier: bool = False,
) -> AnalysisReport:
    """Statically verify an execution plan; returns an
    :class:`~repro.analysis.diagnostics.AnalysisReport` whose truthiness
    is "no error-severity findings".

    ``config`` (a :class:`~repro.hw.config.FlexMinerConfig`) enables the
    capacity/width checks; ``graph`` adds per-level cardinality
    estimates from :func:`repro.compiler.estimate.estimate_plan` to the
    report's ``data`` and lets the FM17x pass prove the segment-key
    obligation.  ``frontier_row_limit`` overrides the engine-default
    row budget the FM17x proofs assume; ``batch_frontier=True`` opts in
    to the FM170/FM171 routing diagnostics (the proof section in
    ``data["batch_frontier"]`` is always attached).
    """
    name = plan.pattern.name or f"pattern<{plan.pattern.num_vertices}>"
    rep = AnalysisReport(subject=f"plan:{name}")
    rep.data["shape"] = plan_shape(plan)
    if not _check_structure(plan, rep):
        return rep  # deeper passes assume well-formed indices
    _check_connectivity(plan, rep)
    _check_labels(plan, rep)
    _check_symmetry(plan, rep)
    _check_injectivity(plan, rep)
    _check_frontier_hints(plan, rep)
    _check_cmap_hints(plan, rep, config)
    _check_batch_frontier(
        plan,
        rep,
        graph=graph,
        frontier_row_limit=frontier_row_limit,
        batch_frontier=batch_frontier,
    )
    if graph is not None:
        from ..compiler.estimate import estimate_plan

        rep.data["estimate"] = [
            {
                "depth": lv.depth,
                "nodes": lv.nodes,
                "candidates_scanned": lv.candidates_scanned,
            }
            for lv in estimate_plan(plan, graph)
        ]
    return rep


def check_multi_plan(
    plan: MultiPlan, *, batch_frontier: bool = False
) -> AnalysisReport:
    """Structural checks for a multi-pattern dependency tree.

    The per-pattern constraint semantics live in the merged steps (each
    chain is checked when its single-pattern plan is compiled); here we
    verify the tree itself: depth continuity, one completing node per
    pattern, and that completing nodes are leaves (the count-only path
    never descends past them).  The FM17x proof section records that a
    multi-pattern tree is always routed recursively;
    ``batch_frontier=True`` additionally surfaces that as an FM175
    info diagnostic.
    """
    rep = AnalysisReport(subject=f"multiplan:{plan.num_patterns}-patterns")
    rep.data["batch_frontier"] = {
        "eligible": False,
        "decision": "recursive",
        "leaf_shape": {"kind": None, "fixed_slot": None},
        "row_limit": None,
        "row_limit_default": None,
        "reasons": [
            f"{plan.num_patterns}-pattern tree: the level-synchronous "
            "engine only runs single-pattern plans"
        ],
        "obligations": [],
    }
    if batch_frontier:
        rep.add(
            FM175,
            f"{plan.num_patterns}-pattern tree executes recursively; "
            "batch_frontier has no effect",
            location="batch-frontier",
        )
    seen: Dict[int, int] = {}

    def walk(node: PlanNode, parent_depth: int) -> None:
        if node.step is not None and node.step.depth != parent_depth + 1:
            rep.add(
                FM161,
                f"node at depth {node.step.depth} under parent at depth "
                f"{parent_depth}",
                location=f"depth {node.step.depth}",
            )
        if node.pattern_index is not None:
            seen[node.pattern_index] = seen.get(node.pattern_index, 0) + 1
            if node.children:
                rep.add(
                    FM121,
                    f"node completing pattern {node.pattern_index} has "
                    f"{len(node.children)} children",
                    location=f"pattern {node.pattern_index}",
                )
        for child in node.children:
            walk(child, node.depth)

    walk(plan.root, -1)
    for index in range(plan.num_patterns):
        hits = seen.get(index, 0)
        if hits != 1:
            rep.add(
                FM160,
                f"pattern {index} completes at {hits} node(s)",
                location=f"pattern {index}",
            )
    extra = sorted(set(seen) - set(range(plan.num_patterns)))
    if extra:
        rep.add(
            FM160,
            f"tree completes unknown pattern index(es) {extra}",
            location="tree",
        )
    return rep
