"""Finding baselines: ratchet the lint gate without fixing everything.

A baseline file records the findings a tree is *known* to have, so the
lint gate can fail on anything new while tolerating the recorded debt.
The workflow mirrors mypy/ruff baselines:

* ``flexminer lint --update-baseline`` writes the current findings to
  ``analysis-baseline.json``;
* ``flexminer lint --baseline analysis-baseline.json`` subtracts the
  recorded findings from the report — only *new* findings gate;
* a baseline entry that no longer matches anything is **stale** and
  itself fails the gate (code :data:`FM299`): suppressions must be
  deleted the moment the debt is paid, or they mask regressions that
  happen to produce the same fingerprint later.

Fingerprints are ``(path, code, message)`` — deliberately excluding the
line number, so unrelated edits that shift a finding up or down the file
do not churn the baseline.  Two identical findings in one file collapse
to one fingerprint with a count; the baseline only absorbs as many
duplicates as it recorded.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .diagnostics import AnalysisReport, Diagnostic, register_code

__all__ = [
    "Baseline",
    "FM299",
    "apply_baseline",
    "baseline_from_report",
    "fingerprint",
    "load_baseline",
    "save_baseline",
]

FM299 = register_code(
    "FM299",
    "stale baseline entry",
    "error",
    "the suppressed finding no longer occurs; remove the entry from the "
    "baseline file (or regenerate it with --update-baseline)",
)

#: (path, code, message) — line numbers deliberately excluded.
Fingerprint = Tuple[str, str, str]

_VERSION = 1


def _split_location(location: str) -> str:
    """Path part of a ``path:line`` lint location (line dropped)."""
    path, sep, line = location.rpartition(":")
    if sep and line.isdigit():
        return path
    return location


def fingerprint(diag: Diagnostic) -> Fingerprint:
    return (_split_location(diag.location), diag.code, diag.message)


@dataclass
class Baseline:
    """A multiset of suppressed finding fingerprints."""

    entries: Counter = field(default_factory=Counter)
    path: str = ""

    def __len__(self) -> int:
        return sum(self.entries.values())

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": _VERSION,
            "entries": [
                {"path": p, "code": c, "message": m, "count": n}
                for (p, c, m), n in sorted(self.entries.items())
            ],
        }


def baseline_from_report(report: AnalysisReport) -> Baseline:
    """Snapshot every finding in ``report`` as a baseline."""
    return Baseline(entries=Counter(fingerprint(d) for d in report.findings))


def load_baseline(path: str) -> Baseline:
    """Parse a baseline file; raises ``ValueError`` on a bad payload."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise ValueError(
            f"{path}: not a flexminer baseline (want version {_VERSION})"
        )
    entries: Counter = Counter()
    for row in payload.get("entries", []):
        key = (str(row["path"]), str(row["code"]), str(row["message"]))
        entries[key] += int(row.get("count", 1))
    return Baseline(entries=entries, path=path)


def save_baseline(path: str, baseline: Baseline) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(baseline.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def apply_baseline(
    report: AnalysisReport, baseline: Baseline
) -> AnalysisReport:
    """Subtract baselined findings; flag stale entries as :data:`FM299`.

    Returns a new report whose findings are (a) every finding not
    absorbed by the baseline, plus (b) one error per *unused* baseline
    entry.  ``report`` itself is not mutated.
    """
    remaining = Counter(baseline.entries)
    kept: List[Diagnostic] = []
    for diag in report.findings:
        key = fingerprint(diag)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            kept.append(diag)

    filtered = AnalysisReport(subject=report.subject, findings=kept)
    filtered.data.update(report.data)
    filtered.data["baseline"] = {
        "path": baseline.path,
        "suppressed": len(baseline) - sum(remaining.values()),
        "stale": sum(remaining.values()),
    }
    where = baseline.path or "baseline"
    for (path, code, message), count in sorted(remaining.items()):
        for _ in range(count):
            filtered.add(
                FM299,
                f"baseline suppresses {code} ({message!r}) in {path}, "
                "but the finding no longer occurs",
                location=where,
            )
    return filtered
