"""Dataflow checkers (``FM30x``) over the :mod:`repro.analysis.flow` CFG.

Two checker families run on every function of a linted file:

* **Resource lifecycle** (FM300–FM303, FM307, FM308) — a *must*
  analysis proving every locally created shared-memory segment
  (``SharedMemory`` / ``SharedCSRBuffers`` / ``_OwnedBlock`` /
  ``share_array``), ``MinerPool`` and pool lease
  (``pool.acquire()`` / ``lease()`` / ``_leased_entry()``) reaches its
  release calls on **all** paths out of the function — the normal exit
  and the implicit raise exit.  Ownership hand-off (returning the
  handle, storing it into a field or container, passing it to a
  callee) ends the local obligation; a handle that is *both* handed
  off and released is flagged as ambiguous.
* **Lock discipline** (FM304–FM306, FM309) — a *must* lock-set
  analysis through ``with`` blocks and explicit
  ``acquire()``/``release()`` pairs, flagging blocking calls made
  while any lock is held and locks that survive to an exit.  A
  module-level aggregation pass (FM305) infers which ``self._field``
  each lock guards (two or more mutation sites under the same lock)
  and flags mutations of a guarded field made without it.

The analyses are intraprocedural and path-insensitive; states live on
the CFG from :func:`repro.analysis.flow.build_cfg`, whose separate
exception edges are what make "the ``close()`` that raises skips the
``unlink()``" expressible at all.  Nested ``def``/``lambda`` bodies
are skipped when classifying a statement — a closure capturing a
handle is not an ownership transfer, and its calls do not run here.

:func:`flow_findings` is the entry point :mod:`repro.analysis.fmlint`
wraps into per-code :class:`~repro.analysis.fmlint.LintRule` instances,
so suppression comments, baselines and the CLI exit contract all apply
unchanged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .diagnostics import register_code
from .flow import (
    CFG,
    FlowNode,
    ForwardAnalysis,
    build_cfg,
    dotted_name,
    function_defs,
    root_name,
    run_forward,
)

__all__ = ["FLOW_CODES", "check_functions", "flow_findings"]

FM300 = register_code(
    "FM300", "shared resource may leak on a normal path", "error",
    "close/unlink (or hand off) the segment before every return; wrap "
    "the use in try/finally",
)
FM301 = register_code(
    "FM301", "shared resource leaks on an exception path", "error",
    "an exception between creation and release (or between close and "
    "unlink) abandons the segment; release it in a finally or except "
    "block",
)
FM302 = register_code(
    "FM302", "pool lease is not released on every path", "error",
    "pair acquire()/lease() with release() in a finally block, or "
    "return the leased handle so the caller owns it",
)
FM303 = register_code(
    "FM303", "ambiguous resource ownership", "warning",
    "the handle is both handed off (stored/returned/passed) and "
    "released locally depending on the path; pick one owner",
)
FM304 = register_code(
    "FM304", "blocking call while a lock is held", "error",
    "release the lock before queue.get/Future.result/join/wait/"
    "sleep/shutdown; holding it across a blocking call can deadlock "
    "every other thread",
)
FM305 = register_code(
    "FM305", "guarded field mutated without its lock", "warning",
    "other methods mutate this field under a lock; take the same lock "
    "here (or document the single-threaded phase with a suppression)",
)
FM306 = register_code(
    "FM306", "lock leaks on an exception path", "error",
    "an exception after acquire() skips release(); use 'with lock:' "
    "or a try/finally",
)
FM307 = register_code(
    "FM307", "release without a matching acquire", "warning",
    "the handle is already released on this path; a second release "
    "raises or corrupts the refcount",
)
FM308 = register_code(
    "FM308", "live resource rebound", "warning",
    "reassigning the only name holding an unreleased resource leaks "
    "it; release the old handle first",
)
FM309 = register_code(
    "FM309", "lock still held at function exit", "error",
    "an explicitly acquired lock must be released before returning "
    "unless handing it off is the documented contract",
)

#: every code :func:`flow_findings` can emit, in report order.
FLOW_CODES: Tuple[str, ...] = (
    FM300, FM301, FM302, FM303, FM304,
    FM305, FM306, FM307, FM308, FM309,
)

Finding = Tuple[int, str]

_SHM_CTORS = frozenset(
    {"SharedMemory", "SharedCSRBuffers", "_OwnedBlock"}
)
_POOL_CTORS = frozenset({"MinerPool"})
_LEASE_CALLS = frozenset({"lease", "_leased_entry"})
_MUTATING_METHODS = frozenset(
    {
        "append", "add", "clear", "discard", "extend", "insert",
        "pop", "popitem", "remove", "setdefault", "update",
    }
)

# resource status lattice, least-released first
_RANK = {"live": 0, "closed": 1, "done": 2, "transferred": 3}

# var -> (kind, status, creation line)
ResourceState = Tuple[Tuple[str, Tuple[str, str, int]], ...]
# held locks as (lock id, "with" | "explicit")
LockState = FrozenSet[Tuple[str, str]]


def _shallow_walk(stmt: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into deferred bodies
    (nested functions, lambdas, classes) or into compound-statement
    sub-blocks (the CFG visits those as their own nodes)."""
    queue: List[ast.AST] = [stmt]
    while queue:
        node = queue.pop()
        yield node
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        if isinstance(node, (ast.If, ast.While)):
            queue.append(node.test)
            continue
        if isinstance(node, (ast.For, ast.AsyncFor)):
            queue.extend([node.target, node.iter])
            continue
        if isinstance(node, (ast.With, ast.AsyncWith)):
            queue.extend(item.context_expr for item in node.items)
            continue
        if isinstance(node, (ast.Try, ast.Match)):
            continue
        queue.extend(ast.iter_child_nodes(node))


def _calls(stmt: ast.AST) -> List[ast.Call]:
    return [n for n in _shallow_walk(stmt) if isinstance(n, ast.Call)]


def _call_leaf(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return ""


def _receiver_root(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute):
        return root_name(call.func.value)
    return ""


def _assign_name_targets(stmt: ast.AST) -> List[str]:
    """Plain-``Name`` binding targets of an assignment-ish statement."""
    out: List[str] = []
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, ast.Name):
            out.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            out.extend(
                e.id for e in target.elts if isinstance(e, ast.Name)
            )
    return out


_STORING_METHODS = frozenset(
    {"append", "add", "insert", "put", "push", "register", "setdefault",
     "store", "submit"}
)


def _captures(call: ast.Call) -> bool:
    """Calls that take ownership of their arguments: constructors
    (CamelCase leaf) and container/queue storing methods."""
    leaf = _call_leaf(call).lstrip("_")
    return bool(leaf) and (
        leaf[:1].isupper() or leaf in _STORING_METHODS
    )


def _value_stores(value: ast.AST, var: str) -> bool:
    """Is the bare name ``var`` stored by this value expression —
    directly, inside a tuple/list/dict literal, a conditional, or a
    capturing call's arguments?  Attribute/subscript reads rooted at
    ``var`` do not count."""
    stack: List[ast.AST] = [value]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            if node.id == var:
                return True
        elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            stack.extend(node.elts)
        elif isinstance(node, ast.Dict):
            stack.extend(node.values)
            stack.extend(k for k in node.keys if k is not None)
        elif isinstance(node, ast.IfExp):
            stack.extend([node.body, node.orelse])
        elif isinstance(node, ast.Starred):
            stack.append(node.value)
        elif isinstance(node, ast.Call) and _captures(node):
            stack.extend(node.args)
            stack.extend(kw.value for kw in node.keywords)
    return False


def _for_targets(stmt: ast.AST) -> List[str]:
    if not isinstance(stmt, (ast.For, ast.AsyncFor)):
        return []
    target = stmt.target
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        return [e.id for e in target.elts if isinstance(e, ast.Name)]
    return []


# ----------------------------------------------------------------------
# Resource lifecycle (FM300-FM303, FM307, FM308)
# ----------------------------------------------------------------------
def _pair_vars(func: ast.AST) -> Set[str]:
    """Local names that see both ``.close()`` and ``.unlink()`` —
    duck-typed shared-memory owners (e.g. the teardown loop variable)."""
    closed: Set[str] = set()
    unlinked: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            root = root_name(node.func.value)
            if not root or root == "self":
                continue
            if node.func.attr == "close":
                closed.add(root)
            elif node.func.attr == "unlink":
                unlinked.add(root)
    return closed & unlinked


@dataclass
class _ResourceEffects:
    """Outcome of abstractly executing one statement."""

    normal: Dict[str, Tuple[str, str, int]]
    onraise: Dict[str, Tuple[str, str, int]]
    findings: List[Tuple[str, int, str]]


class _ResourceAnalysis(ForwardAnalysis[ResourceState]):
    def __init__(self, func: ast.AST) -> None:
        self.pairs = _pair_vars(func)

    # -- lattice -------------------------------------------------------
    def initial(self) -> ResourceState:
        return ()

    def join(self, a: ResourceState, b: ResourceState) -> ResourceState:
        da, db = dict(a), dict(b)
        out: Dict[str, Tuple[str, str, int]] = {}
        for var in set(da) | set(db):
            if var not in da:
                out[var] = db[var]
            elif var not in db:
                out[var] = da[var]
            else:
                out[var] = self._join_one(da[var], db[var])
        return tuple(sorted(out.items()))

    @staticmethod
    def _join_one(
        a: Tuple[str, str, int], b: Tuple[str, str, int]
    ) -> Tuple[str, str, int]:
        kind = a[0]
        line = min(a[2], b[2])
        sa, sb = a[1], b[1]
        if sa == sb:
            return (kind, sa, line)
        ranked = sorted((sa, sb), key=lambda s: _RANK.get(s, 9))
        if ranked == ["done", "transferred"]:
            # both outcomes are terminal-safe; keep "transferred" so a
            # later release on the merged path still raises FM303
            return (kind, "transferred", line)
        return (kind, ranked[0], line)

    # -- transfer ------------------------------------------------------
    def transfer(
        self, node: FlowNode, state: ResourceState
    ) -> Tuple[ResourceState, ResourceState]:
        fx = self.apply(node, state)
        return (
            tuple(sorted(fx.normal.items())),
            tuple(sorted(fx.onraise.items())),
        )

    def apply(
        self, node: FlowNode, state: ResourceState
    ) -> _ResourceEffects:
        """Abstractly execute ``node``; also yields the per-node
        findings (double release, live rebind) for the reporting pass."""
        env: Dict[str, Tuple[str, str, int]] = dict(state)
        findings: List[Tuple[str, int, str]] = []
        stmt = node.stmt
        if stmt is None or node.kind in (
            "with-enter", "with-exit", "with-unwind",
            "except-dispatch", "handler-bind", "finally-unwind",
        ):
            return _ResourceEffects(env, dict(env), findings)
        line = node.line

        # fresh loop bindings kill the previous iteration's state; they
        # sit on the body edge only (never the zero-iteration exit)
        if node.kind == "loop-bind":
            for name in _for_targets(stmt):
                env.pop(name, None)
                if name in self.pairs:
                    env[name] = ("shm", "live", line)
            return _ResourceEffects(env, dict(env), findings)
        if node.kind == "loop-head":
            return _ResourceEffects(env, dict(env), findings)

        # 1. releases advance state on the normal AND exception edge:
        #    if close() itself raises, the segment still counts closed
        #    (so a missing unlink surfaces as FM301, and the blessed
        #    try/finally close() pattern stays clean).
        for call in _calls(stmt):
            leaf = _call_leaf(call)
            root = _receiver_root(call)
            if not root or root == "self" or root not in env:
                if (
                    leaf == "release"
                    and root
                    and root != "self"
                    and "lock" not in dotted_name(call.func).lower()
                    and root not in env
                ):
                    env[root] = ("lease", "done", line)
                continue
            kind, status, born = env[root]
            if leaf not in ("close", "unlink", "release"):
                continue
            if leaf == "unlink" and kind != "shm":
                continue
            if status == "transferred" and not node.in_cleanup:
                # releasing a handle someone else now owns — outside
                # the except/finally-unwind cleanup idiom this is a
                # double-ownership hazard
                findings.append(
                    (
                        FM303,
                        line,
                        f"'{root}' was handed off but is released "
                        f"here too",
                    )
                )
            if leaf == "close":
                if status in ("live", "transferred"):
                    env[root] = (
                        kind, "closed" if kind == "shm" else "done", born
                    )
            elif leaf == "unlink":
                if status in ("live", "closed", "transferred"):
                    env[root] = (kind, "done", born)
            elif leaf == "release":
                if status == "done":
                    findings.append(
                        (FM307, line, f"'{root}' is already released")
                    )
                else:
                    env[root] = (kind, "done", born)

        # 2. ownership transfers (return / store / pass / alias)
        for var in [v for v, (_, s, _) in env.items() if s in ("live", "closed")]:
            if self._transfers(stmt, var):
                kind, _, born = env[var]
                env[var] = (kind, "transferred", born)

        # 3. new bindings (after the RHS consumed the old values)
        exc_env = dict(env)  # a raising RHS never bound the resource
        for name, kind in self._creations(stmt):
            old = env.get(name)
            if old is not None and old[1] in ("live", "closed"):
                findings.append(
                    (
                        FM308,
                        line,
                        f"'{name}' still holds an unreleased {old[0]} "
                        f"resource from line {old[2]}",
                    )
                )
            env[name] = (kind, "live", line)
        if not self._creations(stmt):
            exc_env = dict(env)
        # plain rebinds of a tracked name drop the old handle
        for name in _assign_name_targets(stmt):
            if name in env and env[name][1] not in ("live", "closed"):
                if (name, env[name][0]) not in [
                    (n, k) for n, k in self._creations(stmt)
                ]:
                    env.pop(name)
                    exc_env.pop(name, None)
        return _ResourceEffects(env, exc_env, findings)

    # -- statement classification --------------------------------------
    def _creations(self, stmt: ast.AST) -> List[Tuple[str, str]]:
        out: List[Tuple[str, str]] = []
        if isinstance(stmt, ast.Assign) and isinstance(
            stmt.value, ast.Call
        ):
            leaf = _call_leaf(stmt.value)
            names = _assign_name_targets(stmt)
            first: Optional[str] = None
            target = stmt.targets[0] if len(stmt.targets) == 1 else None
            if isinstance(target, ast.Name):
                first = target.id
            elif isinstance(target, (ast.Tuple, ast.List)) and target.elts:
                head = target.elts[0]
                if isinstance(head, ast.Name):
                    first = head.id
            if leaf in _SHM_CTORS and first is not None:
                out.append((first, "shm"))
            elif leaf == "share_array" and first is not None:
                out.append((first, "shm"))
            elif leaf in _POOL_CTORS and first is not None:
                out.append((first, "pool"))
            elif leaf in _LEASE_CALLS and first is not None:
                out.append((first, "lease"))
            elif first is not None and first in self.pairs:
                out.append((first, "shm"))
            return out
        if isinstance(stmt, ast.Assign):
            for name in _assign_name_targets(stmt):
                if name in self.pairs and not isinstance(
                    stmt.value, ast.Constant
                ):
                    out.append((name, "shm"))
        # bare-expression acquire: entry.pool.acquire() leases `entry`
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Call
        ):
            call = stmt.value
            root = _receiver_root(call)
            if (
                _call_leaf(call) == "acquire"
                and root
                and root != "self"
                and "lock" not in dotted_name(call.func).lower()
            ):
                out.append((root, "lease"))
        return out

    @staticmethod
    def _transfers(stmt: ast.AST, var: str) -> bool:
        """Does ``stmt`` move ownership of ``var`` out of the function?

        Transfers are the *handle itself* escaping: returned/yielded
        (bare or inside a tuple), aliased or stored by assignment, or
        passed into a capturing call (a constructor, or a container
        ``append``/``add``/...).  Attribute reads (``entry.name``) and
        borrowing calls (``self._run(entry)``) are not transfers.
        """
        if isinstance(stmt, ast.Return):
            return stmt.value is not None and _value_stores(
                stmt.value, var
            )
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, (ast.Yield, ast.YieldFrom)
        ):
            inner = stmt.value.value
            return inner is not None and _value_stores(inner, var)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            return value is not None and _value_stores(value, var)
        for call in _calls(stmt):
            if _captures(call) and any(
                _value_stores(arg, var)
                for arg in list(call.args)
                + [kw.value for kw in call.keywords]
            ):
                return True
        return False


def _check_resources(
    func: "ast.FunctionDef | ast.AsyncFunctionDef", cfg: CFG
) -> List[Tuple[str, int, str]]:
    analysis = _ResourceAnalysis(func)
    result = run_forward(cfg, analysis)
    findings: List[Tuple[str, int, str]] = []
    seen: Set[Tuple[str, int, str]] = set()
    for node in cfg.nodes:
        state = result.in_states.get(node.index)
        if state is None:
            continue
        for item in analysis.apply(node, state).findings:
            if item not in seen:
                seen.add(item)
                findings.append(item)

    def exit_findings(state: Optional[ResourceState], raising: bool) -> None:
        if state is None:
            return
        where = "an exception path" if raising else "a normal path"
        for var, (kind, status, born) in state:
            if status in ("done", "transferred"):
                continue
            if kind == "lease":
                findings.append(
                    (
                        FM302,
                        born,
                        f"lease '{var}' reaches the end of "
                        f"{func.name}() unreleased on {where}",
                    )
                )
                continue
            code = FM301 if raising else FM300
            detail = (
                "is never released"
                if status == "live"
                else "is closed but never unlinked"
            )
            findings.append(
                (
                    code,
                    born,
                    f"{kind} resource '{var}' {detail} on {where} "
                    f"out of {func.name}()",
                )
            )

    exit_findings(result.exit_state, raising=False)
    exit_findings(result.raise_state, raising=True)
    return findings


# ----------------------------------------------------------------------
# Lock discipline (FM304-FM306, FM309) + guarded fields (FM305)
# ----------------------------------------------------------------------
_BLOCKING_LEAVES = frozenset(
    {"result", "wait", "shutdown", "sleep", "join", "get", "put"}
)


def _lock_ids_of_with(
    stmt: "ast.With | ast.AsyncWith", lockvars: Set[str]
) -> Tuple[str, ...]:
    ids: List[str] = []
    for item in stmt.items:
        name = dotted_name(item.context_expr)
        if name and _is_lock_name(name, lockvars):
            ids.append(name)
    return tuple(ids)


def _is_lock_name(name: str, lockvars: Set[str]) -> bool:
    leaf = name.rsplit(".", 1)[-1].lower()
    return "lock" in leaf or name in lockvars


def _local_lockvars(func: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and _call_leaf(node.value) in ("Lock", "RLock", "Condition")
        ):
            out.update(_assign_name_targets(node))
    return out


def _blocking_call(stmt: ast.AST) -> Optional[str]:
    """Dotted name of the first blocking call in ``stmt``, if any."""
    for call in _calls(stmt):
        leaf = _call_leaf(call)
        if leaf not in _BLOCKING_LEAVES:
            continue
        name = dotted_name(call.func) or leaf
        lower = name.lower()
        if leaf in ("get", "put") and "queue" not in lower:
            continue
        if leaf == "join" and not any(
            hint in lower for hint in ("proc", "thread", "worker")
        ):
            continue
        if leaf == "sleep" and not (
            name == "sleep" or lower.startswith("time.")
        ):
            continue
        if leaf == "wait" and "lock" in lower:
            continue  # Condition.wait releases the lock it wraps
        return name
    return None


class _LockAnalysis(ForwardAnalysis[LockState]):
    def __init__(self, func: ast.AST) -> None:
        self.lockvars = _local_lockvars(func)

    def initial(self) -> LockState:
        return frozenset()

    def join(self, a: LockState, b: LockState) -> LockState:
        return a & b  # must-held

    def transfer(
        self, node: FlowNode, state: LockState
    ) -> Tuple[LockState, LockState]:
        stmt = node.stmt
        if node.kind == "with-enter" and isinstance(
            stmt, (ast.With, ast.AsyncWith)
        ):
            held = state | {
                (lock, "with")
                for lock in _lock_ids_of_with(stmt, self.lockvars)
            }
            # if __enter__ raises the lock was never taken
            return held, state
        if node.kind in ("with-exit", "with-unwind") and isinstance(
            stmt, (ast.With, ast.AsyncWith)
        ):
            dropped = set(_lock_ids_of_with(stmt, self.lockvars))
            out = frozenset(
                (lock, mode)
                for lock, mode in state
                if not (mode == "with" and lock in dropped)
            )
            return out, out
        if stmt is not None:
            # The exception edge keeps the *pre-release* state: a raise
            # out of release() means the lock may still be held, and
            # optimistically dropping it would let the must-held join
            # wash a genuine FM306 leak out at the raise exit.
            exc_state = state
            for call in _calls(stmt):
                leaf = _call_leaf(call)
                if leaf not in ("acquire", "release"):
                    continue
                if not isinstance(call.func, ast.Attribute):
                    continue
                lock = dotted_name(call.func.value)
                if not lock or not _is_lock_name(lock, self.lockvars):
                    continue
                if leaf == "acquire":
                    state = state | {(lock, "explicit")}
                    exc_state = exc_state | {(lock, "explicit")}
                else:
                    state = frozenset(
                        pair for pair in state if pair[0] != lock
                    )
                    if node.in_cleanup:
                        # a release already running as cleanup is the
                        # blessed finally idiom; trust it on both edges
                        exc_state = frozenset(
                            pair for pair in exc_state if pair[0] != lock
                        )
            return state, exc_state
        return state, state


@dataclass
class _FieldAccess:
    """One ``self._field`` touch, for the class-level FM305 pass."""

    cls: str
    method: str
    field: str
    line: int
    mutates: bool
    held: FrozenSet[str]


def _field_accesses(
    cls: str,
    method: str,
    node: FlowNode,
    held: FrozenSet[str],
) -> List[_FieldAccess]:
    stmt = node.stmt
    if stmt is None or node.kind not in ("stmt", "branch", "loop-head"):
        return []
    out: List[_FieldAccess] = []

    def self_field(expr: ast.AST) -> Optional[str]:
        base = expr
        if isinstance(base, ast.Subscript):
            base = base.value
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            return base.attr
        return None

    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for target in targets:
        field = self_field(target)
        if field is not None:
            out.append(
                _FieldAccess(cls, method, field, node.line, True, held)
            )
    for call in _calls(stmt):
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _MUTATING_METHODS
        ):
            field = self_field(call.func.value)
            if field is not None:
                out.append(
                    _FieldAccess(cls, method, field, node.line, True, held)
                )
    return out


def _check_locks(
    qual: str,
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
    cfg: CFG,
) -> Tuple[List[Tuple[str, int, str]], List[_FieldAccess]]:
    analysis = _LockAnalysis(func)
    result = run_forward(cfg, analysis)
    findings: List[Tuple[str, int, str]] = []
    accesses: List[_FieldAccess] = []
    parts = qual.split(".")
    cls = parts[0] if len(parts) == 2 else ""
    method = parts[-1]
    for node in cfg.nodes:
        state = result.in_states.get(node.index)
        if state is None:
            continue
        held_ids = frozenset(lock for lock, _ in state)
        if cls:
            accesses.extend(_field_accesses(cls, method, node, held_ids))
        if not held_ids or node.stmt is None:
            continue
        if node.kind in ("stmt", "branch", "loop-head"):
            blocking = _blocking_call(node.stmt)
            if blocking is not None and not blocking.endswith(
                (".acquire", ".release")
            ):
                findings.append(
                    (
                        FM304,
                        node.line,
                        f"{blocking}() called while holding "
                        f"{', '.join(sorted(held_ids))}",
                    )
                )
    for state_opt, code, where in (
        (result.exit_state, FM309, "returns"),
        (result.raise_state, FM306, "unwinds"),
    ):
        if not state_opt:
            continue
        explicit = sorted(
            lock for lock, mode in state_opt if mode == "explicit"
        )
        for lock in explicit:
            findings.append(
                (
                    code,
                    func.lineno,
                    f"{func.name}() {where} with {lock} still held",
                )
            )
    return findings, accesses


def _guarded_field_findings(
    accesses: Sequence[_FieldAccess],
) -> List[Tuple[str, int, str]]:
    """Class-level FM305: fields with >= 2 mutation sites under the same
    lock are 'guarded'; mutations elsewhere without it are flagged."""
    guards: Dict[Tuple[str, str], Dict[str, Set[Tuple[str, int]]]] = {}
    for acc in accesses:
        if not acc.mutates or acc.method in ("__init__", "__del__"):
            continue
        for lock in acc.held:
            guards.setdefault((acc.cls, acc.field), {}).setdefault(
                lock, set()
            ).add((acc.method, acc.line))
    findings: List[Tuple[str, int, str]] = []
    for acc in accesses:
        if not acc.mutates or acc.method in ("__init__", "__del__"):
            continue
        by_lock = guards.get((acc.cls, acc.field), {})
        for lock, sites in sorted(by_lock.items()):
            others = {s for s in sites if s[0] != acc.method}
            if len(sites) >= 2 and len(others) >= 1 and lock not in acc.held:
                findings.append(
                    (
                        FM305,
                        acc.line,
                        f"{acc.cls}.{acc.field} is mutated under "
                        f"{lock} at {len(sites)} site(s) but without "
                        f"it in {acc.method}()",
                    )
                )
                break
    return findings


# ----------------------------------------------------------------------
# Driver + fmlint bridge
# ----------------------------------------------------------------------
def check_functions(tree: ast.AST) -> Dict[str, List[Finding]]:
    """Run every FM30x dataflow checker over a parsed module."""
    out: Dict[str, List[Finding]] = {code: [] for code in FLOW_CODES}
    accesses: List[_FieldAccess] = []
    for qual, func in function_defs(tree):
        cfg = build_cfg(func)
        for code, line, msg in _check_resources(func, cfg):
            out[code].append((line, msg))
        lock_findings, fields = _check_locks(qual, func, cfg)
        accesses.extend(fields)
        for code, line, msg in lock_findings:
            out[code].append((line, msg))
    for code, line, msg in _guarded_field_findings(accesses):
        out[code].append((line, msg))
    for code in out:
        out[code] = sorted(set(out[code]))
    return out


_CACHE: List[Tuple[int, ast.AST, Dict[str, List[Finding]]]] = []


def flow_findings(tree: ast.AST) -> Dict[str, List[Finding]]:
    """Memoized :func:`check_functions` — fmlint calls one rule per
    FM30x code against the same parsed tree, so a single-entry cache
    makes the ten rules cost one analysis run per file."""
    if _CACHE and _CACHE[0][0] == id(tree) and _CACHE[0][1] is tree:
        return _CACHE[0][2]
    result = check_functions(tree)
    _CACHE.clear()
    _CACHE.append((id(tree), tree, result))
    return result
