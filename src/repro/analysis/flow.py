"""Intraprocedural CFG + forward fixpoint dataflow over Python ``ast``.

The fmlint FM200s are single-pass AST pattern rules; they cannot answer
path questions like "is this SharedMemory unlinked on *every* path out
of the function, including the edge where ``close()`` raises?".  This
module supplies the missing machinery as three small layers:

1. :func:`build_cfg` — a statement-level control-flow graph for one
   function body.  Nodes are statements plus a handful of synthetic
   kinds (``with-enter``/``with-exit``/``with-unwind``,
   ``except-dispatch``, ``handler-bind``, ``finally`` junctions); edges
   are split into *normal* successors and *exception* successors so an
   analysis can model unwinding separately.  ``try``/``finally`` bodies
   are duplicated onto the unwind path (the classic lowering), and
   ``return``/``break``/``continue`` route through every enclosing
   ``finally`` before leaving.
2. :class:`ForwardAnalysis` + :func:`run_forward` — a generic forward
   worklist driver.  An analysis supplies an initial state, a ``join``
   (set-union for *may*, intersection-style for *must* — the driver
   does not care) and a ``transfer`` returning separate normal-edge and
   exception-edge out-states.  The fixpoint is reached when no
   in-state changes; only reachable nodes carry states.
3. Small shared AST utilities (:func:`dotted_name`, :func:`root_name`,
   :func:`function_defs`) used by the checkers in
   :mod:`repro.analysis.flowcheck`.

The CFG is deliberately *path-insensitive* and conservative in the
direction the checkers need: every statement containing a call (and
every ``assert``) gets an exception edge to the innermost handler, loop
headers always admit a zero-iteration exit (except literal
``while True``), and uncaught exception types fall through an
``except-dispatch`` node to the outer handler.  Extra paths make a
must-analysis stricter, never unsound.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    Generic,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

__all__ = [
    "CFG",
    "FlowNode",
    "FlowResult",
    "ForwardAnalysis",
    "build_cfg",
    "dotted_name",
    "function_defs",
    "root_name",
    "run_forward",
    "stmt_can_raise",
]


# ----------------------------------------------------------------------
# Shared AST utilities
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str:
    """``'self._pool.close'`` for an attribute chain, ``''`` if dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def root_name(node: ast.AST) -> str:
    """The base ``Name`` of an attribute/subscript chain (``''`` if none)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


def stmt_can_raise(stmt: ast.AST) -> bool:
    """Conservative per-statement raise predicate.

    Calls and asserts can raise; pure name/attribute shuffling is
    treated as non-raising so straight-line bookkeeping between a
    resource's creation and its hand-off does not manufacture phantom
    leak paths.  Nested function/class bodies are *definitions* at this
    statement — their inner calls run later — so they never count.
    """
    if isinstance(stmt, (ast.Assert, ast.Raise)):
        return True
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return False
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            return True
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            # don't descend into deferred bodies; ast.walk already
            # yielded them, so just skip their calls by checking depth —
            # a Call under a Lambda still trips the loop above, which is
            # acceptable (extra exception edges are conservative).
            continue
    return False


def function_defs(
    tree: ast.AST,
) -> Iterator[Tuple[str, "ast.FunctionDef | ast.AsyncFunctionDef"]]:
    """Yield ``(qualname, funcdef)`` for every function in ``tree``.

    Methods are qualified ``Class.method``; nested functions are
    qualified through their parents (``outer.<locals>.inner``).
    """

    def walk(
        node: ast.AST, prefix: str
    ) -> Iterator[Tuple[str, "ast.FunctionDef | ast.AsyncFunctionDef"]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = prefix + child.name
                yield qual, child
                yield from walk(child, qual + ".<locals>.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, prefix + child.name + ".")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")


# ----------------------------------------------------------------------
# CFG
# ----------------------------------------------------------------------
@dataclass
class FlowNode:
    """One CFG node.

    ``kind`` is one of ``entry``, ``exit``, ``raise-exit``, ``stmt``,
    ``branch``, ``loop-head``, ``loop-bind``, ``with-enter``,
    ``with-exit``, ``with-unwind``, ``except-dispatch``,
    ``handler-bind`` or ``finally-unwind``.  ``stmt`` is the originating statement for the
    statement-ish kinds (``with-*`` nodes carry the ``With`` node).
    ``succ`` are normal-flow successors, ``exc`` exception successors.
    """

    index: int
    kind: str
    stmt: Optional[ast.AST] = None
    succ: List[int] = field(default_factory=list)
    exc: List[int] = field(default_factory=list)
    #: True for nodes inside exception-cleanup code (an ``except``
    #: handler body, or the unwind copy of a ``finally`` block) —
    #: checkers use this to bless release-after-hand-off idioms there.
    in_cleanup: bool = False

    @property
    def line(self) -> int:
        stmt = self.stmt
        lineno = getattr(stmt, "lineno", None) if stmt is not None else None
        return int(lineno) if isinstance(lineno, int) else 0


@dataclass
class CFG:
    """A function's control-flow graph (see :func:`build_cfg`)."""

    name: str
    nodes: List[FlowNode]
    entry: int
    exit: int
    raise_exit: int

    def __iter__(self) -> Iterator[FlowNode]:
        return iter(self.nodes)


class _Builder:
    """Stateful single-function CFG construction."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: List[FlowNode] = []
        # > 0 while building except-handler bodies / unwind finallys
        self.cleanup_depth = 0
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self.raise_exit = self._new("raise-exit")
        # innermost target for an escaping exception
        self.handlers: List[int] = [self.raise_exit]
        # (break collector, continue target, finally depth at loop entry)
        self.loops: List[Tuple[List[int], int, int]] = []
        # enclosing finally bodies, outermost first
        self.finallys: List[List[ast.stmt]] = []

    # -- plumbing ------------------------------------------------------
    def _new(self, kind: str, stmt: Optional[ast.AST] = None) -> int:
        node = FlowNode(
            index=len(self.nodes),
            kind=kind,
            stmt=stmt,
            in_cleanup=self.cleanup_depth > 0,
        )
        self.nodes.append(node)
        return node.index

    def _link(self, sources: Sequence[int], target: int) -> None:
        for src in sources:
            if target not in self.nodes[src].succ:
                self.nodes[src].succ.append(target)

    def _exc(self, source: int, target: int) -> None:
        if target not in self.nodes[source].exc:
            self.nodes[source].exc.append(target)

    def _simple(
        self, stmt: ast.stmt, preds: Sequence[int], kind: str = "stmt"
    ) -> int:
        node = self._new(kind, stmt)
        self._link(preds, node)
        if stmt_can_raise(stmt):
            self._exc(node, self.handlers[-1])
        return node

    def _run_finallys(
        self, preds: List[int], down_to: int = 0
    ) -> List[int]:
        """Duplicate enclosing ``finally`` bodies (innermost first) on a
        non-local exit path (return/break/continue)."""
        saved = self.finallys
        outs = preds
        for depth in range(len(saved) - 1, down_to - 1, -1):
            self.finallys = saved[:depth]
            outs = self._body(saved[depth], outs)
        self.finallys = saved
        return outs

    # -- statement dispatch --------------------------------------------
    def _body(
        self, stmts: Sequence[ast.stmt], preds: List[int]
    ) -> List[int]:
        outs = preds
        for stmt in stmts:
            if not outs:
                break  # unreachable tail
            outs = self._stmt(stmt, outs)
        return outs

    def _stmt(self, stmt: ast.stmt, preds: List[int]) -> List[int]:
        if isinstance(stmt, ast.Return):
            node = self._simple(stmt, preds)
            outs = self._run_finallys([node])
            self._link(outs, self.exit)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._new("stmt", stmt)
            self._link(preds, node)
            self._exc(node, self.handlers[-1])
            return []
        if isinstance(stmt, ast.Break):
            node = self._new("stmt", stmt)
            self._link(preds, node)
            if self.loops:
                breaks, _, depth = self.loops[-1]
                breaks.extend(self._run_finallys([node], depth))
            return []
        if isinstance(stmt, ast.Continue):
            node = self._new("stmt", stmt)
            self._link(preds, node)
            if self.loops:
                _, cont, depth = self.loops[-1]
                self._link(self._run_finallys([node], depth), cont)
            return []
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, preds)
        return [self._simple(stmt, preds)]

    def _if(self, stmt: ast.If, preds: List[int]) -> List[int]:
        cond = self._new("branch", stmt)
        self._link(preds, cond)
        if stmt_can_raise(ast.Expr(value=stmt.test)):
            self._exc(cond, self.handlers[-1])
        then_outs = self._body(stmt.body, [cond])
        else_outs = self._body(stmt.orelse, [cond])
        return then_outs + else_outs

    def _match(self, stmt: ast.Match, preds: List[int]) -> List[int]:
        head = self._new("branch", stmt)
        self._link(preds, head)
        if stmt_can_raise(ast.Expr(value=stmt.subject)):
            self._exc(head, self.handlers[-1])
        outs: List[int] = [head]  # no case may match
        for case in stmt.cases:
            outs.extend(self._body(case.body, [head]))
        return outs

    def _loop(
        self, stmt: "ast.While | ast.For | ast.AsyncFor", preds: List[int]
    ) -> List[int]:
        head = self._new("loop-head", stmt)
        self._link(preds, head)
        raises = (
            stmt_can_raise(ast.Expr(value=stmt.test))
            if isinstance(stmt, ast.While)
            else True  # iterator protocol can raise
        )
        if raises:
            self._exc(head, self.handlers[-1])
        # the iteration-variable binding lives on its own node so the
        # zero-iteration exit edge (head -> after) never sees it
        bind = self._new("loop-bind", stmt)
        self._link([head], bind)
        breaks: List[int] = []
        self.loops.append((breaks, head, len(self.finallys)))
        body_outs = self._body(stmt.body, [bind])
        self._link(body_outs, head)
        self.loops.pop()
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        falls_through: List[int] = [] if infinite else [head]
        else_outs = self._body(stmt.orelse, falls_through)
        if stmt.orelse:
            return else_outs + breaks
        return falls_through + breaks

    def _with(
        self, stmt: "ast.With | ast.AsyncWith", preds: List[int]
    ) -> List[int]:
        enter = self._new("with-enter", stmt)
        self._link(preds, enter)
        self._exc(enter, self.handlers[-1])  # __enter__ may raise
        unwind = self._new("with-unwind", stmt)
        self.handlers.append(unwind)
        body_outs = self._body(stmt.body, [enter])
        self.handlers.pop()
        leave = self._new("with-exit", stmt)
        self._link(body_outs, leave)
        # after __exit__ ran on the unwind path the exception continues
        self._exc(unwind, self.handlers[-1])
        return [leave]

    def _try(self, stmt: ast.Try, preds: List[int]) -> List[int]:
        outer = self.handlers[-1]
        fin_unwind: Optional[int] = None
        if stmt.finalbody:
            fin_unwind = self._new("finally-unwind", stmt)
        escape = fin_unwind if fin_unwind is not None else outer
        dispatch: Optional[int] = None
        if stmt.handlers:
            dispatch = self._new("except-dispatch", stmt)
        body_target = dispatch if dispatch is not None else escape
        self.handlers.append(body_target)
        if stmt.finalbody:
            self.finallys.append(stmt.finalbody)
        body_outs = self._body(stmt.body, preds)
        self.handlers.pop()

        handler_outs: List[int] = []
        catches_all = False
        for handler in stmt.handlers:
            assert dispatch is not None
            bind = self._new("handler-bind", handler)
            self._link([dispatch], bind)
            self.handlers.append(escape)
            self.cleanup_depth += 1
            handler_outs.extend(self._body(handler.body, [bind]))
            self.cleanup_depth -= 1
            self.handlers.pop()
            if handler.type is None or dotted_name(handler.type) in (
                "BaseException",
            ):
                catches_all = True
        if dispatch is not None and not catches_all:
            self._link([dispatch], escape)

        self.handlers.append(escape)
        else_outs = self._body(stmt.orelse, body_outs)
        self.handlers.pop()

        normal_in = else_outs + handler_outs
        if stmt.finalbody:
            self.finallys.pop()
            normal_outs = self._body(stmt.finalbody, normal_in)
            assert fin_unwind is not None
            self.cleanup_depth += 1
            unwind_outs = self._body(stmt.finalbody, [fin_unwind])
            self.cleanup_depth -= 1
            for out in unwind_outs:
                self._exc(out, outer)
            return normal_outs
        return normal_in


def build_cfg(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> CFG:
    """Build the statement-level CFG for one function body."""
    builder = _Builder(func.name)
    outs = builder._body(list(func.body), [builder.entry])
    builder._link(outs, builder.exit)
    return CFG(
        name=func.name,
        nodes=builder.nodes,
        entry=builder.entry,
        exit=builder.exit,
        raise_exit=builder.raise_exit,
    )


# ----------------------------------------------------------------------
# Forward fixpoint driver
# ----------------------------------------------------------------------
S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """A forward dataflow problem over a :class:`CFG`.

    Subclasses define the abstract state ``S`` (which must support
    ``==``), the initial state at function entry, a ``join`` merging
    states at control-flow confluences (union-like for *may* problems,
    intersection-like for *must*), and a ``transfer`` producing the
    out-state for normal successors and — separately — for exception
    successors (the state as it exists when the statement raises).
    """

    def initial(self) -> S:
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def transfer(self, node: FlowNode, state: S) -> Tuple[S, S]:
        raise NotImplementedError


@dataclass
class FlowResult(Generic[S]):
    """Fixpoint in-states per reachable node."""

    cfg: CFG
    in_states: Dict[int, S]

    @property
    def exit_state(self) -> Optional[S]:
        return self.in_states.get(self.cfg.exit)

    @property
    def raise_state(self) -> Optional[S]:
        return self.in_states.get(self.cfg.raise_exit)


def run_forward(
    cfg: CFG, analysis: ForwardAnalysis[S], max_passes: int = 10_000
) -> FlowResult[S]:
    """Iterate ``analysis`` over ``cfg`` to a fixpoint.

    ``max_passes`` bounds total node visits as a defence against a
    non-monotone ``transfer``; the lattices used by the shipped
    checkers converge in a handful of sweeps.
    """
    in_states: Dict[int, S] = {cfg.entry: analysis.initial()}
    worklist: List[int] = [cfg.entry]
    visits = 0
    while worklist:
        visits += 1
        if visits > max_passes:  # pragma: no cover - defensive
            break
        index = worklist.pop()
        node = cfg.nodes[index]
        state = in_states[index]
        normal_out, exc_out = analysis.transfer(node, state)
        for target, out in [(t, normal_out) for t in node.succ] + [
            (t, exc_out) for t in node.exc
        ]:
            if target not in in_states:
                in_states[target] = out
                worklist.append(target)
                continue
            joined = analysis.join(in_states[target], out)
            if joined != in_states[target]:
                in_states[target] = joined
                worklist.append(target)
    return FlowResult(cfg=cfg, in_states=in_states)
