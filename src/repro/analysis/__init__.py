"""Static analysis: plan verifier (FM1xx) + lint (FM2xx/FM30x).

The passes share one diagnostics core:

* :mod:`repro.analysis.plancheck` proves execution-plan invariants
  (connectivity, symmetry soundness/completeness against the
  automorphism group, injectivity-skip and hint legality, and the
  FM17x batch-frontier legality proofs) before a plan ever runs —
  ``flexminer check-plan``;
* :mod:`repro.analysis.fmlint` enforces the determinism conventions the
  bit-identical parallel/simulator guarantees rest on — ``flexminer
  lint``;
* :mod:`repro.analysis.flowcheck` runs path-sensitive
  resource-lifecycle and lock-discipline proofs (FM30x) on the CFG +
  fixpoint framework in :mod:`repro.analysis.flow`, wired into the
  same lint driver;
* :mod:`repro.analysis.baseline` ratchets the lint gate (recorded debt
  passes, new findings and stale suppressions fail) and
  :mod:`repro.analysis.sarif` exports SARIF 2.1.0 for code scanning.

All passes emit catalogued
:class:`~repro.analysis.diagnostics.Diagnostic` records rendered as
text or ``flexminer.run/1`` JSON via :mod:`repro.obs`.
"""

from .diagnostics import (
    CATALOG,
    SEVERITIES,
    AnalysisReport,
    CodeInfo,
    Diagnostic,
    merge_reports,
    register_code,
)
from .plancheck import check_multi_plan, check_plan, plan_shape
from .fmlint import (
    DEFAULT_RULES,
    LintRule,
    iter_python_files,
    lint_paths,
    lint_source,
)
from .baseline import (
    Baseline,
    apply_baseline,
    baseline_from_report,
    load_baseline,
    save_baseline,
)
from .flow import CFG, ForwardAnalysis, build_cfg, run_forward
from .flowcheck import FLOW_CODES, check_functions, flow_findings
from .sarif import to_sarif

__all__ = [
    "CATALOG",
    "SEVERITIES",
    "AnalysisReport",
    "CodeInfo",
    "Diagnostic",
    "merge_reports",
    "register_code",
    "check_plan",
    "check_multi_plan",
    "plan_shape",
    "DEFAULT_RULES",
    "LintRule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "Baseline",
    "apply_baseline",
    "baseline_from_report",
    "load_baseline",
    "save_baseline",
    "CFG",
    "ForwardAnalysis",
    "build_cfg",
    "run_forward",
    "FLOW_CODES",
    "check_functions",
    "flow_findings",
    "to_sarif",
]
