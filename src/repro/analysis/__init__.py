"""Static analysis: plan verifier (FM1xx) + determinism lint (FM2xx).

Two passes share one diagnostics core:

* :mod:`repro.analysis.plancheck` proves execution-plan invariants
  (connectivity, symmetry soundness/completeness against the
  automorphism group, injectivity-skip and hint legality) before a plan
  ever runs — ``flexminer check-plan``;
* :mod:`repro.analysis.fmlint` enforces the determinism conventions the
  bit-identical parallel/simulator guarantees rest on — ``flexminer
  lint``.

Both emit catalogued :class:`~repro.analysis.diagnostics.Diagnostic`
records rendered as text or ``flexminer.run/1`` JSON via
:mod:`repro.obs`.
"""

from .diagnostics import (
    CATALOG,
    SEVERITIES,
    AnalysisReport,
    CodeInfo,
    Diagnostic,
    merge_reports,
    register_code,
)
from .plancheck import check_multi_plan, check_plan, plan_shape
from .fmlint import (
    DEFAULT_RULES,
    LintRule,
    iter_python_files,
    lint_paths,
    lint_source,
)

__all__ = [
    "CATALOG",
    "SEVERITIES",
    "AnalysisReport",
    "CodeInfo",
    "Diagnostic",
    "merge_reports",
    "register_code",
    "check_plan",
    "check_multi_plan",
    "plan_shape",
    "DEFAULT_RULES",
    "LintRule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
]
