"""SARIF 2.1.0 export for analysis reports.

Emits the minimal valid subset GitHub code scanning ingests: one run,
one tool with a rule per catalogued code actually used, one result per
finding with a physical location parsed from the lint's ``path:line``
convention.  Severity maps ``error → error``, ``warning → warning``,
``info → note``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .diagnostics import CATALOG, AnalysisReport, Diagnostic

__all__ = ["SARIF_VERSION", "to_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _location(diag: Diagnostic) -> Optional[Dict[str, object]]:
    path, sep, line = diag.location.rpartition(":")
    if not (sep and line.isdigit()):
        return None
    region: Dict[str, object] = {"startLine": int(line)}
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path.replace("\\", "/")},
            "region": region,
        }
    }


def to_sarif(
    report: AnalysisReport,
    *,
    tool_name: str = "flexminer-lint",
    tool_version: str = "",
) -> Dict[str, object]:
    """Render ``report`` as a SARIF 2.1.0 log dictionary."""
    used = sorted({d.code for d in report.findings})
    rules: List[Dict[str, object]] = []
    for code in used:
        info = CATALOG[code]
        rule: Dict[str, object] = {
            "id": code,
            "shortDescription": {"text": info.title},
            "defaultConfiguration": {
                "level": _LEVELS[info.default_severity]
            },
        }
        if info.hint:
            rule["help"] = {"text": info.hint}
        rules.append(rule)

    results: List[Dict[str, object]] = []
    for diag in report.findings:
        result: Dict[str, object] = {
            "ruleId": diag.code,
            "ruleIndex": used.index(diag.code),
            "level": _LEVELS[diag.severity],
            "message": {"text": diag.message},
        }
        loc = _location(diag)
        if loc is not None:
            result["locations"] = [loc]
        results.append(result)

    driver: Dict[str, object] = {
        "name": tool_name,
        "informationUri": "https://github.com/flexminer/flexminer",
        "rules": rules,
    }
    if tool_version:
        driver["version"] = tool_version
    return {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
