"""Shared diagnostics core for the static-analysis passes.

Both analysis passes — the plan verifier (:mod:`repro.analysis.plancheck`,
``FM1xx`` codes) and the determinism lint (:mod:`repro.analysis.fmlint`,
``FM2xx`` codes) — report through the same vocabulary: a
:class:`Diagnostic` carries a catalogued error code, a severity, a
human message, a machine-checkable location, and a fix hint; an
:class:`AnalysisReport` aggregates them per subject and renders either
pretty text or a ``flexminer.run/1`` JSON envelope via :mod:`repro.obs`.

Every code must be registered in :data:`CATALOG` before use — this keeps
the docs/static-analysis.md error-code catalogue honest (it is generated
from the same table) and makes an unknown code a programming error, not
a silently-invented diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..obs import make_report

__all__ = [
    "CATALOG",
    "SEVERITIES",
    "AnalysisReport",
    "CodeInfo",
    "Diagnostic",
    "register_code",
]

#: Valid severities, in increasing order of seriousness.
SEVERITIES: Tuple[str, ...] = ("info", "warning", "error")


@dataclass(frozen=True)
class CodeInfo:
    """Catalogue entry for one diagnostic code."""

    code: str
    title: str
    default_severity: str
    hint: str = ""


#: The full code catalogue; ``FM1xx`` = plan verifier, ``FM2xx`` = lint.
CATALOG: Dict[str, CodeInfo] = {}


def register_code(
    code: str, title: str, severity: str = "error", hint: str = ""
) -> str:
    """Register a diagnostic code; returns it for assignment convenience."""
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")
    if code in CATALOG:
        raise ValueError(f"duplicate diagnostic code {code}")
    CATALOG[code] = CodeInfo(
        code=code, title=title, default_severity=severity, hint=hint
    )
    return code


@dataclass(frozen=True)
class Diagnostic:
    """One finding from a static-analysis pass."""

    code: str
    message: str
    #: Where: "step 3" / "symmetry" for plans, "path:line" for lint.
    location: str = ""
    #: Overrides the catalogue default when set.
    severity: str = ""
    #: Overrides the catalogue's generic fix hint when set.
    hint: str = ""

    def __post_init__(self) -> None:
        if self.code not in CATALOG:
            raise ValueError(
                f"diagnostic code {self.code!r} is not in the catalogue; "
                "register it in repro.analysis.diagnostics first"
            )
        info = CATALOG[self.code]
        if not self.severity:
            object.__setattr__(self, "severity", info.default_severity)
        elif self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")
        if not self.hint and info.hint:
            object.__setattr__(self, "hint", info.hint)

    @property
    def title(self) -> str:
        return CATALOG[self.code].title

    def as_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "title": self.title,
            "severity": self.severity,
            "message": self.message,
            "location": self.location,
            "hint": self.hint,
        }

    def __str__(self) -> str:
        where = f" at {self.location}" if self.location else ""
        tail = f"  [fix: {self.hint}]" if self.hint else ""
        return (
            f"{self.code} {self.severity}{where}: {self.message}{tail}"
        )


@dataclass
class AnalysisReport:
    """All findings for one analysis subject (a plan, a file tree)."""

    subject: str
    findings: List[Diagnostic] = field(default_factory=list)
    #: Optional structured extras (e.g. the plan shape/cost summary).
    data: Dict[str, object] = field(default_factory=dict)

    def add(
        self,
        code: str,
        message: str,
        *,
        location: str = "",
        severity: str = "",
        hint: str = "",
    ) -> Diagnostic:
        diag = Diagnostic(
            code=code,
            message=message,
            location=location,
            severity=severity,
            hint=hint,
        )
        self.findings.append(diag)
        return diag

    def extend(self, findings: Iterable[Diagnostic]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.findings if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.findings if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity findings exist."""
        return not self.errors

    def __bool__(self) -> bool:
        return self.ok

    def codes(self) -> Tuple[str, ...]:
        return tuple(d.code for d in self.findings)

    def has(self, code: str) -> bool:
        return code in self.codes()

    def as_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [d.as_dict() for d in self.findings],
            "data": dict(self.data),
        }

    def to_report(
        self, *, meta: Optional[Mapping[str, object]] = None
    ) -> Dict[str, object]:
        """Wrap in the shared ``flexminer.run/1`` envelope."""
        return make_report("analysis", self.as_dict(), meta=meta)

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"== {self.subject} =="]
        for diag in self.findings:
            lines.append(f"  {diag}")
        if not self.findings:
            lines.append("  clean")
        else:
            lines.append(
                f"  {len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s)"
            )
        return "\n".join(lines)


def merge_reports(
    reports: Iterable[AnalysisReport], subject: str
) -> AnalysisReport:
    """Flatten several per-subject reports into one summary report."""
    merged = AnalysisReport(subject=subject)
    reports = list(reports)
    subjects = []
    for rep in reports:
        subjects.append(rep.subject)
        for diag in rep.findings:
            loc = diag.location or rep.subject
            merged.findings.append(
                Diagnostic(
                    code=diag.code,
                    message=diag.message,
                    location=loc,
                    severity=diag.severity,
                    hint=diag.hint,
                )
            )
    merged.data["subjects"] = subjects
    per_report = {
        rep.subject: dict(rep.data) for rep in reports if rep.data
    }
    if per_report:
        merged.data["reports"] = per_report
    return merged
