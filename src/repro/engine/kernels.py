"""Size-adaptive set-operation kernels for sorted unique id lists.

The mining engines spend nearly all of their time intersecting and
differencing sorted adjacency lists.  The generic numpy primitives
(``np.intersect1d``/``np.setdiff1d``) concatenate and re-sort their
operands on every call — fine for comparable lengths, wasteful when one
operand is a short frontier probed against a long hub adjacency, which
is the common case on power-law graphs (GraphMini makes the same
observation for CPU engines).

This module provides the raw *value* kernels; the *accounting* (merge
iteration counts, ``OpCounters``) lives in :mod:`repro.engine.setops`
and is unchanged by kernel selection, so the simulator's "same
algorithmic efficiency" invariant holds whichever kernel runs.

Kernels
-------
* **merge** — delegate to numpy's merge-style primitives.  O(n + m).
* **gallop** — binary-search probe of the smaller operand into the
  larger (`searchsorted` over the whole small side at once).
  O(n log m), wins when ``len(small) << len(big)``.
* **adaptive** (default) — pick per call: gallop when the larger side is
  at least :data:`GALLOP_RATIO` times the smaller, merge otherwise.

Count-only variants (:func:`intersect_count`, :func:`difference_count`)
never materialize the output; the engine uses them at the last plan
level, where the result is only ever counted.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "GALLOP_RATIO",
    "contains",
    "difference_count",
    "difference_count_below",
    "difference_values",
    "get_strategy",
    "intersect_count",
    "intersect_count_below",
    "intersect_multi",
    "intersect_values",
    "members_mask",
    "segmented_intersect_count",
    "set_strategy",
    "strategy",
]

#: Length ratio beyond which the adaptive kernel switches from the
#: linear merge to the galloping probe.  log2 of a realistic adjacency
#: length is ~8-16, so below 8x the merge's sequential scan is at least
#: competitive; above it the probe does strictly less work.
GALLOP_RATIO = 8

_STRATEGIES = ("adaptive", "merge", "gallop")
_strategy = "adaptive"


def get_strategy() -> str:
    """Currently selected kernel strategy."""
    return _strategy


def set_strategy(name: str) -> None:
    """Select the kernel strategy process-wide.

    ``"merge"`` reproduces the generic numpy baseline exactly (used by
    the engine bench to measure the kernel layer's speedup);
    ``"gallop"`` forces the probe path (kernel unit tests);
    ``"adaptive"`` is the production default.
    """
    global _strategy
    if name not in _STRATEGIES:
        raise ValueError(
            f"unknown kernel strategy {name!r}; expected one of {_STRATEGIES}"
        )
    _strategy = name


@contextmanager
def strategy(name: str) -> Iterator[None]:
    """Temporarily select a kernel strategy (restores on exit)."""
    previous = get_strategy()
    set_strategy(name)
    try:
        yield
    finally:
        set_strategy(previous)


def _probe_mask(needles: np.ndarray, haystack: np.ndarray) -> np.ndarray:
    """Boolean membership mask of ``needles`` in ``haystack`` (both sorted).

    Out-of-range probe positions are clamped to slot 0 instead of being
    masked out: a needle larger than ``haystack[-1]`` can never equal
    ``haystack[0]``, so the equality compare rejects it without the
    extra validity pass.  The ``.searchsorted`` method is deliberate —
    the ``np.searchsorted`` wrapper adds measurable dispatch overhead at
    adjacency-list sizes.
    """
    n = len(haystack)
    if n == 0:
        return np.zeros(len(needles), dtype=bool)
    idx = haystack.searchsorted(needles)
    idx[idx == n] = 0
    return haystack[idx] == needles


def members_mask(needles, haystack) -> np.ndarray:
    """Vectorized membership of ``needles`` in the sorted ``haystack``."""
    return _probe_mask(np.asarray(needles), np.asarray(haystack))


def _gallop_wins(small: int, big: int) -> bool:
    return big >= GALLOP_RATIO * small


def intersect_values(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted intersection of two sorted unique arrays."""
    small, big = (a, b) if len(a) <= len(b) else (b, a)
    if len(small) == 0:
        return small[:0]
    if _strategy == "merge" or (
        _strategy == "adaptive" and not _gallop_wins(len(small), len(big))
    ):
        return np.intersect1d(a, b, assume_unique=True)
    return small[_probe_mask(small, big)]


def difference_values(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted difference ``a \\ b`` of two sorted unique arrays."""
    if len(a) == 0 or len(b) == 0:
        return a
    if _strategy == "merge" or (
        _strategy == "adaptive"
        and not _gallop_wins(min(len(a), len(b)), max(len(a), len(b)))
    ):
        return np.setdiff1d(a, b, assume_unique=True)
    return a[~_probe_mask(a, b)]


def intersect_multi(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Intersection of several sorted unique arrays, smallest operand first.

    Starting from the smallest operand keeps every intermediate result
    no larger than it, so each later probe is cheap; an empty
    intermediate short-circuits the rest.
    """
    if not arrays:
        raise ValueError("intersect_multi needs at least one array")
    ordered = sorted(arrays, key=len)
    out = ordered[0]
    for other in ordered[1:]:
        if len(out) == 0:
            return out
        out = intersect_values(out, other)
    return out


# ----------------------------------------------------------------------
# Count-only fast paths (leaf level: results are counted, never used)
# ----------------------------------------------------------------------

def _excluded_hits(
    base: np.ndarray, member: np.ndarray, exclude: np.ndarray
) -> int:
    """How many ``exclude`` values sit in ``base`` with ``member`` set.

    ``member`` is a boolean mask over ``base`` (the result-membership
    mask the count kernels already built), so one extra probe settles
    membership in the *result* for every excluded id at once.
    """
    n = len(base)
    if n == 0:
        return 0
    pos = base.searchsorted(exclude)
    pos[pos == n] = 0
    return int(np.count_nonzero((base[pos] == exclude) & member[pos]))


def intersect_count_below(
    a: np.ndarray,
    b: np.ndarray,
    bound: Optional[int] = None,
    exclude: Optional[np.ndarray] = None,
) -> Tuple[int, int]:
    """``(|a ∩ b|, |{v ∈ a ∩ b : v < bound, v ∉ exclude}|)``.

    Count-only intersection: nothing is materialized.  ``bound=None``
    means unbounded; ``exclude`` (a sorted-or-not id array, every id
    already below the bound) is subtracted from the bounded count.  One
    probe of the smaller operand yields both counts — the bounded one is
    a prefix sum of the membership mask, because the operands are sorted
    — and one more probe settles the exclusions.
    """
    small, big = (a, b) if len(a) <= len(b) else (b, a)
    if len(small) == 0:
        return 0, 0
    hit = _probe_mask(small, big)
    raw = int(np.count_nonzero(hit))
    if bound is None:
        below = raw
    else:
        below = int(np.count_nonzero(hit[: int(small.searchsorted(bound))]))
    if exclude is not None and below:
        below -= _excluded_hits(small, hit, exclude)
    return raw, below


def difference_count_below(
    a: np.ndarray,
    b: np.ndarray,
    bound: Optional[int] = None,
    exclude: Optional[np.ndarray] = None,
) -> Tuple[int, int]:
    """``(|a \\ b|, |{v ∈ a \\ b : v < bound, v ∉ exclude}|)``."""
    if len(a) == 0:
        return 0, 0
    if len(b) == 0:
        keep = np.ones(len(a), dtype=bool)
    else:
        keep = ~_probe_mask(a, b)
    raw = int(np.count_nonzero(keep))
    if bound is None:
        below = raw
    else:
        below = int(np.count_nonzero(keep[: int(a.searchsorted(bound))]))
    if exclude is not None and below:
        below -= _excluded_hits(a, keep, exclude)
    return raw, below


def segmented_intersect_count(
    base: np.ndarray,
    concat: np.ndarray,
    offsets: np.ndarray,
    bounds=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment ``(|seg ∩ base|, |{v ∈ seg ∩ base : v < bound}|)``.

    The batch-frontier kernel: ``concat`` holds many sorted segments
    back to back (segment ``i`` is ``concat[offsets[i]:offsets[i+1]]``,
    typically a whole frontier's worth of adjacency slices gathered in
    one shot) and every segment is intersected with the same sorted
    ``base`` by a single membership probe.  Per-segment totals fall out
    of one cumulative sum — no Python-level loop over the frontier.

    ``bounds`` is ``None`` (no vid bound), a scalar (one bound for every
    segment) or an array with one bound per segment.  Returns int64
    arrays of length ``len(offsets) - 1``.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    nseg = len(offsets) - 1
    if len(concat) == 0 or len(base) == 0:
        zeros = np.zeros(nseg, dtype=np.int64)
        return zeros, zeros.copy()
    hit = _probe_mask(concat, base)
    csum = np.concatenate(([0], np.cumsum(hit, dtype=np.int64)))
    raw = csum[offsets[1:]] - csum[offsets[:-1]]
    if bounds is None:
        return raw, raw.copy()
    if np.ndim(bounds) == 0:
        below_mask = hit & (concat < bounds)
    else:
        per_element = np.repeat(
            np.asarray(bounds), np.diff(offsets)
        )
        below_mask = hit & (concat < per_element)
    bsum = np.concatenate(([0], np.cumsum(below_mask, dtype=np.int64)))
    below = bsum[offsets[1:]] - bsum[offsets[:-1]]
    return raw, below


def intersect_count(a: np.ndarray, b: np.ndarray) -> int:
    """``|a ∩ b|`` without materializing the intersection."""
    return intersect_count_below(a, b)[0]


def difference_count(a: np.ndarray, b: np.ndarray) -> int:
    """``|a \\ b|`` without materializing the difference."""
    return difference_count_below(a, b)[0]


def contains(values: np.ndarray, v: int) -> bool:
    """Binary-search membership test on a sorted array."""
    pos = int(values.searchsorted(v))
    return pos < len(values) and int(values[pos]) == v
