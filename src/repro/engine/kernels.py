"""Size-adaptive set-operation kernels for sorted unique id lists.

The mining engines spend nearly all of their time intersecting and
differencing sorted adjacency lists.  The generic numpy primitives
(``np.intersect1d``/``np.setdiff1d``) concatenate and re-sort their
operands on every call — fine for comparable lengths, wasteful when one
operand is a short frontier probed against a long hub adjacency, which
is the common case on power-law graphs (GraphMini makes the same
observation for CPU engines).

This module provides the raw *value* kernels; the *accounting* (merge
iteration counts, ``OpCounters``) lives in :mod:`repro.engine.setops`
and is unchanged by kernel selection, so the simulator's "same
algorithmic efficiency" invariant holds whichever kernel runs.

Kernels
-------
* **merge** — delegate to numpy's merge-style primitives.  O(n + m).
* **gallop** — binary-search probe of the smaller operand into the
  larger (`searchsorted` over the whole small side at once).
  O(n log m), wins when ``len(small) << len(big)``.
* **adaptive** (default) — pick per call: gallop when the larger side is
  at least :data:`GALLOP_RATIO` times the smaller, merge otherwise.

Count-only variants (:func:`intersect_count`, :func:`difference_count`)
never materialize the output; the engine uses them at the last plan
level, where the result is only ever counted.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "GALLOP_RATIO",
    "contains",
    "difference_count",
    "difference_count_below",
    "difference_values",
    "gather_segments",
    "get_strategy",
    "intersect_count",
    "intersect_count_below",
    "intersect_multi",
    "intersect_values",
    "members_mask",
    "segment_ids",
    "segment_sums",
    "segmented_difference",
    "segmented_difference_count",
    "segmented_intersect",
    "segmented_intersect_count",
    "segmented_pair_count_below",
    "segmented_pair_difference",
    "segmented_pair_intersect",
    "set_strategy",
    "strategy",
]

#: Length ratio beyond which the adaptive kernel switches from the
#: linear merge to the galloping probe.  log2 of a realistic adjacency
#: length is ~8-16, so below 8x the merge's sequential scan is at least
#: competitive; above it the probe does strictly less work.
GALLOP_RATIO = 8

_STRATEGIES = ("adaptive", "merge", "gallop")
_strategy = "adaptive"


def get_strategy() -> str:
    """Currently selected kernel strategy."""
    return _strategy


def set_strategy(name: str) -> None:
    """Select the kernel strategy process-wide.

    ``"merge"`` reproduces the generic numpy baseline exactly (used by
    the engine bench to measure the kernel layer's speedup);
    ``"gallop"`` forces the probe path (kernel unit tests);
    ``"adaptive"`` is the production default.
    """
    global _strategy
    if name not in _STRATEGIES:
        raise ValueError(
            f"unknown kernel strategy {name!r}; expected one of {_STRATEGIES}"
        )
    _strategy = name


@contextmanager
def strategy(name: str) -> Iterator[None]:
    """Temporarily select a kernel strategy (restores on exit)."""
    previous = get_strategy()
    set_strategy(name)
    try:
        yield
    finally:
        set_strategy(previous)


def _probe_mask(needles: np.ndarray, haystack: np.ndarray) -> np.ndarray:
    """Boolean membership mask of ``needles`` in ``haystack`` (both sorted).

    Out-of-range probe positions are clamped to slot 0 instead of being
    masked out: a needle larger than ``haystack[-1]`` can never equal
    ``haystack[0]``, so the equality compare rejects it without the
    extra validity pass.  The ``.searchsorted`` method is deliberate —
    the ``np.searchsorted`` wrapper adds measurable dispatch overhead at
    adjacency-list sizes.
    """
    n = len(haystack)
    if n == 0:
        return np.zeros(len(needles), dtype=bool)
    idx = haystack.searchsorted(needles)
    idx[idx == n] = 0
    return haystack[idx] == needles


def members_mask(needles, haystack) -> np.ndarray:
    """Vectorized membership of ``needles`` in the sorted ``haystack``."""
    return _probe_mask(np.asarray(needles), np.asarray(haystack))


def _gallop_wins(small: int, big: int) -> bool:
    return big >= GALLOP_RATIO * small


def intersect_values(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted intersection of two sorted unique arrays."""
    small, big = (a, b) if len(a) <= len(b) else (b, a)
    if len(small) == 0:
        return small[:0]
    if _strategy == "merge" or (
        _strategy == "adaptive" and not _gallop_wins(len(small), len(big))
    ):
        return np.intersect1d(a, b, assume_unique=True)
    return small[_probe_mask(small, big)]


def difference_values(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted difference ``a \\ b`` of two sorted unique arrays."""
    if len(a) == 0 or len(b) == 0:
        return a
    if _strategy == "merge" or (
        _strategy == "adaptive"
        and not _gallop_wins(min(len(a), len(b)), max(len(a), len(b)))
    ):
        return np.setdiff1d(a, b, assume_unique=True)
    return a[~_probe_mask(a, b)]


def intersect_multi(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Intersection of several sorted unique arrays, smallest operand first.

    Starting from the smallest operand keeps every intermediate result
    no larger than it, so each later probe is cheap; an empty
    intermediate short-circuits the rest.
    """
    if not arrays:
        raise ValueError("intersect_multi needs at least one array")
    ordered = sorted(arrays, key=len)
    out = ordered[0]
    for other in ordered[1:]:
        if len(out) == 0:
            return out
        out = intersect_values(out, other)
    return out


# ----------------------------------------------------------------------
# Count-only fast paths (leaf level: results are counted, never used)
# ----------------------------------------------------------------------

def _excluded_hits(
    base: np.ndarray, member: np.ndarray, exclude: np.ndarray
) -> int:
    """How many ``exclude`` values sit in ``base`` with ``member`` set.

    ``member`` is a boolean mask over ``base`` (the result-membership
    mask the count kernels already built), so one extra probe settles
    membership in the *result* for every excluded id at once.
    """
    n = len(base)
    if n == 0:
        return 0
    pos = base.searchsorted(exclude)
    pos[pos == n] = 0
    return int(np.count_nonzero((base[pos] == exclude) & member[pos]))


def intersect_count_below(
    a: np.ndarray,
    b: np.ndarray,
    bound: Optional[int] = None,
    exclude: Optional[np.ndarray] = None,
) -> Tuple[int, int]:
    """``(|a ∩ b|, |{v ∈ a ∩ b : v < bound, v ∉ exclude}|)``.

    Count-only intersection: nothing is materialized.  ``bound=None``
    means unbounded; ``exclude`` (a sorted-or-not id array, every id
    already below the bound) is subtracted from the bounded count.  One
    probe of the smaller operand yields both counts — the bounded one is
    a prefix sum of the membership mask, because the operands are sorted
    — and one more probe settles the exclusions.
    """
    small, big = (a, b) if len(a) <= len(b) else (b, a)
    if len(small) == 0:
        return 0, 0
    hit = _probe_mask(small, big)
    raw = int(np.count_nonzero(hit))
    if bound is None:
        below = raw
    else:
        below = int(np.count_nonzero(hit[: int(small.searchsorted(bound))]))
    if exclude is not None and below:
        below -= _excluded_hits(small, hit, exclude)
    return raw, below


def difference_count_below(
    a: np.ndarray,
    b: np.ndarray,
    bound: Optional[int] = None,
    exclude: Optional[np.ndarray] = None,
) -> Tuple[int, int]:
    """``(|a \\ b|, |{v ∈ a \\ b : v < bound, v ∉ exclude}|)``."""
    if len(a) == 0:
        return 0, 0
    if len(b) == 0:
        keep = np.ones(len(a), dtype=bool)
    else:
        keep = ~_probe_mask(a, b)
    raw = int(np.count_nonzero(keep))
    if bound is None:
        below = raw
    else:
        below = int(np.count_nonzero(keep[: int(a.searchsorted(bound))]))
    if exclude is not None and below:
        below -= _excluded_hits(a, keep, exclude)
    return raw, below


def segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sums of a flat (typically boolean) element array.

    One cumulative sum serves every segment at once — the reduction
    primitive all segmented kernels share.
    """
    csum = np.concatenate(([0], np.cumsum(values, dtype=np.int64)))
    return csum[offsets[1:]] - csum[offsets[:-1]]


def segment_ids(offsets: np.ndarray) -> np.ndarray:
    """Segment index of every element of a segmented array."""
    lengths = np.diff(offsets)
    return np.repeat(np.arange(len(lengths), dtype=np.int64), lengths)


def gather_segments(
    concat: np.ndarray, offsets: np.ndarray, take: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Re-gather segments ``take[i]`` of a segmented array, in order.

    The segmented analogue of fancy indexing: builds a new segmented
    array whose ``i``-th segment is segment ``take[i]`` of the input
    (segments may repeat — the frontier engine uses this to fan a
    memoized ancestor frontier out over all of its descendants).
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    take = np.asarray(take, dtype=np.int64)
    starts = offsets[take]
    lengths = offsets[take + 1] - starts
    out_offsets = np.zeros(len(take) + 1, dtype=np.int64)
    np.cumsum(lengths, out=out_offsets[1:])
    total = int(out_offsets[-1])
    if total == 0:
        return concat[:0], out_offsets
    positions = (
        np.arange(total, dtype=np.int64)
        - np.repeat(out_offsets[:-1], lengths)
        + np.repeat(starts, lengths)
    )
    return concat[positions], out_offsets


def _per_element_bounds(bounds, offsets: np.ndarray):
    """Expand per-segment bounds to one comparand per element.

    A scalar bound broadcasts as-is; an array of one bound per segment
    is repeated across each segment's elements.  Both the counting and
    the materializing segmented kernels compare through this single
    helper, so the scalar and vector cases share one code path.
    """
    if np.ndim(bounds) == 0:
        return bounds
    return np.repeat(np.asarray(bounds), np.diff(offsets))


def segmented_intersect_count(
    base: np.ndarray,
    concat: np.ndarray,
    offsets: np.ndarray,
    bounds=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment ``(|seg ∩ base|, |{v ∈ seg ∩ base : v < bound}|)``.

    The batch-frontier kernel: ``concat`` holds many sorted segments
    back to back (segment ``i`` is ``concat[offsets[i]:offsets[i+1]]``,
    typically a whole frontier's worth of adjacency slices gathered in
    one shot) and every segment is intersected with the same sorted
    ``base`` by a single membership probe.  Per-segment totals fall out
    of one cumulative sum — no Python-level loop over the frontier.

    ``bounds`` is ``None`` (no vid bound), a scalar (one bound for every
    segment) or an array with one bound per segment.  Returns int64
    arrays of length ``len(offsets) - 1``.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    nseg = len(offsets) - 1
    if len(concat) == 0 or len(base) == 0:
        zeros = np.zeros(nseg, dtype=np.int64)
        return zeros, zeros.copy()
    hit = _probe_mask(concat, base)
    raw = segment_sums(hit, offsets)
    if bounds is None:
        return raw, raw.copy()
    below_mask = hit & (concat < _per_element_bounds(bounds, offsets))
    return raw, segment_sums(below_mask, offsets)


def segmented_difference_count(
    base: np.ndarray,
    concat: np.ndarray,
    offsets: np.ndarray,
    bounds=None,
    *,
    swap: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment difference counts against one fixed sorted ``base``.

    ``swap=False`` counts ``seg \\ base`` per segment; ``swap=True``
    counts ``base \\ seg`` (fixed minuend, varying subtrahend — the
    difference-only leaf shape).  Either way a single membership probe
    of ``concat`` against ``base`` settles both directions, because
    ``|x \\ y| = |x| - |x ∩ y|``; bounded counts subtract the bounded
    intersection from the bounded minuend the same way.  ``bounds`` as
    in :func:`segmented_intersect_count`.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    nseg = len(offsets) - 1
    lengths = offsets[1:] - offsets[:-1]
    if swap and len(base) == 0:
        zeros = np.zeros(nseg, dtype=np.int64)
        return zeros, zeros.copy()
    hit = (
        _probe_mask(concat, base)
        if len(concat) and len(base)
        else np.zeros(len(concat), dtype=bool)
    )
    inter_raw = segment_sums(hit, offsets)
    if bounds is None:
        inter_below = inter_raw
    else:
        below_mask = hit & (concat < _per_element_bounds(bounds, offsets))
        inter_below = segment_sums(below_mask, offsets)
    if swap:
        raw = len(base) - inter_raw
        if bounds is None:
            minuend_below = np.full(nseg, len(base), dtype=np.int64)
        else:
            minuend_below = base.searchsorted(bounds).astype(np.int64)
            if minuend_below.ndim == 0:
                minuend_below = np.full(
                    nseg, int(minuend_below), dtype=np.int64
                )
        return raw, minuend_below - inter_below
    raw = lengths - inter_raw
    if bounds is None:
        return raw, raw.copy()
    elem_below = segment_sums(
        concat < _per_element_bounds(bounds, offsets), offsets
    )
    return raw, elem_below - inter_below


def segmented_intersect(
    base: np.ndarray, concat: np.ndarray, offsets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Materialize ``seg ∩ base`` for every segment.

    Returns ``(values, out_offsets)`` in the same segmented layout as
    the input: segment ``i`` of the result is
    ``values[out_offsets[i]:out_offsets[i+1]]``, sorted.  One membership
    probe + one boolean compress for the whole frontier.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    if len(concat) == 0 or len(base) == 0:
        return concat[:0], np.zeros(len(offsets), dtype=np.int64)
    hit = _probe_mask(concat, base)
    csum = np.concatenate(([0], np.cumsum(hit, dtype=np.int64)))
    return concat[hit], csum[offsets]


def segmented_difference(
    base: np.ndarray, concat: np.ndarray, offsets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Materialize ``seg \\ base`` for every segment (layout as above)."""
    offsets = np.asarray(offsets, dtype=np.int64)
    if len(concat) == 0:
        return concat[:0], np.zeros(len(offsets), dtype=np.int64)
    if len(base) == 0:
        return concat.copy(), offsets.copy()
    keep = ~_probe_mask(concat, base)
    csum = np.concatenate(([0], np.cumsum(keep, dtype=np.int64)))
    return concat[keep], csum[offsets]


def _pair_hit(
    a_concat: np.ndarray,
    a_offsets: np.ndarray,
    b_concat: np.ndarray,
    b_offsets: np.ndarray,
    keyspace: int,
) -> np.ndarray:
    """Membership of each ``a`` element in its row's ``b`` segment.

    Both operands are segmented arrays with the same segment count; the
    rows are made disjoint by keying every element with
    ``row * keyspace + value`` (``keyspace`` strictly exceeds every
    value, e.g. ``num_vertices``), which keeps the concatenation
    globally sorted, so one probe answers every row at once.
    """
    a_keys = segment_ids(a_offsets) * np.int64(keyspace) + a_concat
    b_keys = segment_ids(b_offsets) * np.int64(keyspace) + b_concat
    return _probe_mask(a_keys, b_keys)


def segmented_pair_intersect(
    a_concat: np.ndarray,
    a_offsets: np.ndarray,
    b_concat: np.ndarray,
    b_offsets: np.ndarray,
    keyspace: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise ``a_i ∩ b_i`` of two segmented arrays (both varying).

    The level-expansion kernel: unlike :func:`segmented_intersect`, both
    operands differ per row.  Returns ``(values, out_offsets)``.
    """
    a_offsets = np.asarray(a_offsets, dtype=np.int64)
    if len(a_concat) == 0 or len(b_concat) == 0:
        return a_concat[:0], np.zeros(len(a_offsets), dtype=np.int64)
    hit = _pair_hit(a_concat, a_offsets, b_concat, b_offsets, keyspace)
    csum = np.concatenate(([0], np.cumsum(hit, dtype=np.int64)))
    return a_concat[hit], csum[a_offsets]


def segmented_pair_difference(
    a_concat: np.ndarray,
    a_offsets: np.ndarray,
    b_concat: np.ndarray,
    b_offsets: np.ndarray,
    keyspace: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise ``a_i \\ b_i`` of two segmented arrays."""
    a_offsets = np.asarray(a_offsets, dtype=np.int64)
    if len(a_concat) == 0:
        return a_concat[:0], np.zeros(len(a_offsets), dtype=np.int64)
    if len(b_concat) == 0:
        return a_concat.copy(), a_offsets.copy()
    keep = ~_pair_hit(a_concat, a_offsets, b_concat, b_offsets, keyspace)
    csum = np.concatenate(([0], np.cumsum(keep, dtype=np.int64)))
    return a_concat[keep], csum[a_offsets]


def segmented_pair_count_below(
    a_concat: np.ndarray,
    a_offsets: np.ndarray,
    b_concat: np.ndarray,
    b_offsets: np.ndarray,
    *,
    keyspace: int,
    intersect: bool = True,
    bounds=None,
    exclude_mask: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise multi-way count: set op + bound + exclusion in one pass.

    Per row ``i`` this computes ``(|r_i|, |{v ∈ r_i : v < bound_i,
    not excluded}|)`` where ``r_i`` is ``a_i ∩ b_i`` (``intersect=True``)
    or ``a_i \\ b_i`` — the count-only leaf of the frontier engine, with
    the symmetry bound and the injectivity exclusions folded into the
    same masked reduction instead of a second pass.  ``bounds`` is
    ``None``/scalar/per-row as in :func:`segmented_intersect_count`;
    ``exclude_mask`` is a per-element boolean over ``a_concat`` marking
    values that must not count toward the bounded total (the caller
    marks its row's embedding vertices).
    """
    a_offsets = np.asarray(a_offsets, dtype=np.int64)
    nseg = len(a_offsets) - 1
    if len(a_concat) == 0:
        zeros = np.zeros(nseg, dtype=np.int64)
        return zeros, zeros.copy()
    if len(b_concat) == 0:
        hit = np.zeros(len(a_concat), dtype=bool)
    else:
        hit = _pair_hit(a_concat, a_offsets, b_concat, b_offsets, keyspace)
    result = hit if intersect else ~hit
    raw = segment_sums(result, a_offsets)
    below_mask = result
    if bounds is not None:
        below_mask = below_mask & (
            a_concat < _per_element_bounds(bounds, a_offsets)
        )
    if exclude_mask is not None:
        below_mask = below_mask & ~exclude_mask
    return raw, segment_sums(below_mask, a_offsets)


def intersect_count(a: np.ndarray, b: np.ndarray) -> int:
    """``|a ∩ b|`` without materializing the intersection."""
    return intersect_count_below(a, b)[0]


def difference_count(a: np.ndarray, b: np.ndarray) -> int:
    """``|a \\ b|`` without materializing the difference."""
    return difference_count_below(a, b)[0]


def contains(values: np.ndarray, v: int) -> bool:
    """Binary-search membership test on a sorted array."""
    pos = int(values.searchsorted(v))
    return pos < len(values) and int(values[pos]) == v
