"""Cross-validation helpers (DESIGN.md §7).

Every mining path in the repository — the pattern-aware engine, the
software c-map engine, the pattern-oblivious baseline, and the hardware
simulator — must agree on match counts, and those counts must agree with
a networkx-free brute-force enumerator on small graphs.  These helpers
centralize that checking for tests and for users validating their own
patterns.

For the full backend matrix (count-only kernels, the legacy engine, the
multi-process miner, the simulator), the oracle, seeded fuzzing, and
shrinking, see the dedicated :mod:`repro.verify` subsystem — this module
keeps the light in-process engine checks.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..compiler import compile_pattern
from ..graph import CSRGraph
from ..patterns import Pattern, brute_force_count
from .cmap_sw import CMapSoftwareEngine
from .explore import PatternAwareEngine
from .oblivious import ObliviousEngine

__all__ = ["count_all_ways", "check_consistency"]


def count_all_ways(
    graph: CSRGraph,
    pattern: Pattern,
    *,
    induced: bool = False,
    include_brute_force: bool = True,
    max_subgraphs: Optional[int] = None,
) -> Dict[str, int]:
    """Count matches via every available execution path.

    Returns a dict mapping path name to count.  Intended for small
    graphs; the brute-force entry is skipped when
    ``include_brute_force=False``.
    """
    plan = compile_pattern(pattern, induced=induced)
    probe = PatternAwareEngine(graph, plan)
    probe.leaf_count_min_work = 0  # force the count-only probe kernels
    results = {
        "pattern_aware": PatternAwareEngine(graph, plan).run().counts[0],
        "pattern_aware_materialize": PatternAwareEngine(
            graph, plan, count_leaves=False
        ).run().counts[0],
        "pattern_aware_probe": probe.run().counts[0],
        "cmap_software": CMapSoftwareEngine(graph, plan).run().counts[0],
        "oblivious": ObliviousEngine(
            graph, [pattern], induced=induced, max_subgraphs=max_subgraphs
        )
        .run()
        .counts[0],
    }
    if not plan.oriented:
        unoriented = plan  # already symmetry-ordered
        no_memo = PatternAwareEngine(
            graph, unoriented, use_frontier_memo=False
        )
        results["pattern_aware_no_memo"] = no_memo.run().counts[0]
    if include_brute_force:
        results["brute_force"] = brute_force_count(
            graph, pattern, induced=induced
        )
    return results


def check_consistency(
    graph: CSRGraph,
    pattern: Pattern,
    *,
    induced: bool = False,
    include_brute_force: bool = True,
) -> int:
    """Assert all execution paths agree; return the agreed count."""
    results = count_all_ways(
        graph,
        pattern,
        induced=induced,
        include_brute_force=include_brute_force,
    )
    values = set(results.values())
    if len(values) != 1:
        raise AssertionError(
            f"count mismatch for {pattern.name or pattern!r} on "
            f"{graph.name or graph!r}: {results}"
        )
    return values.pop()
