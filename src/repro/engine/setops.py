"""Counted set operations on sorted vertex lists.

These mirror the merge-based SIU/SDU algorithm (paper Fig. 9): both
inputs are sorted id lists and the hardware executes one merge-loop
iteration per cycle.  We model the iteration count as ``len(a) + len(b)``
— the worst case of the merge loop — for *both* the CPU baseline and the
accelerator, so speedup ratios are not skewed by the bound.

The actual set computation is delegated to numpy for speed; only the
*accounting* follows the merge model.
"""

from __future__ import annotations

import numpy as np

from .counters import OpCounters

__all__ = [
    "intersect",
    "difference",
    "bound_below",
    "remove_values",
    "merge_iterations",
]


def merge_iterations(len_a: int, len_b: int) -> int:
    """Cycles the merge loop takes to combine two sorted lists."""
    return len_a + len_b


def intersect(
    a: np.ndarray, b: np.ndarray, counters: OpCounters | None = None
) -> np.ndarray:
    """Sorted intersection of two sorted unique id lists."""
    if counters is not None:
        counters.set_intersections += 1
        counters.setop_iterations += merge_iterations(len(a), len(b))
    return np.intersect1d(a, b, assume_unique=True)


def difference(
    a: np.ndarray, b: np.ndarray, counters: OpCounters | None = None
) -> np.ndarray:
    """Sorted difference a \\ b of two sorted unique id lists."""
    if counters is not None:
        counters.set_differences += 1
        counters.setop_iterations += merge_iterations(len(a), len(b))
    return np.setdiff1d(a, b, assume_unique=True)


def bound_below(values: np.ndarray, bound: int) -> np.ndarray:
    """Prefix of a sorted list with ids strictly below ``bound``.

    This is the symmetry-order filter: because lists are sorted, the
    hardware applies the vid upper bound with a single cut rather than a
    per-element pass.
    """
    return values[: int(np.searchsorted(values, bound))]


def remove_values(values: np.ndarray, forbidden) -> np.ndarray:
    """Drop specific ids (the current embedding) from a sorted list."""
    if not len(values):
        return values
    mask = None
    for v in forbidden:
        pos = int(np.searchsorted(values, v))
        if pos < len(values) and values[pos] == v:
            if mask is None:
                mask = np.ones(len(values), dtype=bool)
            mask[pos] = False
    return values if mask is None else values[mask]
