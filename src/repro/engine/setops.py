"""Counted set operations on sorted vertex lists.

These mirror the merge-based SIU/SDU algorithm (paper Fig. 9): both
inputs are sorted id lists and the hardware executes one merge-loop
iteration per cycle.  We model the iteration count as ``len(a) + len(b)``
— the worst case of the merge loop — for *both* the CPU baseline and the
accelerator, so speedup ratios are not skewed by the bound.

The actual set computation is delegated to the size-adaptive kernels in
:mod:`repro.engine.kernels` (merge vs. galloping probe, picked per
call); only the *accounting* follows the merge model, and it is
independent of which kernel executed — counters are charged from the
operand lengths alone, so every kernel strategy is bit-identical on the
counter side.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from . import kernels
from .counters import OpCounters

__all__ = [
    "intersect",
    "difference",
    "intersect_count",
    "difference_count",
    "intersect_many",
    "bound_below",
    "remove_values",
    "merge_iterations",
]


def merge_iterations(len_a: int, len_b: int) -> int:
    """Cycles the merge loop takes to combine two sorted lists."""
    return len_a + len_b


def intersect(
    a: np.ndarray, b: np.ndarray, counters: OpCounters | None = None
) -> np.ndarray:
    """Sorted intersection of two sorted unique id lists."""
    if counters is not None:
        counters.set_intersections += 1
        counters.setop_iterations += merge_iterations(len(a), len(b))
    return kernels.intersect_values(a, b)


def difference(
    a: np.ndarray, b: np.ndarray, counters: OpCounters | None = None
) -> np.ndarray:
    """Sorted difference a \\ b of two sorted unique id lists."""
    if counters is not None:
        counters.set_differences += 1
        counters.setop_iterations += merge_iterations(len(a), len(b))
    return kernels.difference_values(a, b)


def intersect_count(
    a: np.ndarray,
    b: np.ndarray,
    counters: OpCounters | None = None,
    *,
    bound: Optional[int] = None,
    exclude: Optional[np.ndarray] = None,
) -> Tuple[int, int]:
    """Count-only intersection: ``(|a ∩ b|, filtered count below bound)``.

    Charged to the counters exactly like :func:`intersect` — the merge
    model bills operand lengths, not output size — so the engine's leaf
    fast path leaves every counter bit-identical.  ``exclude`` ids
    (already below the bound) are subtracted from the bounded count.
    """
    if counters is not None:
        counters.set_intersections += 1
        counters.setop_iterations += merge_iterations(len(a), len(b))
    return kernels.intersect_count_below(a, b, bound, exclude)


def difference_count(
    a: np.ndarray,
    b: np.ndarray,
    counters: OpCounters | None = None,
    *,
    bound: Optional[int] = None,
    exclude: Optional[np.ndarray] = None,
) -> Tuple[int, int]:
    """Count-only difference: ``(|a \\ b|, filtered count below bound)``."""
    if counters is not None:
        counters.set_differences += 1
        counters.setop_iterations += merge_iterations(len(a), len(b))
    return kernels.difference_count_below(a, b, bound, exclude)


def intersect_many(
    arrays: Sequence[np.ndarray], counters: OpCounters | None = None
) -> np.ndarray:
    """Multi-way sorted intersection.

    Without counters the kernel reorders operands smallest-first (the
    cheapest evaluation order).  With counters the fold runs in the
    given order so the charged iteration counts match a sequential
    left-to-right execution — operand order changes intermediate
    lengths, and the accounting must not depend on kernel choices.
    """
    if not len(arrays):
        raise ValueError("intersect_many needs at least one array")
    if counters is None:
        return kernels.intersect_multi(arrays)
    out = arrays[0]
    for other in arrays[1:]:
        out = intersect(out, other, counters)
    return out


def bound_below(values: np.ndarray, bound: int) -> np.ndarray:
    """Prefix of a sorted list with ids strictly below ``bound``.

    This is the symmetry-order filter: because lists are sorted, the
    hardware applies the vid upper bound with a single cut rather than a
    per-element pass.
    """
    return values[: int(values.searchsorted(bound))]


def remove_values(values: np.ndarray, forbidden) -> np.ndarray:
    """Drop specific ids (the current embedding) from a sorted list.

    One vectorized ``searchsorted`` over all forbidden ids at once —
    this runs once per candidate step, on the hottest path.
    """
    if not len(values):
        return values
    forbidden = np.asarray(forbidden)
    if not len(forbidden):
        return values
    pos = values.searchsorted(forbidden)
    valid = pos < len(values)
    hits = pos[valid]
    hits = hits[values[hits] == forbidden[valid]]
    if not len(hits):
        return values
    mask = np.ones(len(values), dtype=bool)
    mask[hits] = False
    return values[mask]
