"""Partitioned mining for graphs larger than memory (paper §VII-D).

"FlexMiner does support larger graphs as long as they fit in memory.
To support graphs larger than memory capacity, we can add graph
partitioning support [5, 40, 80] in our framework."

This module implements that extension.  The key observation: every
match is owned by exactly one *root* (its depth-0 vertex under the
matching/symmetry order), and a match's vertices all lie within
``k - 1`` hops of its root.  So the root set can be partitioned, and
each partition mined independently against the induced subgraph of its
roots' ``(k-1)``-hop ball (the *halo*) — a working set that is a small
fraction of the full graph for good partitions.  Vertex ids are
remapped order-preservingly, which keeps the symmetry-order vid bounds
valid inside each halo.

Completeness + uniqueness are inherited: the union over partitions
visits every root exactly once, and the per-partition engine is the
verified reference engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..compiler.plan import ExecutionPlan, MultiPlan
from ..errors import ReproError
from ..graph import CSRGraph, induced_subgraph, orient_by_degree
from .counters import OpCounters
from .explore import MiningResult, PatternAwareEngine

__all__ = [
    "partition_vertices",
    "halo_ball",
    "PartitionStats",
    "PartitionedMiner",
    "mine_partitioned",
]


def partition_vertices(
    num_vertices: int, num_parts: int, *, method: str = "block"
) -> List[np.ndarray]:
    """Split vertex ids into ``num_parts`` disjoint root sets.

    ``block`` gives contiguous ranges (locality friendly); ``stride``
    deals ids round-robin (balances power-law hubs across parts).
    """
    if num_parts < 1:
        raise ReproError("need at least one partition")
    ids = np.arange(num_vertices)
    if method == "block":
        return [part for part in np.array_split(ids, num_parts)]
    if method == "stride":
        return [ids[i::num_parts] for i in range(num_parts)]
    raise ReproError(f"unknown partition method {method!r}")


def halo_ball(
    graph: CSRGraph, roots: Sequence[int], hops: int
) -> np.ndarray:
    """Vertices within ``hops`` hops of any root (roots included)."""
    seen = np.zeros(graph.num_vertices, dtype=bool)
    frontier = np.asarray(roots, dtype=np.int64)
    seen[frontier] = True
    for _ in range(hops):
        if not len(frontier):
            break
        next_frontier = []
        for v in frontier:
            nbrs = graph.neighbors(int(v))
            fresh = nbrs[~seen[nbrs]]
            if len(fresh):
                seen[fresh] = True
                next_frontier.append(fresh)
        frontier = (
            np.concatenate(next_frontier)
            if next_frontier
            else np.empty(0, dtype=np.int64)
        )
    return np.nonzero(seen)[0]


@dataclass
class PartitionStats:
    """Working-set accounting for one mined partition."""

    part: int
    num_roots: int
    halo_vertices: int
    halo_edges: int
    matches: int

    @property
    def halo_fraction(self) -> float:
        """Halo size relative to roots (expansion factor)."""
        return self.halo_vertices / max(self.num_roots, 1)


class PartitionedMiner:
    """Mine a single-pattern plan partition by partition."""

    def __init__(
        self,
        graph: CSRGraph,
        plan: ExecutionPlan,
        num_parts: int,
        *,
        method: str = "block",
        hops: Optional[int] = None,
    ) -> None:
        if isinstance(plan, MultiPlan):
            raise ReproError(
                "partitioned mining supports single-pattern plans"
            )
        if getattr(plan, "root_label", None) is not None:
            raise ReproError(
                "partitioned mining does not support labeled plans yet"
            )
        self.plan = plan
        # Orientation happens *before* partitioning so ranks are global.
        self.work_graph = (
            orient_by_degree(graph) if plan.oriented else graph
        )
        self.num_parts = num_parts
        self.method = method
        self.hops = (
            hops if hops is not None else plan.num_levels - 1
        )
        self.stats: List[PartitionStats] = []

    def run(self) -> MiningResult:
        """Mine every partition; returns the combined result."""
        # The plan executes on halo subgraphs directly: orientation was
        # already applied, so the per-partition engines must not
        # re-orient.  A copy of the plan with oriented=False does that
        # while keeping the (bound-free) clique steps intact.
        from dataclasses import replace

        local_plan = replace(self.plan, oriented=False)
        counts = 0
        counters = OpCounters()
        self.stats = []
        parts = partition_vertices(
            self.work_graph.num_vertices, self.num_parts,
            method=self.method,
        )
        for index, roots in enumerate(parts):
            if not len(roots):
                self.stats.append(PartitionStats(index, 0, 0, 0, 0))
                continue
            ball = halo_ball(self.work_graph, roots, self.hops)
            halo = induced_subgraph(self.work_graph, ball.tolist())
            # Order-preserving renumbering: position in the sorted ball.
            local_roots = np.searchsorted(ball, roots)
            engine = PatternAwareEngine(
                halo, local_plan, work_graph=halo
            )
            result = engine.run(roots=local_roots.tolist())
            counts += result.counts[0]
            counters.merge(result.counters)
            self.stats.append(
                PartitionStats(
                    part=index,
                    num_roots=len(roots),
                    halo_vertices=halo.num_vertices,
                    halo_edges=halo.num_edges,
                    matches=result.counts[0],
                )
            )
        counters.matches = counts
        return MiningResult(counts=(counts,), counters=counters)

    def max_working_set_edges(self) -> int:
        """Largest per-partition halo (the memory-capacity proxy)."""
        return max((s.halo_edges for s in self.stats), default=0)


def mine_partitioned(
    graph: CSRGraph,
    plan: ExecutionPlan,
    num_parts: int,
    *,
    method: str = "block",
) -> MiningResult:
    """Convenience wrapper around :class:`PartitionedMiner`."""
    return PartitionedMiner(graph, plan, num_parts, method=method).run()