"""Persistent worker pool: fork once, mine an arbitrary request stream.

:class:`~repro.engine.parallel.ParallelMiner` pays the full process
spin-up bill — fork, shared-memory CSR export, queue construction — on
*every* ``mine()`` call, which on the scaled benchmark inputs swamps
the mining work itself (BENCH_engine.json records parallel-4 *slower*
than the serial legacy engine on TC).  :class:`MinerPool` amortizes all
of that over a stream of requests:

* **fork once** — N worker processes attach the
  :class:`~repro.graph.SharedCSRBuffers` CSR (plus labels and, lazily,
  the degree-oriented DAG) a single time and stay resident;
* **lightweight request protocol** — per request only the compiled plan
  and (root, chunk) task ids cross the queues, plus one result summary
  per worker on the way back; cooperative shutdown via per-worker
  control messages;
* **measured dispatch overhead** — the pool calibrates a per-task
  round-trip cost with ping messages (timed through
  :class:`repro.obs.prof.LaneRecorder` — engine code never reads the
  clock directly, fmlint FM206) and exposes it as
  :attr:`MinerPool.dispatch_overhead_s`;
* **cost-model chunking** — ``mine(..., split_degree="auto")`` asks
  :func:`cost_model_split_degree` to split hub roots into depth-1
  slices only when the :mod:`repro.compiler.estimate` work estimate
  says a chunk carries several multiples of the measured dispatch
  overhead; light workloads run unsplit (and therefore keep the merged
  :class:`~repro.engine.counters.OpCounters` bit-identical to a serial
  run, same contract as :class:`ParallelMiner`).

``workers=1`` never forks: requests run in-process through the same
task order, which is the exact-parity debugging configuration.  The
pool is also the *only* place in ``repro.engine`` allowed to construct
worker processes (fmlint FM207 polices this); ``ParallelMiner`` now
routes its one-shot multi-process mining through a transient pool.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import queue as queue_module
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.estimate import GraphProfile, estimate_plan
from ..compiler.plan import MultiPlan
from ..graph import (
    LabeledGraph,
    SharedCSRBuffers,
    attach_shared_csr,
    orient_by_degree,
    share_array,
)
from ..obs import NULL_PROFILER, NULL_REGISTRY, NULL_TRACER
from ..obs.prof import LaneRecorder, task_label
from .counters import OpCounters
from .explore import MiningResult, PatternAwareEngine
from .parallel import (
    Task,
    _build_worker_graph,
    _OwnedBlock,
    _worker_summary,
    filter_roots,
    order_tasks,
    publish_worker_metrics,
    run_tasks_in_process,
)

__all__ = [
    "CALIBRATION_PINGS",
    "MIN_SPLIT_DEGREE",
    "MinerPool",
    "PoolWorkerError",
    "SPLIT_WORK_FACTOR",
    "WORK_RATE_UNITS_PER_S",
    "cost_model_split_degree",
]

#: Ping round trips used to measure the per-task dispatch overhead (one
#: warm-up ping is sent first and discarded — it absorbs worker startup).
CALIBRATION_PINGS = 8

#: Result-queue poll period (seconds); worker death and request
#: timeouts are detected at this granularity.
_DRAIN_POLL_S = 1.0

#: How many multiples of the measured dispatch overhead one chunk's
#: *estimated* mining work must carry before auto-splitting engages.
#: Below this, queue traffic costs more than the parallelism recovers.
SPLIT_WORK_FACTOR = 4.0

#: Finest auto-split chunk: splitting below a few dozen depth-1
#: candidates re-runs candidate generation more often than it balances.
MIN_SPLIT_DEGREE = 8

#: Calibrated ballpark of merge-model work units (candidates scanned,
#: i.e. adjacency entries touched) the engine retires per second.  The
#: cost model only needs the order of magnitude: it converts the
#: measured dispatch overhead (seconds) into "units a chunk must carry
#: to be worth dispatching", and a 2-3x miss just shifts the split
#: threshold by the same factor.
WORK_RATE_UNITS_PER_S = 2.5e7


class PoolWorkerError(RuntimeError):
    """A pool worker raised, died or stalled; the pool is broken.

    ``reason`` is ``"failed"`` (the worker sent a traceback before
    exiting), ``"died"`` (hard crash detected via exit code) or
    ``"timeout"`` (no result arrived within the caller's request
    timeout — a hung or wedged worker); the traceback / exit codes /
    deadline are in ``detail``.  A broken pool refuses further
    requests; ``close()`` it.
    """

    def __init__(self, worker_id, reason: str, detail: str = "") -> None:
        self.worker_id = worker_id
        self.reason = reason
        self.detail = detail
        message = f"mining pool worker {worker_id} {reason}"
        if detail:
            message += f":\n{detail}"
        super().__init__(message)


def cost_model_split_degree(
    graph,
    plan,
    *,
    dispatch_overhead_s: float,
    profile: Optional[GraphProfile] = None,
    work_rate: float = WORK_RATE_UNITS_PER_S,
) -> Optional[int]:
    """Pick a straggler-split degree from estimated work vs dispatch cost.

    The :mod:`repro.compiler.estimate` model prices the whole search
    tree in scanned candidates; dividing by the total degree gives the
    average work hanging off one depth-1 candidate, so a chunk of ``s``
    candidates is worth roughly ``s * units_per_edge / work_rate``
    seconds.  The split degree is the smallest ``s`` whose chunk still
    carries :data:`SPLIT_WORK_FACTOR` times the measured dispatch
    overhead (never below :data:`MIN_SPLIT_DEGREE`).  Returns ``None``
    — no splitting — when no root is heavy enough to yield at least two
    chunks, which also keeps merged op counters bit-identical.
    """
    if isinstance(plan, MultiPlan):
        return None
    levels = estimate_plan(plan, graph, profile=profile)
    total_units = float(sum(level.candidates_scanned for level in levels))
    degrees = graph.degrees()
    if len(degrees) == 0 or total_units <= 0.0:
        return None
    max_degree = int(degrees.max())
    total_degree = float(degrees.sum())
    if total_degree <= 0.0:
        return None
    units_per_edge = total_units / total_degree
    min_chunk_units = (
        SPLIT_WORK_FACTOR * max(dispatch_overhead_s, 0.0) * work_rate
    )
    split = max(
        int(math.ceil(min_chunk_units / units_per_edge)), MIN_SPLIT_DEGREE
    )
    if max_degree < 2 * split:
        return None
    return split


class _PoolLease:
    """Context manager pairing :meth:`MinerPool.acquire`/``release``."""

    __slots__ = ("_pool",)

    def __init__(self, pool: "MinerPool") -> None:
        self._pool = pool

    def __enter__(self) -> "MinerPool":
        return self._pool.acquire()

    def __exit__(self, *exc) -> None:
        self._pool.release()


def _pool_worker(
    worker_id: int,
    topo_spec: Dict[str, object],
    labels_spec: Optional[Dict[str, object]],
    ctrl_queue,
    task_queue,
    result_queue,
) -> None:
    """Worker main loop: attach once, then serve mine/ping requests.

    The topology (and labels) attach exactly once, before the first
    request; oriented work graphs attach on first use and are cached by
    shared-memory name, so a stream of same-shaped requests touches no
    graph-sized data after the first.  One ``None`` task sentinel per
    worker ends each request's drain; a ``("stop",)`` control message
    ends the worker.  Any exception is reported as a structured
    ``("error", ...)`` result and kills the worker — the parent turns it
    into :class:`PoolWorkerError`.
    """
    req_id = None
    try:
        graph = _build_worker_graph(topo_spec, labels_spec)
        work_graphs: Dict[str, object] = {}
        while True:
            message = ctrl_queue.get()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "ping":
                result_queue.put(("pong", message[1], worker_id, None))
                continue
            _, req_id, plan, work_spec, options, profile = message
            rec = LaneRecorder()
            with rec.span("attach-shm"):
                work_graph = None
                if work_spec is not None:
                    key = str(work_spec["indptr"]["shm"])
                    if key not in work_graphs:
                        work_graphs[key] = attach_shared_csr(work_spec)
                    work_graph = work_graphs[key]
                engine = PatternAwareEngine(
                    graph, plan, work_graph=work_graph, **options
                )
            tasks_done = 0
            chunks_done = 0
            while True:
                with rec.span("queue-wait", cat="queue-wait"):
                    task = task_queue.get()
                if task is None:
                    break
                root, chunk = task
                with rec.span(task_label(root, chunk), cat="task"):
                    engine.run_task(root, chunk=chunk)
                if chunk is None:
                    tasks_done += 1
                else:
                    chunks_done += 1
            result_queue.put(
                (
                    "done",
                    req_id,
                    worker_id,
                    _worker_summary(
                        engine, rec, tasks_done, chunks_done, profile=profile
                    ),
                )
            )
            req_id = None
    except BaseException:  # pragma: no cover - exercised via error tests
        result_queue.put(("error", req_id, worker_id, traceback.format_exc()))


class MinerPool:
    """Resident worker processes serving a stream of mining requests.

    Parameters
    ----------
    graph:
        The data graph (:class:`CSRGraph` or :class:`LabeledGraph`),
        shared with workers through POSIX shared memory exactly once.
    workers:
        Worker process count (default ``os.cpu_count()``).  ``1`` runs
        every request in-process — no fork, exact serial parity.
    use_frontier_memo / count_leaves / batch_leaves / batch_frontier:
        Forwarded to every worker engine, for every request.
    oriented_graph:
        Optional pre-computed degree-oriented DAG; computed lazily on
        the first oriented request otherwise.
    tracer / metrics / profiler:
        Parent-side observability (same semantics as
        :class:`~repro.engine.parallel.ParallelMiner`); the pool adds
        ``engine.pool.*`` gauges on top of the ``engine.parallel.*``
        family.

    Requests are served strictly one at a time; the pool is not
    thread-safe.  Use as a context manager or call :meth:`close` —
    closing is idempotent and unlinks every shared segment.
    """

    def __init__(
        self,
        graph,
        *,
        workers: Optional[int] = None,
        use_frontier_memo: bool = True,
        count_leaves: bool = True,
        batch_leaves: bool = True,
        batch_frontier: bool = False,
        oriented_graph=None,
        tracer=None,
        metrics=None,
        profiler=None,
        calibration_clock=None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.graph = graph
        self.workers = int(workers)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        #: Injectable monotonic clock for dispatch calibration (tests
        #: pin the arithmetic with a fake stepped clock; None = the
        #: LaneRecorder default, ``time.perf_counter``).
        self._calibration_clock = calibration_clock
        self._options = {
            "use_frontier_memo": use_frontier_memo,
            "count_leaves": count_leaves,
            "batch_leaves": batch_leaves,
            "batch_frontier": batch_frontier,
        }
        self._topology = (
            graph.graph if isinstance(graph, LabeledGraph) else graph
        )
        self._oriented = oriented_graph
        self._shared: List = []
        self._procs: List = []
        self._ctrl: List = []
        self._task_queue = None
        self._result_queue = None
        self._topo_spec: Optional[Dict[str, object]] = None
        self._labels_spec: Optional[Dict[str, object]] = None
        self._work_spec: Optional[Dict[str, object]] = None
        self._closed = False
        self._broken = False
        self._dispatch_overhead: Optional[float] = None
        self._requests = 0
        self._next_req = 0
        self._leases = 0
        self._close_pending = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        return self._broken

    @property
    def requests_served(self) -> int:
        return self._requests

    @property
    def leases(self) -> int:
        return self._leases

    def acquire(self) -> "MinerPool":
        """Take one lease on the pool (see :meth:`lease`).

        A leased pool defers :meth:`close` until the last
        :meth:`release`, so a long-lived owner (the serving layer) can
        hand the pool to concurrent requests without a teardown racing
        an in-flight mine.  Acquiring a closed, closing or broken pool
        raises.
        """
        self._check_open()
        if self._close_pending:
            raise RuntimeError(
                "MinerPool is closing; no new leases accepted"
            )
        self._leases += 1
        return self

    def release(self) -> None:
        """Drop one lease; runs any deferred close at the last one."""
        if self._leases <= 0:
            raise RuntimeError("release() without a matching acquire()")
        self._leases -= 1
        if self._leases == 0 and self._close_pending:
            self._close_pending = False
            self.close()

    def lease(self):
        """Context-managed :meth:`acquire`/:meth:`release` pair."""
        return _PoolLease(self)

    def health(self) -> Dict[str, object]:
        """Structured liveness snapshot (the serving layer's probe).

        ``alive_workers`` counts resident processes whose exit code is
        unset; a forked pool is healthy while it equals ``workers``.
        The in-process ``workers=1`` configuration reports 0 resident
        processes and stays healthy by construction.
        """
        alive = sum(
            1 for proc in self._procs if proc.exitcode is None
        )
        healthy = (
            not self._closed
            and not self._broken
            and (not self._procs or alive == len(self._procs))
        )
        return {
            "healthy": healthy,
            "closed": self._closed,
            "broken": self._broken,
            "workers": self.workers,
            "resident_workers": len(self._procs),
            "alive_workers": alive,
            "leases": self._leases,
            "requests_served": self._requests,
            "dispatch_overhead_s": self._dispatch_overhead,
        }

    def __enter__(self) -> "MinerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Stop workers cooperatively and unlink every shared segment.

        Idempotent: the second and later calls are no-ops.  Workers
        still draining a request get a grace join, then a terminate.
        While leases are outstanding the close is *deferred*: the pool
        stops accepting new leases-by-close-intent and tears down when
        the last :meth:`release` lands.
        """
        if self._closed:
            return
        if self._leases > 0:
            self._close_pending = True
            return
        self._closed = True
        procs, self._procs = self._procs, []
        if procs:
            for ctrl in self._ctrl:
                try:
                    ctrl.put_nowait(("stop",))
                except Exception:  # pragma: no cover - queue torn down
                    pass
            for proc in procs:
                proc.join(timeout=5.0)
            for proc in procs:
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join()
            for q in (self._task_queue, self._result_queue, *self._ctrl):
                if q is not None:
                    q.cancel_join_thread()
                    q.close()
            self._ctrl = []
            self._task_queue = self._result_queue = None
        # Tear down every segment even when one close()/unlink() raises:
        # bailing out mid-loop would leak the remaining segments past
        # process exit (FM301).  The first failure re-raises at the end.
        shared, self._shared = self._shared, []
        failure: Optional[BaseException] = None
        for owner in shared:
            try:
                owner.close()
            except BaseException as exc:
                if failure is None:
                    failure = exc
            try:
                owner.unlink()
            except BaseException as exc:
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("MinerPool is closed")
        if self._broken:
            raise RuntimeError(
                "MinerPool is broken by a worker failure; close() it and "
                "create a new pool"
            )

    def _start(self) -> None:
        """Fork the workers and export the shared graph (first use only)."""
        if self._procs:
            return
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context("spawn")
        topo_buffers = SharedCSRBuffers(self._topology)
        self._shared.append(topo_buffers)
        self._topo_spec = topo_buffers.spec
        labels = getattr(self.graph, "labels", None)
        if labels is not None:
            shm, self._labels_spec = share_array(np.asarray(labels))
            self._shared.append(_OwnedBlock(shm))
        self._task_queue = ctx.Queue()
        self._result_queue = ctx.Queue()
        self._ctrl = [ctx.Queue() for _ in range(self.workers)]
        with self.profiler.lane_span("spawn-workers"):
            for worker_id in range(self.workers):
                proc = ctx.Process(
                    target=_pool_worker,
                    args=(
                        worker_id,
                        self._topo_spec,
                        self._labels_spec,
                        self._ctrl[worker_id],
                        self._task_queue,
                        self._result_queue,
                    ),
                    daemon=True,
                )
                proc.start()
                self._procs.append(proc)

    def _oriented_graph(self):
        if self._oriented is None:
            self._oriented = orient_by_degree(self._topology)
        return self._oriented

    def _work_spec_for(self, oriented: bool) -> Optional[Dict[str, object]]:
        """Shared-memory spec of the oriented DAG (exported lazily)."""
        if not oriented:
            return None
        if self._work_spec is None:
            work_buffers = SharedCSRBuffers(self._oriented_graph())
            self._shared.append(work_buffers)
            self._work_spec = work_buffers.spec
        return self._work_spec

    # ------------------------------------------------------------------
    # Dispatch overhead calibration + cost-model chunking
    # ------------------------------------------------------------------
    @property
    def dispatch_overhead_s(self) -> float:
        """Measured per-task queue round-trip cost, seconds (cached).

        ``0.0`` for the in-process ``workers=1`` configuration.  The
        first read forks the pool (if it has not already) and times
        :data:`CALIBRATION_PINGS` control-queue round trips through a
        :class:`LaneRecorder` — the engine's sanctioned clock.
        """
        if self._dispatch_overhead is None:
            self._dispatch_overhead = self._calibrate()
        return self._dispatch_overhead

    def _calibrate(self, pings: int = CALIBRATION_PINGS) -> float:
        if self.workers == 1:
            return 0.0
        self._check_open()
        self._start()
        rec = LaneRecorder(clock=self._calibration_clock)
        # Warm-up round trip absorbs worker startup + graph attach.
        self._ping(rec, -1, cat="calibrate-warmup")
        for i in range(pings):
            self._ping(rec, i, cat="dispatch-ping")
        overhead = rec.total("dispatch-ping") / pings
        self.metrics.gauge("engine.pool.dispatch_overhead_us").set(
            overhead * 1e6
        )
        return overhead

    def _ping(self, rec: LaneRecorder, i: int, *, cat: str) -> None:
        worker_id = i % self.workers
        req_id = ("ping", i)
        with rec.span(f"ping w{worker_id}", cat=cat):
            self._ctrl[worker_id].put(("ping", req_id))
            self._drain(req_id, 1)

    def auto_split_degree(
        self, plan, *, profile: Optional[GraphProfile] = None
    ) -> Optional[int]:
        """Cost-model split degree for a plan on this pool's graph."""
        if self.workers <= 1 or isinstance(plan, MultiPlan):
            return None
        work_graph = (
            self._oriented_graph() if plan.oriented else self._topology
        )
        return cost_model_split_degree(
            work_graph,
            plan,
            dispatch_overhead_s=self.dispatch_overhead_s,
            profile=profile,
        )

    # ------------------------------------------------------------------
    # Mining
    # ------------------------------------------------------------------
    def mine(
        self,
        plan,
        *,
        roots: Optional[Sequence[int]] = None,
        split_degree=None,
        timeout_s: Optional[float] = None,
    ) -> MiningResult:
        """Serve one mining request against the resident workers.

        ``split_degree`` is ``None`` (whole-root tasks: merged counters
        bit-identical to serial), an integer (as
        :class:`ParallelMiner`), or ``"auto"`` — let
        :meth:`auto_split_degree` decide from the cost model and the
        measured dispatch overhead.

        ``timeout_s`` bounds the wait for worker results: a wedged
        worker (alive but unresponsive) surfaces as a structured
        :class:`PoolWorkerError` with ``reason="timeout"`` instead of a
        hang, and the pool is marked broken.  The deadline is enforced
        at result-queue poll granularity (~1 s), not as a precise
        wall-clock budget.
        """
        self._check_open()
        multi = isinstance(plan, MultiPlan)
        if split_degree == "auto":
            split_degree = self.auto_split_degree(plan)
        if split_degree is not None and multi:
            raise ValueError("task chunking requires a single-pattern plan")
        oriented = (not multi) and plan.oriented
        work_graph = self._oriented_graph() if oriented else self._topology
        with self.profiler.phase("setup", workers=self.workers):
            tasks = order_tasks(
                work_graph,
                filter_roots(self.graph, self._topology, plan, roots),
                split_degree=split_degree,
            )
        chunk_units = sum(1 for _, chunk in tasks if chunk is not None)
        with self.tracer.span(
            "mine-parallel", cat="phase", workers=self.workers,
            tasks=len(tasks),
        ):
            with self.profiler.phase("mine", tasks=len(tasks)):
                summaries = self.run_tasks(
                    plan, tasks, timeout_s=timeout_s
                )
        with self.profiler.phase("merge"):
            summaries.sort(key=lambda item: item[0])
            counts = [0] * (plan.num_patterns if multi else 1)
            counters = OpCounters()
            with self.profiler.lane_span("counter-merge"):
                for _, summary in summaries:
                    for i, count in enumerate(summary["counts"]):
                        counts[i] += count
                    counters += summary["counters"]
            counters.matches = sum(counts)
            self._requests += 1
            publish_worker_metrics(
                self.metrics,
                self.profiler,
                summaries,
                workers=self.workers,
                num_tasks=len(tasks),
                chunk_units=chunk_units,
                counters=counters,
            )
            self._publish_pool_gauges()
        return MiningResult(counts=tuple(counts), counters=counters)

    def run_tasks(
        self,
        plan,
        tasks: Sequence[Task],
        *,
        timeout_s: Optional[float] = None,
    ) -> List[Tuple]:
        """Low-level entry: run explicit tasks, return worker summaries.

        Used by :meth:`mine` and by :class:`ParallelMiner`'s one-shot
        delegation; callers merge the ``(worker_id, summary)`` pairs
        themselves.  ``timeout_s`` has :meth:`mine`'s semantics (and is
        ignored by the in-process ``workers=1`` path, which cannot
        wedge on a queue).
        """
        self._check_open()
        multi = isinstance(plan, MultiPlan)
        # getattr: a malformed plan must fail *in the worker* so the
        # caller sees the structured PoolWorkerError, not a parent-side
        # AttributeError.
        oriented = (not multi) and bool(getattr(plan, "oriented", False))
        if self.workers == 1:
            work_graph = self._oriented_graph() if oriented else None
            return [
                run_tasks_in_process(
                    self.graph,
                    plan,
                    tasks,
                    work_graph=work_graph,
                    options=self._options,
                    profile=self.profiler.enabled,
                )
            ]
        self._start()
        work_spec = self._work_spec_for(oriented)
        req_id = self._next_req
        self._next_req += 1
        for ctrl in self._ctrl:
            ctrl.put(
                (
                    "mine",
                    req_id,
                    plan,
                    work_spec,
                    self._options,
                    self.profiler.enabled,
                )
            )
        with self.profiler.lane_span("enqueue-tasks"):
            for task in tasks:
                self._task_queue.put(task)
            for _ in self._procs:
                self._task_queue.put(None)
        with self.profiler.lane_span("drain-results"):
            return self._drain(req_id, len(self._procs), timeout_s=timeout_s)

    def _drain(
        self,
        req_id,
        expected: int,
        *,
        timeout_s: Optional[float] = None,
    ) -> List[Tuple]:
        """Collect ``expected`` results for a request, watching for death.

        The deadline is tracked by counting 1-second poll rounds rather
        than reading a clock (fmlint FM206: engine code never touches
        the wall clock directly); accuracy is poll-granular, which is
        all a hang detector needs.
        """
        out: List[Tuple] = []
        waited_s = 0.0
        while len(out) < expected:
            try:
                message = self._result_queue.get(timeout=_DRAIN_POLL_S)
            except queue_module.Empty:
                dead = [
                    (i, proc)
                    for i, proc in enumerate(self._procs)
                    if proc.exitcode not in (0, None)
                ]
                if dead:
                    self._broken = True
                    ids = [i for i, _ in dead]
                    codes = [proc.exitcode for _, proc in dead]
                    raise PoolWorkerError(
                        ids[0] if len(ids) == 1 else ids,
                        "died",
                        f"exit codes {codes}",
                    )
                waited_s += _DRAIN_POLL_S
                if timeout_s is not None and waited_s >= timeout_s:
                    self._broken = True
                    stalled = [
                        i
                        for i, proc in enumerate(self._procs)
                        if proc.exitcode is None
                    ]
                    raise PoolWorkerError(
                        stalled if len(stalled) != 1 else stalled[0],
                        "timeout",
                        f"no result within ~{waited_s:.0f}s "
                        f"(timeout_s={timeout_s}); workers alive but "
                        "unresponsive",
                    )
                continue
            kind, rid, worker_id, payload = message
            if kind == "error":
                self._broken = True
                raise PoolWorkerError(worker_id, "failed", str(payload))
            if rid != req_id:
                # Stale residue from an interrupted earlier request.
                continue
            out.append((worker_id, payload))
        return out

    def _publish_pool_gauges(self) -> None:
        self.metrics.gauge("engine.pool.workers").set(self.workers)
        self.metrics.gauge("engine.pool.resident_workers").set(
            len(self._procs)
        )
        self.metrics.gauge("engine.pool.requests").set(self._requests)
        if self._dispatch_overhead is not None:
            self.metrics.gauge("engine.pool.dispatch_overhead_us").set(
                self._dispatch_overhead * 1e6
            )
