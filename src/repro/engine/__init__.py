"""Software GPM engines: pattern-aware reference, c-map variant, oblivious baseline."""

from .counters import OpCounters
from .explore import MiningResult, PatternAwareEngine, mine, mine_multi
from .cmap_sw import CMapSoftwareEngine, VectorCMap
from .oblivious import BudgetExceeded, ObliviousEngine, mine_oblivious
from .partitioned import (
    PartitionedMiner,
    PartitionStats,
    halo_ball,
    mine_partitioned,
    partition_vertices,
)
from .verify import check_consistency, count_all_ways

__all__ = [
    "OpCounters",
    "MiningResult",
    "PatternAwareEngine",
    "mine",
    "mine_multi",
    "CMapSoftwareEngine",
    "VectorCMap",
    "ObliviousEngine",
    "BudgetExceeded",
    "mine_oblivious",
    "check_consistency",
    "count_all_ways",
    "PartitionedMiner",
    "PartitionStats",
    "halo_ball",
    "mine_partitioned",
    "partition_vertices",
]
