"""Software GPM engines: pattern-aware reference, c-map variant, oblivious baseline."""

from .counters import OpCounters
from .explore import MiningResult, PatternAwareEngine, mine, mine_multi
from .cmap_sw import CMapSoftwareEngine, VectorCMap
from .kernels import (
    GALLOP_RATIO,
    get_strategy,
    set_strategy,
    strategy as kernel_strategy,
)
from .oblivious import BudgetExceeded, ObliviousEngine, mine_oblivious
from .parallel import ParallelMiner, mine_parallel, order_tasks
from .pool import MinerPool, PoolWorkerError, cost_model_split_degree
from .partitioned import (
    PartitionedMiner,
    PartitionStats,
    halo_ball,
    mine_partitioned,
    partition_vertices,
)
from .verify import check_consistency, count_all_ways

__all__ = [
    "OpCounters",
    "MiningResult",
    "PatternAwareEngine",
    "mine",
    "mine_multi",
    "CMapSoftwareEngine",
    "VectorCMap",
    "ObliviousEngine",
    "BudgetExceeded",
    "mine_oblivious",
    "GALLOP_RATIO",
    "get_strategy",
    "set_strategy",
    "kernel_strategy",
    "ParallelMiner",
    "mine_parallel",
    "order_tasks",
    "MinerPool",
    "PoolWorkerError",
    "cost_model_split_degree",
    "check_consistency",
    "count_all_ways",
    "PartitionedMiner",
    "PartitionStats",
    "halo_ball",
    "mine_partitioned",
    "partition_vertices",
]
