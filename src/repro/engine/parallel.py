"""Multi-process mining backend over shared-memory CSR buffers.

The FlexMiner hardware mines one root-vertex task per PE with dynamic
dispatch (paper §IV); this module is the CPU-side analogue: N worker
*processes* pull (root, chunk) units from a shared queue and walk the
search tree with the ordinary :class:`~repro.engine.explore.PatternAwareEngine`.

Two properties carry over from the simulator's scheduler:

* **degree-descending dispatch** — expensive hubs are issued first so
  stragglers cannot dominate the tail (§IV-B);
* **fine-grained chunking** — roots whose degree exceeds
  ``split_degree`` are split into several depth-1 slices via the
  engine's ``run_task(chunk=)`` support.

The data graph never crosses a pipe: the parent copies ``indptr`` /
``indices`` (and the oriented DAG, and labels, when present) into POSIX
shared memory once (:class:`repro.graph.SharedCSRBuffers`) and every
worker maps the same read-only pages, so per-worker attach cost is
independent of graph size.

Determinism: per-worker results are merged sorted by worker id, and all
:class:`~repro.engine.counters.OpCounters` fields are additive, so the
merged result is bit-identical to a serial run *when chunking is off*
(the default).  Chunk splitting re-runs depth-1 candidate generation
once per chunk and bumps ``tasks`` per unit, inflating counters — counts
stay exact — so it is opt-in for wall-clock runs only.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import (
    CSRGraph,
    LabeledGraph,
    attach_array,
    attach_shared_csr,
    orient_by_degree,
)
from ..compiler.plan import MultiPlan
from ..obs import NULL_PROFILER, NULL_REGISTRY, NULL_TRACER
from ..obs.prof import LaneRecorder, task_label
from .counters import OpCounters
from .explore import MiningResult, PatternAwareEngine

__all__ = [
    "ParallelMiner",
    "filter_roots",
    "mine_parallel",
    "order_tasks",
    "publish_worker_metrics",
    "run_tasks_in_process",
]

#: One unit of work: (root vertex, optional (index, pieces) chunk).
Task = Tuple[int, Optional[Tuple[int, int]]]


def order_tasks(
    graph: CSRGraph,
    roots: Optional[Sequence[int]] = None,
    *,
    split_degree: Optional[int] = None,
) -> List[Task]:
    """Degree-descending task list, optionally chunking heavy roots.

    Mirrors the simulator scheduler's issue order: largest adjacency
    first (ties broken by vertex id for determinism).  With
    ``split_degree``, a root of degree d becomes ``ceil(d /
    split_degree)`` chunk units so no single unit holds a whole hub.
    """
    degrees = graph.degrees()
    if roots is None:
        verts = np.arange(graph.num_vertices)
    else:
        verts = np.asarray(list(roots), dtype=np.int64)
    order = verts[np.argsort(-degrees[verts], kind="stable")]
    tasks: List[Task] = []
    for v in order.tolist():
        d = int(degrees[v])
        if split_degree is not None and d > split_degree:
            pieces = -(-d // split_degree)  # ceil
            tasks.extend((v, (i, pieces)) for i in range(pieces))
        else:
            tasks.append((v, None))
    return tasks


def filter_roots(
    graph,
    topology: CSRGraph,
    plan,
    roots: Optional[Sequence[int]] = None,
) -> List[int]:
    """Root list after the plan's root-label filter (parent side).

    Shared between :class:`ParallelMiner` and the persistent
    :class:`~repro.engine.pool.MinerPool` so both dispatch identical
    task sets for identical requests.
    """
    if roots is None:
        roots = range(topology.num_vertices)
    multi = isinstance(plan, MultiPlan)
    root_label = None if multi else plan.root_label
    if root_label is None:
        return [int(v) for v in roots]
    labels = getattr(graph, "labels", None)
    if labels is None:
        raise ValueError(
            "plan carries label constraints but the graph is "
            "unlabeled; wrap it in a LabeledGraph"
        )
    return [int(v) for v in roots if int(labels[int(v)]) == root_label]


def run_tasks_in_process(
    graph,
    plan,
    tasks: Sequence[Task],
    *,
    work_graph=None,
    options: Optional[Dict[str, object]] = None,
    profile: bool = False,
):
    """Run a task list in-process; returns one ``(0, summary)`` pair.

    The ``workers=1`` body of both the one-shot miner and the pool:
    same degree-descending task order, no processes, exact parity with
    a plain engine run.
    """
    rec = LaneRecorder()
    with rec.span("attach-shm"):
        engine = PatternAwareEngine(
            graph, plan, work_graph=work_graph, **(options or {})
        )
    tasks_done = chunks_done = 0
    for root, chunk in tasks:
        with rec.span(task_label(root, chunk), cat="task"):
            engine.run_task(root, chunk=chunk)
        if chunk is None:
            tasks_done += 1
        else:
            chunks_done += 1
    return (
        0,
        _worker_summary(
            engine, rec, tasks_done, chunks_done, profile=profile
        ),
    )


def publish_worker_metrics(
    metrics,
    profiler,
    summaries,
    *,
    workers: int,
    num_tasks: int,
    chunk_units: int,
    counters: OpCounters,
) -> None:
    """Worker lanes, gauges and queue-wait distribution (merge side).

    Emits the ``engine.parallel.*`` gauge family and, when profiling is
    enabled, one wall-clock lane per worker — shared by the one-shot
    miner and the pool so dashboards see one schema either way.
    """
    if profiler.enabled:
        profiler.init_lanes(len(summaries))
        for worker_id, summary in summaries:
            profiler.add_lane(worker_id, summary.get("spans"))
            for wait_s in _span_durations(summary.get("spans"), "queue-wait"):
                metrics.histogram(
                    "engine.parallel.queue_wait_us"
                ).observe(wait_s * 1e6)
    metrics.gauge("engine.parallel.workers").set(workers)
    metrics.gauge("engine.parallel.queue_depth").set(num_tasks)
    metrics.gauge("engine.parallel.chunk_units").set(chunk_units)
    for worker_id, summary in summaries:
        for key in (
            "busy_seconds",
            "queue_wait_seconds",
            "tasks_done",
            "chunks_done",
        ):
            metrics.gauge(
                f"engine.parallel.worker_{key}", worker=worker_id
            ).set(summary[key])
    metrics.absorb(counters.as_dict(), prefix="engine.")
    frontier = [
        s["frontier"] for _w, s in summaries if s.get("frontier")
    ]
    if frontier:
        metrics.absorb(
            {
                "rows_expanded": sum(
                    f["rows_expanded"] for f in frontier
                ),
                "peak_width": max(f["peak_width"] for f in frontier),
                "fallbacks": sum(f["fallbacks"] for f in frontier),
            },
            prefix="engine.frontier.",
        )


def _build_worker_graph(
    spec: Dict[str, object],
    labels_spec: Optional[Dict[str, object]],
):
    """Attach the shared CSR (and labels) inside a worker process."""
    graph = attach_shared_csr(spec)
    if labels_spec is None:
        return graph
    labels, handle = attach_array(labels_spec)
    labeled = LabeledGraph(graph, labels)
    # Keep the mapping alive alongside the topology handles.
    graph._shm = graph._shm + (handle,)
    return labeled


def _span_durations(spans, cat: str) -> List[float]:
    """Durations (seconds) of the spans in category ``cat``."""
    return [
        t1 - t0 for _name, t0, t1, c, _args in (spans or ()) if c == cat
    ]


def _worker_summary(
    engine: PatternAwareEngine,
    rec: LaneRecorder,
    tasks_done: int,
    chunks_done: int,
    *,
    profile: bool,
) -> Dict[str, object]:
    """Shared summary payload of one worker (or the in-process runner).

    All timing flows through the lane recorder (fmlint FM206): busy is
    the sum of the per-task ``task`` spans, queue wait the sum of the
    ``queue-wait`` spans.  The raw span stream crosses the pipe only
    when profiling is on — keys present either way, so the merge path
    is identical and profiling cannot drift results.
    """
    summary: Dict[str, object] = {
        "counts": list(engine.counts),
        "counters": engine.counters,
        "busy_seconds": rec.total("task"),
        "queue_wait_seconds": rec.total("queue-wait"),
        "tasks_done": tasks_done,
        "chunks_done": chunks_done,
        "spans": rec.spans if profile else None,
        "frontier": (
            engine.frontier_stats() if engine.batch_frontier else None
        ),
    }
    return summary


class ParallelMiner:
    """Mine a plan with N worker processes over a shared-memory graph.

    Parameters
    ----------
    graph:
        The data graph (:class:`CSRGraph` or :class:`LabeledGraph`).
    plan:
        A single-pattern :class:`ExecutionPlan` or a :class:`MultiPlan`.
    workers:
        Worker process count; defaults to ``os.cpu_count()``.
        ``workers=1`` runs in-process (no fork, no queues) but through
        the same degree-descending task order.
    split_degree:
        Chunk roots whose degree exceeds this into depth-1 slices.
        ``None`` (default) keeps whole-root tasks, which is the
        configuration whose merged counters are bit-identical to a
        serial run.  Chunking never changes *counts*.  Single-pattern
        plans only.
    use_frontier_memo / count_leaves / batch_leaves / batch_frontier:
        Forwarded to every worker's engine.
    tracer / metrics:
        Parent-side observability; workers run untraced and their
        op-counter totals are merged into the parent registry.
    profiler:
        Optional :class:`repro.obs.PhaseProfiler`.  When enabled (and
        carrying a tracer), workers ship their span streams back and
        the mine emits one wall-clock lane per worker plus a
        coordinator lane, with setup/mine/merge phase attribution.
        Never changes counts or counters (tested zero-drift).
    """

    def __init__(
        self,
        graph,
        plan,
        *,
        workers: Optional[int] = None,
        split_degree: Optional[int] = None,
        use_frontier_memo: bool = True,
        count_leaves: bool = True,
        batch_leaves: bool = True,
        batch_frontier: bool = False,
        tracer=None,
        metrics=None,
        profiler=None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if split_degree is not None and isinstance(plan, MultiPlan):
            raise ValueError("task chunking requires a single-pattern plan")
        self.graph = graph
        self.plan = plan
        self.workers = int(workers)
        self.split_degree = split_degree
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self._options = {
            "use_frontier_memo": use_frontier_memo,
            "count_leaves": count_leaves,
            "batch_leaves": batch_leaves,
            "batch_frontier": batch_frontier,
        }
        self._multi = isinstance(plan, MultiPlan)
        oriented = (not self._multi) and plan.oriented
        self._topology = graph.graph if isinstance(graph, LabeledGraph) else graph
        self._work_graph = (
            orient_by_degree(self._topology) if oriented else self._topology
        )

    # ------------------------------------------------------------------
    def _roots(self, roots: Optional[Sequence[int]]) -> List[int]:
        """Root list after the plan's root-label filter (parent side)."""
        return filter_roots(self.graph, self._topology, self.plan, roots)

    def mine(self, roots: Optional[Sequence[int]] = None) -> MiningResult:
        """Run the parallel mining job and merge worker results."""
        with self.profiler.phase("setup", workers=self.workers):
            tasks = order_tasks(
                self._work_graph,
                self._roots(roots),
                split_degree=self.split_degree,
            )
        chunk_units = sum(1 for _, chunk in tasks if chunk is not None)
        with self.tracer.span(
            "mine-parallel", cat="phase", workers=self.workers,
            tasks=len(tasks),
        ):
            with self.profiler.phase("mine", tasks=len(tasks)):
                if self.workers == 1:
                    summaries = [self._mine_serial(tasks)]
                else:
                    summaries = self._mine_processes(tasks)

        with self.profiler.phase("merge"):
            # Deterministic merge: worker order fixed, fields additive.
            summaries.sort(key=lambda item: item[0])
            counts = [0] * (self.plan.num_patterns if self._multi else 1)
            counters = OpCounters()
            with self.profiler.lane_span("counter-merge"):
                for _, summary in summaries:
                    for i, c in enumerate(summary["counts"]):
                        counts[i] += c
                    counters += summary["counters"]
            counters.matches = sum(counts)
            self._publish(summaries, tasks, chunk_units, counters)
        return MiningResult(counts=tuple(counts), counters=counters)

    def _publish(self, summaries, tasks, chunk_units, counters) -> None:
        """Worker lanes, gauges and queue-wait distribution (merge side)."""
        publish_worker_metrics(
            self.metrics,
            self.profiler,
            summaries,
            workers=self.workers,
            num_tasks=len(tasks),
            chunk_units=chunk_units,
            counters=counters,
        )

    # ------------------------------------------------------------------
    def _mine_serial(self, tasks: Sequence[Task]):
        """workers=1: same task order, no processes, exact parity."""
        return run_tasks_in_process(
            self.graph,
            self.plan,
            tasks,
            work_graph=self._work_graph,
            options=self._options,
            profile=self.profiler.enabled,
        )

    def _mine_processes(self, tasks: Sequence[Task]):
        """One-shot multi-process mine through a transient worker pool.

        All process construction lives in :mod:`repro.engine.pool`
        (fmlint FM207); the one-shot path is simply a pool whose stream
        has length one.
        """
        from .pool import MinerPool

        pool = MinerPool(
            self.graph,
            workers=self.workers,
            oriented_graph=(
                self._work_graph
                if self._work_graph is not self._topology
                else None
            ),
            tracer=self.tracer,
            metrics=self.metrics,
            profiler=self.profiler,
            **self._options,
        )
        try:
            return pool.run_tasks(self.plan, tasks)
        finally:
            pool.close()


class _OwnedBlock:
    """Close/unlink adapter so a bare SharedMemory handle matches the
    SharedCSRBuffers cleanup interface."""

    def __init__(self, shm) -> None:
        self._shm = shm

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def mine_parallel(
    graph,
    plan,
    *,
    workers: Optional[int] = None,
    split_degree: Optional[int] = None,
    roots: Optional[Sequence[int]] = None,
    batch_frontier: bool = False,
    tracer=None,
    metrics=None,
    profiler=None,
) -> MiningResult:
    """Convenience wrapper: parallel-mine a plan over a graph."""
    miner = ParallelMiner(
        graph,
        plan,
        workers=workers,
        split_degree=split_degree,
        batch_frontier=batch_frontier,
        tracer=tracer,
        metrics=metrics,
        profiler=profiler,
    )
    return miner.mine(roots=roots)
