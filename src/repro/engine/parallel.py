"""Multi-process mining backend over shared-memory CSR buffers.

The FlexMiner hardware mines one root-vertex task per PE with dynamic
dispatch (paper §IV); this module is the CPU-side analogue: N worker
*processes* pull (root, chunk) units from a shared queue and walk the
search tree with the ordinary :class:`~repro.engine.explore.PatternAwareEngine`.

Two properties carry over from the simulator's scheduler:

* **degree-descending dispatch** — expensive hubs are issued first so
  stragglers cannot dominate the tail (§IV-B);
* **fine-grained chunking** — roots whose degree exceeds
  ``split_degree`` are split into several depth-1 slices via the
  engine's ``run_task(chunk=)`` support.

The data graph never crosses a pipe: the parent copies ``indptr`` /
``indices`` (and the oriented DAG, and labels, when present) into POSIX
shared memory once (:class:`repro.graph.SharedCSRBuffers`) and every
worker maps the same read-only pages, so per-worker attach cost is
independent of graph size.

Determinism: per-worker results are merged sorted by worker id, and all
:class:`~repro.engine.counters.OpCounters` fields are additive, so the
merged result is bit-identical to a serial run *when chunking is off*
(the default).  Chunk splitting re-runs depth-1 candidate generation
once per chunk and bumps ``tasks`` per unit, inflating counters — counts
stay exact — so it is opt-in for wall-clock runs only.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import (
    CSRGraph,
    LabeledGraph,
    SharedCSRBuffers,
    attach_array,
    attach_shared_csr,
    orient_by_degree,
    share_array,
)
from ..compiler.plan import MultiPlan
from ..obs import NULL_PROFILER, NULL_REGISTRY, NULL_TRACER
from ..obs.prof import LaneRecorder, task_label
from .counters import OpCounters
from .explore import MiningResult, PatternAwareEngine

__all__ = ["ParallelMiner", "mine_parallel", "order_tasks"]

#: One unit of work: (root vertex, optional (index, pieces) chunk).
Task = Tuple[int, Optional[Tuple[int, int]]]


def order_tasks(
    graph: CSRGraph,
    roots: Optional[Sequence[int]] = None,
    *,
    split_degree: Optional[int] = None,
) -> List[Task]:
    """Degree-descending task list, optionally chunking heavy roots.

    Mirrors the simulator scheduler's issue order: largest adjacency
    first (ties broken by vertex id for determinism).  With
    ``split_degree``, a root of degree d becomes ``ceil(d /
    split_degree)`` chunk units so no single unit holds a whole hub.
    """
    degrees = graph.degrees()
    if roots is None:
        verts = np.arange(graph.num_vertices)
    else:
        verts = np.asarray(list(roots), dtype=np.int64)
    order = verts[np.argsort(-degrees[verts], kind="stable")]
    tasks: List[Task] = []
    for v in order.tolist():
        d = int(degrees[v])
        if split_degree is not None and d > split_degree:
            pieces = -(-d // split_degree)  # ceil
            tasks.extend((v, (i, pieces)) for i in range(pieces))
        else:
            tasks.append((v, None))
    return tasks


def _build_worker_graph(
    spec: Dict[str, object],
    labels_spec: Optional[Dict[str, object]],
):
    """Attach the shared CSR (and labels) inside a worker process."""
    graph = attach_shared_csr(spec)
    if labels_spec is None:
        return graph
    labels, handle = attach_array(labels_spec)
    labeled = LabeledGraph(graph, labels)
    # Keep the mapping alive alongside the topology handles.
    graph._shm = graph._shm + (handle,)
    return labeled


def _span_durations(spans, cat: str) -> List[float]:
    """Durations (seconds) of the spans in category ``cat``."""
    return [
        t1 - t0 for _name, t0, t1, c, _args in (spans or ()) if c == cat
    ]


def _worker_summary(
    engine: PatternAwareEngine,
    rec: LaneRecorder,
    tasks_done: int,
    chunks_done: int,
    *,
    profile: bool,
) -> Dict[str, object]:
    """Shared summary payload of one worker (or the in-process runner).

    All timing flows through the lane recorder (fmlint FM206): busy is
    the sum of the per-task ``task`` spans, queue wait the sum of the
    ``queue-wait`` spans.  The raw span stream crosses the pipe only
    when profiling is on — keys present either way, so the merge path
    is identical and profiling cannot drift results.
    """
    summary: Dict[str, object] = {
        "counts": list(engine.counts),
        "counters": engine.counters,
        "busy_seconds": rec.total("task"),
        "queue_wait_seconds": rec.total("queue-wait"),
        "tasks_done": tasks_done,
        "chunks_done": chunks_done,
        "spans": rec.spans if profile else None,
    }
    return summary


def _mine_worker(
    worker_id: int,
    spec: Dict[str, object],
    labels_spec: Optional[Dict[str, object]],
    work_spec: Optional[Dict[str, object]],
    plan,
    options: Dict[str, object],
    profile: bool,
    task_queue,
    result_queue,
) -> None:
    """Worker main: attach shared buffers, drain the queue, report once."""
    try:
        rec = LaneRecorder()
        with rec.span("attach-shm"):
            graph = _build_worker_graph(spec, labels_spec)
            work_graph = (
                attach_shared_csr(work_spec)
                if work_spec is not None
                else None
            )
            engine = PatternAwareEngine(
                graph, plan, work_graph=work_graph, **options
            )
        tasks_done = 0
        chunks_done = 0
        while True:
            with rec.span("queue-wait", cat="queue-wait"):
                task = task_queue.get()
            if task is None:
                break
            root, chunk = task
            with rec.span(task_label(root, chunk), cat="task"):
                engine.run_task(root, chunk=chunk)
            if chunk is None:
                tasks_done += 1
            else:
                chunks_done += 1
        result_queue.put(
            (
                "done",
                worker_id,
                _worker_summary(
                    engine, rec, tasks_done, chunks_done, profile=profile
                ),
            )
        )
    except BaseException:  # pragma: no cover - exercised via error test
        result_queue.put(("error", worker_id, traceback.format_exc()))


class ParallelMiner:
    """Mine a plan with N worker processes over a shared-memory graph.

    Parameters
    ----------
    graph:
        The data graph (:class:`CSRGraph` or :class:`LabeledGraph`).
    plan:
        A single-pattern :class:`ExecutionPlan` or a :class:`MultiPlan`.
    workers:
        Worker process count; defaults to ``os.cpu_count()``.
        ``workers=1`` runs in-process (no fork, no queues) but through
        the same degree-descending task order.
    split_degree:
        Chunk roots whose degree exceeds this into depth-1 slices.
        ``None`` (default) keeps whole-root tasks, which is the
        configuration whose merged counters are bit-identical to a
        serial run.  Chunking never changes *counts*.  Single-pattern
        plans only.
    use_frontier_memo / count_leaves:
        Forwarded to every worker's engine.
    tracer / metrics:
        Parent-side observability; workers run untraced and their
        op-counter totals are merged into the parent registry.
    profiler:
        Optional :class:`repro.obs.PhaseProfiler`.  When enabled (and
        carrying a tracer), workers ship their span streams back and
        the mine emits one wall-clock lane per worker plus a
        coordinator lane, with setup/mine/merge phase attribution.
        Never changes counts or counters (tested zero-drift).
    """

    def __init__(
        self,
        graph,
        plan,
        *,
        workers: Optional[int] = None,
        split_degree: Optional[int] = None,
        use_frontier_memo: bool = True,
        count_leaves: bool = True,
        tracer=None,
        metrics=None,
        profiler=None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if split_degree is not None and isinstance(plan, MultiPlan):
            raise ValueError("task chunking requires a single-pattern plan")
        self.graph = graph
        self.plan = plan
        self.workers = int(workers)
        self.split_degree = split_degree
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self._options = {
            "use_frontier_memo": use_frontier_memo,
            "count_leaves": count_leaves,
        }
        self._multi = isinstance(plan, MultiPlan)
        oriented = (not self._multi) and plan.oriented
        self._topology = graph.graph if isinstance(graph, LabeledGraph) else graph
        self._work_graph = (
            orient_by_degree(self._topology) if oriented else self._topology
        )

    # ------------------------------------------------------------------
    def _roots(self, roots: Optional[Sequence[int]]) -> List[int]:
        """Root list after the plan's root-label filter (parent side)."""
        if roots is None:
            roots = range(self._topology.num_vertices)
        root_label = None if self._multi else self.plan.root_label
        if root_label is None:
            return [int(v) for v in roots]
        labels = getattr(self.graph, "labels", None)
        if labels is None:
            raise ValueError(
                "plan carries label constraints but the graph is "
                "unlabeled; wrap it in a LabeledGraph"
            )
        return [int(v) for v in roots if int(labels[int(v)]) == root_label]

    def mine(self, roots: Optional[Sequence[int]] = None) -> MiningResult:
        """Run the parallel mining job and merge worker results."""
        with self.profiler.phase("setup", workers=self.workers):
            tasks = order_tasks(
                self._work_graph,
                self._roots(roots),
                split_degree=self.split_degree,
            )
        chunk_units = sum(1 for _, chunk in tasks if chunk is not None)
        with self.tracer.span(
            "mine-parallel", cat="phase", workers=self.workers,
            tasks=len(tasks),
        ):
            with self.profiler.phase("mine", tasks=len(tasks)):
                if self.workers == 1:
                    summaries = [self._mine_serial(tasks)]
                else:
                    summaries = self._mine_processes(tasks)

        with self.profiler.phase("merge"):
            # Deterministic merge: worker order fixed, fields additive.
            summaries.sort(key=lambda item: item[0])
            counts = [0] * (self.plan.num_patterns if self._multi else 1)
            counters = OpCounters()
            with self.profiler.lane_span("counter-merge"):
                for _, summary in summaries:
                    for i, c in enumerate(summary["counts"]):
                        counts[i] += c
                    counters += summary["counters"]
            counters.matches = sum(counts)
            self._publish(summaries, tasks, chunk_units, counters)
        return MiningResult(counts=tuple(counts), counters=counters)

    def _publish(self, summaries, tasks, chunk_units, counters) -> None:
        """Worker lanes, gauges and queue-wait distribution (merge side)."""
        if self.profiler.enabled:
            self.profiler.init_lanes(len(summaries))
            for worker_id, summary in summaries:
                self.profiler.add_lane(worker_id, summary.get("spans"))
                for wait_s in _span_durations(
                    summary.get("spans"), "queue-wait"
                ):
                    self.metrics.histogram(
                        "engine.parallel.queue_wait_us"
                    ).observe(wait_s * 1e6)
        self.metrics.gauge("engine.parallel.workers").set(self.workers)
        self.metrics.gauge("engine.parallel.queue_depth").set(len(tasks))
        self.metrics.gauge("engine.parallel.chunk_units").set(chunk_units)
        for worker_id, summary in summaries:
            for key in (
                "busy_seconds",
                "queue_wait_seconds",
                "tasks_done",
                "chunks_done",
            ):
                self.metrics.gauge(
                    f"engine.parallel.worker_{key}", worker=worker_id
                ).set(summary[key])
        self.metrics.absorb(counters.as_dict(), prefix="engine.")

    # ------------------------------------------------------------------
    def _mine_serial(self, tasks: Sequence[Task]):
        """workers=1: same task order, no processes, exact parity."""
        rec = LaneRecorder()
        with rec.span("attach-shm"):
            engine = PatternAwareEngine(
                self.graph, self.plan, work_graph=self._work_graph,
                **self._options,
            )
        tasks_done = chunks_done = 0
        for root, chunk in tasks:
            with rec.span(task_label(root, chunk), cat="task"):
                engine.run_task(root, chunk=chunk)
            if chunk is None:
                tasks_done += 1
            else:
                chunks_done += 1
        return (
            0,
            _worker_summary(
                engine, rec, tasks_done, chunks_done,
                profile=self.profiler.enabled,
            ),
        )

    def _mine_processes(self, tasks: Sequence[Task]):
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context("spawn")

        labels = getattr(self.graph, "labels", None)
        shared: List = []
        summaries = []
        procs = []
        try:
            topo_buffers = SharedCSRBuffers(self._topology)
            shared.append(topo_buffers)
            labels_spec = None
            if labels is not None:
                shm, labels_spec = share_array(np.asarray(labels))
                shared.append(_OwnedBlock(shm))
            work_spec = None
            if self._work_graph is not self._topology:
                work_buffers = SharedCSRBuffers(self._work_graph)
                shared.append(work_buffers)
                work_spec = work_buffers.spec

            task_queue = ctx.Queue()
            result_queue = ctx.Queue()
            with self.profiler.lane_span("spawn-workers"):
                for worker_id in range(self.workers):
                    proc = ctx.Process(
                        target=_mine_worker,
                        args=(
                            worker_id,
                            topo_buffers.spec,
                            labels_spec,
                            work_spec,
                            self.plan,
                            self._options,
                            self.profiler.enabled,
                            task_queue,
                            result_queue,
                        ),
                        daemon=True,
                    )
                    proc.start()
                    procs.append(proc)
            with self.profiler.lane_span("enqueue-tasks"):
                for task in tasks:
                    task_queue.put(task)
                for _ in procs:
                    task_queue.put(None)

            with self.profiler.lane_span("drain-results"):
                while len(summaries) < len(procs):
                    try:
                        kind, worker_id, payload = result_queue.get(
                            timeout=1.0
                        )
                    except Exception:
                        dead = [
                            p for p in procs
                            if p.exitcode not in (0, None)
                        ]
                        if dead:  # pragma: no cover - hard crash path
                            raise RuntimeError(
                                f"{len(dead)} mining worker(s) died with "
                                f"exit codes "
                                f"{[p.exitcode for p in dead]}"
                            )
                        continue
                    if kind == "error":
                        raise RuntimeError(
                            f"mining worker {worker_id} failed:\n{payload}"
                        )
                    summaries.append((worker_id, payload))
                for proc in procs:
                    proc.join()
        finally:
            for proc in procs:
                if proc.is_alive():  # pragma: no cover - error cleanup
                    proc.terminate()
                    proc.join()
            for owner in shared:
                owner.close()
                owner.unlink()
        return summaries


class _OwnedBlock:
    """Close/unlink adapter so a bare SharedMemory handle matches the
    SharedCSRBuffers cleanup interface."""

    def __init__(self, shm) -> None:
        self._shm = shm

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def mine_parallel(
    graph,
    plan,
    *,
    workers: Optional[int] = None,
    split_degree: Optional[int] = None,
    roots: Optional[Sequence[int]] = None,
    tracer=None,
    metrics=None,
    profiler=None,
) -> MiningResult:
    """Convenience wrapper: parallel-mine a plan over a graph."""
    miner = ParallelMiner(
        graph,
        plan,
        workers=workers,
        split_degree=split_degree,
        tracer=tracer,
        metrics=metrics,
        profiler=profiler,
    )
    return miner.mine(roots=roots)
