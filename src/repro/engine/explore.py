"""Pattern-aware DFS mining engine (the GraphZero/AutoMine model).

This is the functional reference for the whole repository: it executes a
compiled :class:`~repro.compiler.plan.ExecutionPlan` (or multi-pattern
:class:`~repro.compiler.plan.MultiPlan`) over a data graph exactly the way
the paper's software baseline does — DFS with matching-order candidate
generation via merge-based set operations, symmetry-order vid bounds, and
frontier-list memoization — while counting every unit of algorithmic work
in an :class:`~repro.engine.counters.OpCounters`.

The FlexMiner hardware simulator walks the same search tree (it must: the
paper stresses the accelerator has "the same algorithmic efficiency as
software"); tests assert both produce identical match counts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.plan import ExecutionPlan, MultiPlan, PlanNode, VertexStep
from ..graph import CSRGraph, orient_by_degree
from ..obs import NULL_PROFILER, NULL_REGISTRY, NULL_TRACER
from . import kernels
from .counters import OpCounters
from .setops import (
    bound_below,
    difference,
    difference_count,
    intersect,
    intersect_count,
    remove_values,
)

__all__ = ["MiningResult", "PatternAwareEngine", "mine", "mine_multi"]


def _multi_plan_labeled(plan: MultiPlan) -> bool:
    def walk(node: PlanNode) -> bool:
        if node.step is not None and node.step.label is not None:
            return True
        return any(walk(c) for c in node.children)

    return walk(plan.root) or getattr(plan, "root_label", None) is not None


@dataclass
class MiningResult:
    """Outcome of a mining run."""

    #: One count per pattern (single-pattern plans have one entry).
    counts: Tuple[int, ...]
    counters: OpCounters
    #: Matched embeddings as vertex tuples, only when collect=True.
    embeddings: Optional[List[Tuple[int, ...]]] = None

    @property
    def total(self) -> int:
        return sum(self.counts)

    def as_dict(self) -> Dict[str, object]:
        """JSON-able payload (embeddings omitted; they can be huge)."""
        return {
            "counts": list(self.counts),
            "total": self.total,
            "counters": self.counters.as_dict(),
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


class PatternAwareEngine:
    """Execute an execution plan over a data graph.

    Parameters
    ----------
    graph:
        The undirected data graph.
    plan:
        A single-pattern :class:`ExecutionPlan` or a multi-pattern
        :class:`MultiPlan`.
    collect:
        Record matched embeddings (tests / small inputs only).
    use_frontier_memo:
        Honor the plan's frontier-memoization hints.  Disabled for the
        ablation bench; the paper keeps it always on "for a fair
        comparison with GraphZero".
    count_leaves:
        Use the count-only set-op fast path at the last plan level, so
        leaf candidate lists are counted without being materialized.
        Bit-identical on counts and counters; disable only to measure
        the fast path itself (the engine bench's baseline mode).
    batch_leaves:
        When the leaf level is countable and its op chain reduces to a
        single varying intersection or difference (cliques do, on every
        oriented plan), process the whole parent frontier with one
        vectorized segmented kernel instead of one count per Python-loop
        iteration.  Counts and counters stay bit-identical — the batch
        path charges the exact per-candidate merge-model amounts in
        closed form; disable to measure the batching itself.
    batch_frontier:
        Level-synchronous execution: instead of one DFS recursion per
        partial embedding, represent the whole depth-``d`` frontier as
        an ``(n_emb, d)`` embedding matrix plus segmented candidate
        arrays and expand one entire level per step with the segmented
        kernels (the data-parallel G2Miner formulation), falling into
        the batched leaf count at the last level.  Counts and counters
        stay bit-identical to the recursive path — every level charges
        the closed-form sum of what the per-embedding loop would have
        charged.  Off by default; see ``frontier_row_limit`` for the
        memory budget.
    frontier_row_limit:
        Memory budget for ``batch_frontier``: when expanding the next
        level is estimated to materialize more than this many elements
        (or the frontier already holds more rows), the engine falls
        back to plain recursion for the remainder of that task.  The
        fallback is charge-identical, so it only trades speed for
        memory.
    tracer:
        Optional :class:`repro.obs.Tracer`; ``run()`` wraps the mining
        phase in a wall-clock span.  Defaults to the no-op tracer.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; ``run()`` publishes
        the final op-counter state under ``engine.*`` gauges.  Defaults
        to the no-op registry.
    profiler:
        Optional :class:`repro.obs.PhaseProfiler`; when enabled it takes
        over the mine-phase span (attributing wall/CPU/RSS) instead of
        the plain tracer span.  Never changes counts or counters.
    """

    def __init__(
        self,
        graph: CSRGraph,
        plan,
        *,
        collect: bool = False,
        use_frontier_memo: bool = True,
        count_leaves: bool = True,
        batch_leaves: bool = True,
        batch_frontier: bool = False,
        frontier_row_limit: int = 1 << 22,
        work_graph: Optional[CSRGraph] = None,
        tracer=None,
        metrics=None,
        profiler=None,
    ) -> None:
        self.graph = graph
        self.plan = plan
        self.collect = collect
        self.use_frontier_memo = use_frontier_memo
        self.count_leaves = count_leaves
        self.batch_leaves = batch_leaves
        self.batch_frontier = batch_frontier
        self.frontier_row_limit = frontier_row_limit
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.counters = OpCounters()
        self._multi = isinstance(plan, MultiPlan)
        oriented = (not self._multi) and plan.oriented
        if work_graph is not None:
            # Pre-oriented graph injected by callers that share one DAG
            # across many engines (e.g. one per simulated PE).
            self._work_graph = work_graph
        else:
            self._work_graph = orient_by_degree(graph) if oriented else graph
        # Labeled mining: label constraints come from the plan; data
        # labels (if any) from the graph.  Orientation preserves vertex
        # ids, so one label array serves both graphs.
        self._labels = getattr(graph, "labels", None)
        plan_labeled = (
            any(s.label is not None for s in plan.steps)
            or plan.root_label is not None
            if not self._multi
            else _multi_plan_labeled(plan)
        )
        if plan_labeled and self._labels is None:
            raise ValueError(
                "plan carries label constraints but the graph is "
                "unlabeled; wrap it in a LabeledGraph"
            )
        self._num_patterns = plan.num_patterns if self._multi else 1
        self._counts = [0] * self._num_patterns
        self._embeddings: List[Tuple[int, ...]] = []
        # Frontier-list table: raw candidate list per depth on the
        # current DFS path (the operand of base-step composition, §V-C).
        depth_limit = (
            plan.max_depth() if self._multi else plan.num_levels - 1
        )
        self._raw_stack: List[Optional[np.ndarray]] = [None] * (
            depth_limit + 1
        )
        self._chunk: Optional[Tuple[int, int]] = None
        # DFS hot-loop caches (single-pattern plans only).
        self._leaf_depth = None if self._multi else plan.num_levels - 1
        self._steps = None if self._multi else plan.steps
        self._batch_leaf = self._batch_leaf_shape()
        # Level-synchronous frontier mode: only meaningful for
        # single-pattern plans with at least one interior level; engines
        # that override candidate generation (legacy, c-map) must keep
        # their per-embedding hooks, so they are routed to recursion.
        self._frontier_ok = (
            batch_frontier
            and not self._multi
            and self.supports_leaf_counting
            and self._leaf_depth is not None
            and self._leaf_depth >= 2
        )
        self._frontier_keyspace = max(1, self._work_graph.num_vertices)
        self._frontier_rows = 0
        self._frontier_peak = 0
        self._frontier_fallbacks = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def counts(self) -> Tuple[int, ...]:
        """Per-pattern match counts accumulated so far (live view).

        Lets callers that drive :meth:`run_task` directly — the parallel
        miner's workers, the simulator's PEs — read results without a
        :meth:`run` wrapper.
        """
        return tuple(self._counts)

    def run(self, roots: Optional[Iterable[int]] = None) -> MiningResult:
        """Mine the whole graph (or the given root vertices only)."""
        if roots is None:
            roots = self._work_graph.vertices()
        root_label = None if self._multi else self.plan.root_label
        # The profiler's phase mirrors into its own tracer, so exactly
        # one "mine" span lands in the trace either way.
        if self.profiler.enabled:
            span = self.profiler.phase(
                "mine", engine=type(self).__name__,
                patterns=self._num_patterns,
            )
        else:
            span = self.tracer.span(
                "mine", cat="phase", engine=type(self).__name__,
                patterns=self._num_patterns,
            )
        with span:
            if self._frontier_ok:
                self._run_frontier_roots(roots, root_label)
            else:
                for v0 in roots:
                    if (
                        root_label is not None
                        and int(self._labels[int(v0)]) != root_label
                    ):
                        continue
                    self.run_task(int(v0))
        self.counters.matches = sum(self._counts)
        self.metrics.absorb(self.counters.as_dict(), prefix="engine.")
        if self.batch_frontier:
            self.metrics.absorb(
                self.frontier_stats(), prefix="engine.frontier."
            )
        return MiningResult(
            counts=tuple(self._counts),
            counters=self.counters,
            embeddings=self._embeddings if self.collect else None,
        )

    def _run_frontier_roots(self, roots, root_label) -> None:
        """Serial batch-frontier entry: every root in ONE frontier.

        The per-root :meth:`run_task` loop would hand the level kernels
        one tiny frontier per root; seeding a single ``(n_roots, 1)``
        matrix instead lets each level run over the whole graph's
        frontier at once (the G2Miner formulation).  Charges are
        closed-form sums over frontier rows, so counts and counters are
        bit-identical to the root-at-a-time walk.
        """
        root_arr = np.asarray(
            roots if isinstance(roots, np.ndarray) else list(roots),
            dtype=np.int64,
        )
        if root_label is not None:
            root_arr = root_arr[self._labels[root_arr] == root_label]
        if len(root_arr) == 0:
            return
        self.counters.tasks += len(root_arr)
        self._mine_frontier_from(root_arr[:, None])

    def run_task(
        self, v0: int, *, chunk: Optional[Tuple[int, int]] = None
    ) -> None:
        """Process the search subtree rooted at data vertex ``v0``.

        ``chunk=(i, n)`` restricts the walk to the i-th of n contiguous
        slices of the depth-1 candidate list — the fine-grained task
        splitting the scheduler uses against power-law stragglers.  The
        union of all n chunks is exactly the unchunked task.  Only
        single-pattern plans support chunking.
        """
        if chunk is not None and self._multi:
            raise ValueError("task chunking requires a single-pattern plan")
        self.counters.tasks += 1
        self._chunk = chunk
        emb = [v0]
        self._on_descend(0, emb)
        if self._multi:
            self._extend_node(self.plan.root, emb)
        elif self._frontier_ok:
            self._mine_frontier(v0)
        else:
            self._extend(1, emb)
        self._on_backtrack(0, emb)
        self._chunk = None

    def frontier_stats(self) -> Dict[str, int]:
        """Batch-frontier telemetry: rows expanded across all levels,
        the widest frontier seen, and how often the memory budget forced
        the recursion fallback.  Published as ``engine.frontier.*``
        gauges by :meth:`run` when frontier mode is on."""
        return {
            "rows_expanded": self._frontier_rows,
            "peak_width": self._frontier_peak,
            "fallbacks": self._frontier_fallbacks,
        }

    # Hooks for subclasses (the software c-map engine maintains its map
    # here; the base engine does nothing).
    def _on_descend(self, depth: int, emb: List[int]) -> None:
        pass

    def _on_backtrack(self, depth: int, emb: List[int]) -> None:
        pass

    # ------------------------------------------------------------------
    # Single-pattern chain walk
    # ------------------------------------------------------------------
    def _extend(self, depth: int, emb: List[int]) -> None:
        step = self._steps[depth - 1]
        if (
            depth == self._leaf_depth
            and self._leaf_countable(step)
            and not (depth == 1 and self._chunk is not None)
        ):
            self._counts[0] += self._count_leaf(step, emb)
            return
        cands = self._filtered_candidates(step, emb)
        if depth == 1 and self._chunk is not None:
            index, total = self._chunk
            cands = np.array_split(cands, total)[index]
        if depth == self._leaf_depth:
            self._counts[0] += len(cands)
            if self.collect:
                self._embeddings.extend(
                    tuple(emb) + (int(v),) for v in cands
                )
            return
        if (
            depth + 1 == self._leaf_depth
            and self._batch_leaf is not None
            and self.batch_leaves
            and len(cands)
            and self._leaf_countable(self._steps[depth])
        ):
            self._counts[0] += self._count_leaf_batch(emb, cands)
            return
        for v in cands:
            emb.append(int(v))
            self._on_descend(depth, emb)
            self._extend(depth + 1, emb)
            self._on_backtrack(depth, emb)
            emb.pop()

    # ------------------------------------------------------------------
    # Multi-pattern tree walk
    # ------------------------------------------------------------------
    def _extend_node(self, node: PlanNode, emb: List[int]) -> None:
        for child in node.children:
            if child.pattern_index is not None and self._leaf_countable(
                child.step
            ):
                self._counts[child.pattern_index] += self._count_leaf(
                    child.step, emb
                )
                continue
            cands = self._filtered_candidates(child.step, emb)
            if child.pattern_index is not None:
                self._counts[child.pattern_index] += len(cands)
                if self.collect:
                    self._embeddings.extend(
                        tuple(emb) + (int(v),) for v in cands
                    )
                continue
            depth = child.step.depth
            for v in cands:
                emb.append(int(v))
                self._on_descend(depth, emb)
                self._extend_node(child, emb)
                self._on_backtrack(depth, emb)
                emb.pop()

    # ------------------------------------------------------------------
    # Count-only leaf path
    # ------------------------------------------------------------------
    #: Subclasses that override candidate generation (c-map queries,
    #: hardware timing) need every leaf list materialized through their
    #: own :meth:`_raw_candidates`; they turn this off.
    supports_leaf_counting = True

    #: Minimum combined operand length before the leaf fast path uses the
    #: count-only probe kernels.  Below it, materializing with the merge
    #: kernel is as fast (numpy call overhead dominates at adjacency
    #: lengths of a few dozen) — the probe only pays on hub-sized lists.
    #: Counters and counts are bit-identical on both sides of the
    #: threshold; tests set 0 to force the probe path.
    leaf_count_min_work = 48

    def _leaf_countable(self, step: VertexStep) -> bool:
        """A leaf level can skip materialization unless the caller needs
        embeddings or the step carries a label filter (label lookups need
        the candidate values)."""
        return (
            self.supports_leaf_counting
            and self.count_leaves
            and not self.collect
            and step.label is None
        )

    def _count_leaf(self, step: VertexStep, emb: Sequence[int]) -> int:
        """Count the filtered candidates of a leaf step without
        materializing them.

        Mirrors :meth:`_filtered_candidates` /:meth:`_raw_candidates`
        exactly on the counter side: the op chain, operand lengths, and
        frontier/adjacency accounting are identical — only the *last*
        set operation switches to a count-only kernel, and the symmetry
        bound plus embedding-injectivity filters are folded into that
        count (the bound is a sorted-prefix cut; the embedding is at
        most ``k - 1`` binary searches).
        """
        bound = (
            min(emb[b] for b in step.upper_bounds)
            if step.upper_bounds
            else None
        )
        if self.use_frontier_memo and step.base_step is not None:
            self.counters.frontier_hits += 1
            cands = self._raw_stack[step.base_step]
            ops = [(True, d) for d in step.extra_connected] + [
                (False, d) for d in step.extra_disconnected
            ]
        else:
            if step.base_step is not None:
                self.counters.frontier_misses += 1
            cands = self._load_adjacency(emb[step.extender])
            ops = [(True, d) for d in step.connected] + [
                (False, d) for d in step.disconnected
            ]
        for is_intersect, d in ops[:-1]:
            other = self._load_adjacency(emb[d])
            if is_intersect:
                cands = intersect(cands, other, self.counters)
            else:
                cands = difference(cands, other, self.counters)
        # Injectivity exclusions: embedding vertices below the bound that
        # the count kernels must subtract if they survive the op chain
        # (exactly what remove_values would have dropped).
        forb = None
        if not step.covers_all_ancestors:
            kept = emb if bound is None else [u for u in emb if u < bound]
            if kept:
                forb = np.asarray(kept)
        if ops:
            is_intersect, d = ops[-1]
            other = self._load_adjacency(emb[d])
            if len(cands) + len(other) >= self.leaf_count_min_work:
                count_op = (
                    intersect_count if is_intersect else difference_count
                )
                raw_len, count = count_op(
                    cands, other, self.counters, bound=bound, exclude=forb
                )
                self.counters.candidates_checked += raw_len
                return count
            # Tiny operands: materialize with the regular counted op and
            # fall through to the shared epilogue.
            if is_intersect:
                cands = intersect(cands, other, self.counters)
            else:
                cands = difference(cands, other, self.counters)
        self.counters.candidates_checked += len(cands)
        if bound is not None:
            cands = bound_below(cands, bound)
        count = len(cands)
        if forb is not None and count:
            count -= int(np.count_nonzero(kernels.members_mask(forb, cands)))
        return count

    # ------------------------------------------------------------------
    # Batch frontier leaf (one vectorized kernel per parent frontier)
    # ------------------------------------------------------------------
    def _batch_leaf_shape(self):
        """Static analysis: can the leaf be counted a frontier at a time?

        The batch kernel handles leaves whose op chain reduces to one
        intersection with a *varying* operand — the adjacency (or memo
        base) indexed by the parent-frontier vertex at embedding slot
        ``leaf_depth - 1`` — everything else fixed for the whole
        frontier.  Oriented clique plans have exactly this shape at
        every leaf (TC: adj(v) ∩ adj(v0); k-CL: memo base ∩ adj(v)).
        Injectivity must be a provable no-op (``covers_all_ancestors``)
        because the batch never materializes candidates to exclude from.

        Difference-only leaves (one varying *difference* instead of one
        varying intersection) batch too: those steps never cover all
        ancestors, so the injectivity exclusions are folded into the
        count the same way ``difference_count_below``'s ``exclude``
        argument does on the scalar path.

        Returns ``("memo", None)``, ``("direct", fixed_emb_index)``,
        ``("memo-diff", None)``, ``("diff-fixed", fixed_emb_index)``,
        ``("diff-varying", fixed_emb_index)`` or ``None`` (fall back to
        the per-vertex leaf path).
        """
        if self._multi or self._leaf_depth is None or self._leaf_depth < 2:
            return None
        step = self._steps[self._leaf_depth - 1]
        if step.label is not None:
            return None
        d = self._leaf_depth - 1
        if self.use_frontier_memo and step.base_step is not None:
            extra_c = tuple(step.extra_connected)
            extra_d = tuple(step.extra_disconnected)
            if extra_c == (d,) and not extra_d and step.covers_all_ancestors:
                return ("memo", None)
            if extra_d == (d,) and not extra_c:
                return ("memo-diff", None)
            return None
        connected = tuple(step.connected)
        disconnected = tuple(step.disconnected)
        if not disconnected and step.covers_all_ancestors:
            if (
                step.extender == d
                and len(connected) == 1
                and connected[0] != d
            ):
                return ("direct", connected[0])
            if step.extender != d and connected == (d,):
                return ("direct", step.extender)
            return None
        if not connected and len(disconnected) == 1:
            if step.extender != d and disconnected == (d,):
                return ("diff-fixed", step.extender)
            if step.extender == d and disconnected[0] != d:
                return ("diff-varying", disconnected[0])
        return None

    def _count_leaf_batch(self, emb: Sequence[int], cands: np.ndarray) -> int:
        """Count every leaf under the current frontier in one kernel call.

        Semantically identical to looping ``_count_leaf`` over ``cands``;
        the counter charges are the closed-form sum of what the serial
        loop would have charged per candidate (the merge model bills
        operand lengths, which the segment offsets provide in bulk), so
        counts *and* counters are bit-identical to the per-vertex path.
        """
        step = self._steps[self._leaf_depth - 1]
        kind, fixed_idx = self._batch_leaf
        d = self._leaf_depth - 1
        n = len(cands)
        concat, offsets = self._work_graph.gather_neighbors(cands)
        total = int(offsets[-1])
        c = self.counters
        if kind in ("memo", "memo-diff"):
            base = self._raw_stack[step.base_step]
            c.frontier_hits += n
            c.adjacency_loads += n
            c.adjacency_bytes += 4 * total
        else:
            base = self._work_graph.neighbors(emb[fixed_idx])
            if step.base_step is not None:
                c.frontier_misses += n
            c.adjacency_loads += 2 * n
            c.adjacency_bytes += 4 * (total + n * len(base))
        intersecting = kind in ("memo", "direct")
        if intersecting:
            c.set_intersections += n
        else:
            c.set_differences += n
        c.setop_iterations += n * len(base) + total
        bounds = None
        if step.upper_bounds:
            fixed = [emb[b] for b in step.upper_bounds if b != d]
            if d in step.upper_bounds:
                bounds = np.minimum(cands, min(fixed)) if fixed else cands
            else:
                bounds = min(fixed)
        if intersecting:
            raw, below = kernels.segmented_intersect_count(
                base, concat, offsets, bounds
            )
        else:
            # "memo-diff"/"diff-fixed" keep the fixed base as the
            # minuend (base \ adj(v)); "diff-varying" subtracts the
            # fixed base from each candidate's adjacency.
            raw, below = kernels.segmented_difference_count(
                base,
                concat,
                offsets,
                bounds,
                swap=kind in ("memo-diff", "diff-fixed"),
            )
        c.candidates_checked += int(raw.sum())
        count = int(below.sum())
        if not step.covers_all_ancestors and count:
            count -= self._batch_leaf_excluded(
                kind, emb, cands, base, concat, offsets, bounds
            )
        return count

    def _batch_leaf_excluded(
        self, kind, emb, cands, base, concat, offsets, bounds
    ) -> int:
        """Injectivity exclusions for the batched difference leaves.

        Mirrors the per-candidate ``exclude`` subtraction of
        ``difference_count_below``: an embedding vertex — including the
        just-placed candidate itself — is subtracted once per row where
        it survives the difference and sits below that row's bound.
        """
        swap = kind in ("memo-diff", "diff-fixed")
        excluded = np.zeros(len(cands), dtype=np.int64)
        if swap:
            # The candidate vertex: v never neighbors itself, so for
            # base \ adj(v) it survives exactly when v ∈ base.
            in_result = kernels.members_mask(cands, base)
            if bounds is not None:
                in_result = in_result & (cands < bounds)
            excluded += in_result
        for u in emb:
            u = int(u)
            if swap:
                if not kernels.contains(base, u):
                    continue
                hits = ~(
                    kernels.segment_sums(concat == u, offsets) > 0
                )
            else:
                if kernels.contains(base, u):
                    continue
                hits = kernels.segment_sums(concat == u, offsets) > 0
            if bounds is not None:
                hits = hits & (u < np.asarray(bounds))
            excluded += hits
        return int(excluded.sum())

    # ------------------------------------------------------------------
    # Level-synchronous frontier execution (batch_frontier=True)
    # ------------------------------------------------------------------
    def _mine_frontier(self, v0: int) -> None:
        """Expand one root's search subtree a level at a time (the
        per-task entry the pool/parallel workers call)."""
        self._mine_frontier_from(np.full((1, 1), v0, dtype=np.int64))

    def _mine_frontier_from(self, emb: np.ndarray) -> None:
        """Expand a whole frontier of partial embeddings level by level.

        The frontier at depth ``d`` is an ``(n_emb, d)`` embedding
        matrix; each level gathers every row's operand adjacency lists
        into one segmented array and runs the segmented kernels once per
        plan operation instead of once per embedding.  Raw candidate
        lists are kept per level (``stores``) with a row→segment origin
        map so deeper steps' frontier-memo composition reads the same
        arrays the recursive ``_raw_stack`` would have held.  Counts and
        counters are bit-identical to :meth:`_extend` — every charge
        below is the closed-form sum of the per-embedding charges.
        """
        leaf_depth = self._leaf_depth
        stores: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [
            None
        ] * (leaf_depth + 1)
        origins: List[Optional[np.ndarray]] = [None] * (leaf_depth + 1)
        for depth in range(emb.shape[1], leaf_depth):
            step = self._steps[depth - 1]
            if self._frontier_over_budget(step, emb, stores, origins):
                self._frontier_fallbacks += 1
                self._frontier_recurse(depth, emb, stores, origins)
                return
            raw_concat, raw_offsets = self._frontier_raw(
                step, emb, stores, origins
            )
            stores[depth] = (raw_concat, raw_offsets)
            f_concat, f_offsets = self._frontier_filter(
                step, emb, raw_concat, raw_offsets
            )
            if depth == 1 and self._chunk is not None:
                index, total = self._chunk
                f_concat = np.array_split(f_concat, total)[index]
                f_offsets = np.array([0, len(f_concat)], dtype=np.int64)
            n_rows = len(f_concat)
            self._frontier_rows += n_rows
            if n_rows > self._frontier_peak:
                self._frontier_peak = n_rows
            if n_rows == 0:
                return
            parent = np.repeat(
                np.arange(len(emb), dtype=np.int64), np.diff(f_offsets)
            )
            emb = np.concatenate(
                [emb[parent], f_concat[:, None].astype(np.int64)], axis=1
            )
            for t in range(1, depth):
                if origins[t] is not None:
                    origins[t] = origins[t][parent]
            origins[depth] = parent
        step = self._steps[leaf_depth - 1]
        if self._frontier_over_budget(step, emb, stores, origins):
            self._frontier_fallbacks += 1
            self._frontier_recurse(leaf_depth, emb, stores, origins)
            return
        if self._leaf_countable(step):
            self._counts[0] += self._frontier_count_leaf(
                step, emb, stores, origins
            )
            return
        raw_concat, raw_offsets = self._frontier_raw(
            step, emb, stores, origins
        )
        f_concat, f_offsets = self._frontier_filter(
            step, emb, raw_concat, raw_offsets
        )
        self._counts[0] += len(f_concat)
        if self.collect and len(f_concat):
            parent = np.repeat(
                np.arange(len(emb), dtype=np.int64), np.diff(f_offsets)
            )
            full = np.concatenate(
                [emb[parent], f_concat[:, None].astype(np.int64)], axis=1
            )
            self._embeddings.extend(
                tuple(int(x) for x in row) for row in full
            )

    def _frontier_over_budget(self, step, emb, stores, origins) -> bool:
        """Memory budget: would expanding this level materialize more
        than ``frontier_row_limit`` elements (or is the frontier itself
        already wider)?  A pure size estimate from index arithmetic —
        no counters are charged, so the fallback stays bit-identical."""
        limit = self.frontier_row_limit
        if len(emb) > limit:
            return True
        if self.use_frontier_memo and step.base_step is not None:
            s_concat, s_offsets = stores[step.base_step]
            take = origins[step.base_step]
            estimate = int(
                (s_offsets[take + 1] - s_offsets[take]).sum()
            )
        else:
            degrees = self._work_graph.degrees()
            estimate = int(degrees[emb[:, step.extender]].sum())
        return estimate > limit

    def _frontier_recurse(self, depth, emb, stores, origins) -> None:
        """Fallback: finish every frontier row with plain recursion.

        Reconstructs the per-row ``_raw_stack`` slices from the level
        stores so frontier-memo composition below ``depth`` behaves
        exactly as if the whole path had been walked recursively."""
        stored = [t for t in range(1, depth) if stores[t] is not None]
        for r in range(len(emb)):
            for t in stored:
                s_concat, s_offsets = stores[t]
                i = int(origins[t][r])
                self._raw_stack[t] = s_concat[
                    s_offsets[i] : s_offsets[i + 1]
                ]
            self._extend(depth, [int(x) for x in emb[r]])

    def _frontier_operands(self, step, emb, stores, origins):
        """Shared head of the raw-candidate chain: the starting
        segmented candidate arrays plus the remaining (kind, slot) ops,
        with the same frontier-hit/miss and adjacency charges the
        per-embedding path makes."""
        n = len(emb)
        c = self.counters
        if self.use_frontier_memo and step.base_step is not None:
            c.frontier_hits += n
            s_concat, s_offsets = stores[step.base_step]
            cands, offsets = kernels.gather_segments(
                s_concat, s_offsets, origins[step.base_step]
            )
            ops = [(True, d) for d in step.extra_connected] + [
                (False, d) for d in step.extra_disconnected
            ]
        else:
            if step.base_step is not None:
                c.frontier_misses += n
            cands, offsets = self._gather_adjacency(
                emb[:, step.extender]
            )
            ops = [(True, d) for d in step.connected] + [
                (False, d) for d in step.disconnected
            ]
        return cands, offsets, ops

    def _frontier_fold(self, emb, cands, offsets, is_intersect, d):
        """One segmented set operation over the whole frontier, charged
        exactly like ``len(emb)`` per-row counted ops."""
        other, other_offsets = self._gather_adjacency(emb[:, d])
        c = self.counters
        if is_intersect:
            c.set_intersections += len(emb)
        else:
            c.set_differences += len(emb)
        c.setop_iterations += int(offsets[-1]) + int(other_offsets[-1])
        op = (
            kernels.segmented_pair_intersect
            if is_intersect
            else kernels.segmented_pair_difference
        )
        return op(
            cands, offsets, other, other_offsets, self._frontier_keyspace
        )

    def _frontier_raw(self, step, emb, stores, origins):
        """Batched :meth:`_raw_candidates`: one segmented op per plan
        operation instead of one per embedding row."""
        cands, offsets, ops = self._frontier_operands(
            step, emb, stores, origins
        )
        for is_intersect, d in ops:
            cands, offsets = self._frontier_fold(
                emb, cands, offsets, is_intersect, d
            )
        return cands, offsets

    def _frontier_filter(self, step, emb, cands, offsets):
        """Batched :meth:`_filtered_candidates`: bound cut, label
        filter, and injectivity as per-element masks over the segmented
        candidate array."""
        self.counters.candidates_checked += len(cands)
        mask = None
        if step.upper_bounds:
            bounds = np.min(emb[:, list(step.upper_bounds)], axis=1)
            mask = cands < np.repeat(bounds, np.diff(offsets))
        if step.label is not None:
            label_ok = self._labels[cands] == step.label
            mask = label_ok if mask is None else mask & label_ok
        if not step.covers_all_ancestors:
            keep = self._frontier_member_mask(emb, cands, offsets)
            np.logical_not(keep, out=keep)
            mask = keep if mask is None else mask & keep
        if mask is None:
            return cands, offsets
        csum = np.concatenate(([0], np.cumsum(mask, dtype=np.int64)))
        return cands[mask], csum[offsets]

    def _frontier_member_mask(self, emb, cands, offsets) -> np.ndarray:
        """Per-element mask: candidate equals one of its own row's
        embedding vertices (the injectivity exclusions)."""
        rows = kernels.segment_ids(offsets)
        mask = np.zeros(len(cands), dtype=bool)
        for j in range(emb.shape[1]):
            mask |= cands == emb[rows, j]
        return mask

    def _frontier_count_leaf(self, step, emb, stores, origins) -> int:
        """Batched :meth:`_count_leaf`: the whole leaf level counted in
        one pass, with per-row symmetry bounds and injectivity
        exclusions folded into the segmented count kernel."""
        c = self.counters
        bounds = (
            np.min(emb[:, list(step.upper_bounds)], axis=1)
            if step.upper_bounds
            else None
        )
        cands, offsets, ops = self._frontier_operands(
            step, emb, stores, origins
        )
        for is_intersect, d in ops[:-1]:
            cands, offsets = self._frontier_fold(
                emb, cands, offsets, is_intersect, d
            )
        if ops:
            is_intersect, d = ops[-1]
            other, other_offsets = self._gather_adjacency(emb[:, d])
            if is_intersect:
                c.set_intersections += len(emb)
            else:
                c.set_differences += len(emb)
            c.setop_iterations += int(offsets[-1]) + int(
                other_offsets[-1]
            )
            exclude_mask = (
                None
                if step.covers_all_ancestors
                else self._frontier_member_mask(emb, cands, offsets)
            )
            raw, below = kernels.segmented_pair_count_below(
                cands,
                offsets,
                other,
                other_offsets,
                keyspace=self._frontier_keyspace,
                intersect=is_intersect,
                bounds=bounds,
                exclude_mask=exclude_mask,
            )
            c.candidates_checked += int(raw.sum())
            return int(below.sum())
        # Pure memo reuse: no ops left, count the stored list under the
        # bound/injectivity masks (the recursive epilogue, batched).
        c.candidates_checked += len(cands)
        mask = np.ones(len(cands), dtype=bool)
        if bounds is not None:
            mask &= cands < np.repeat(bounds, np.diff(offsets))
        if not step.covers_all_ancestors:
            mask &= ~self._frontier_member_mask(emb, cands, offsets)
        return int(np.count_nonzero(mask))

    def _gather_adjacency(self, vertices: np.ndarray):
        """Batched :meth:`_load_adjacency`: one gather for a whole
        frontier column, charged per row."""
        concat, offsets = self._work_graph.gather_neighbors(vertices)
        self.counters.adjacency_loads += len(vertices)
        self.counters.adjacency_bytes += 4 * int(offsets[-1])
        return concat, offsets

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def _filtered_candidates(
        self, step: VertexStep, emb: Sequence[int]
    ) -> np.ndarray:
        cands = self._raw_candidates(step, emb)
        self.counters.candidates_checked += len(cands)
        if step.upper_bounds:
            bound = min(emb[b] for b in step.upper_bounds)
            cands = bound_below(cands, bound)
        if step.label is not None:
            cands = cands[self._labels[cands] == step.label]
        if step.covers_all_ancestors:
            # Every candidate neighbors every embedding vertex; since no
            # vertex neighbors itself, the injectivity filter is a no-op
            # (clique steps hit this on every level).
            return cands
        return remove_values(cands, emb)

    def _raw_candidates(
        self, step: VertexStep, emb: Sequence[int]
    ) -> np.ndarray:
        """Unbounded candidate set: adj(extender) ∩ adj(connected...)
        minus adj(disconnected...), via frontier composition when hinted."""
        if self.use_frontier_memo and step.base_step is not None:
            self.counters.frontier_hits += 1
            cands = self._raw_stack[step.base_step]
            for d in step.extra_connected:
                cands = intersect(
                    cands, self._load_adjacency(emb[d]), self.counters
                )
            for d in step.extra_disconnected:
                cands = difference(
                    cands, self._load_adjacency(emb[d]), self.counters
                )
        else:
            if step.base_step is not None:
                self.counters.frontier_misses += 1
            cands = self._load_adjacency(emb[step.extender])
            for d in step.connected:
                cands = intersect(
                    cands, self._load_adjacency(emb[d]), self.counters
                )
            for d in step.disconnected:
                cands = difference(
                    cands, self._load_adjacency(emb[d]), self.counters
                )
        self._raw_stack[step.depth] = cands
        return cands

    def _load_adjacency(self, v: int) -> np.ndarray:
        nbrs = self._work_graph.neighbors(v)
        self.counters.adjacency_loads += 1
        self.counters.adjacency_bytes += 4 * len(nbrs)
        return nbrs


def mine(
    graph: CSRGraph,
    plan: ExecutionPlan,
    *,
    collect: bool = False,
    use_frontier_memo: bool = True,
) -> MiningResult:
    """Convenience wrapper: run a single-pattern plan over a graph."""
    engine = PatternAwareEngine(
        graph, plan, collect=collect, use_frontier_memo=use_frontier_memo
    )
    return engine.run()


def mine_multi(
    graph: CSRGraph, plan: MultiPlan, *, collect: bool = False
) -> MiningResult:
    """Convenience wrapper: run a multi-pattern plan over a graph."""
    return PatternAwareEngine(graph, plan, collect=collect).run()
