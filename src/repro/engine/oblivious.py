"""Pattern-oblivious baseline engine (the Gramer/Arabesque model, §III).

Pattern-oblivious systems build the full search tree of connected
subgraphs and test each leaf for isomorphism with the query.  They pay
twice: the tree is far larger than a pruned one (no matching order, no
symmetry order), and every leaf costs an isomorphism test.  The paper's
Table II shows GraphZero beating Gramer — an FPGA accelerator running
this strategy — by 8.3x on average purely through pattern awareness.

Unique subgraph enumeration uses the ESU algorithm (Wernicke 2006):
every connected vertex-induced k-subgraph is visited exactly once, which
mirrors Arabesque's canonicality filter (each subgraph expanded once).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..graph import CSRGraph
from ..patterns import Pattern
from .counters import OpCounters
from .explore import MiningResult

__all__ = ["ObliviousEngine", "mine_oblivious"]


class BudgetExceeded(ReproError):
    """Raised when enumeration exceeds the configured subgraph budget."""


class ObliviousEngine:
    """Pattern-oblivious extend-and-check miner.

    Parameters
    ----------
    graph:
        The undirected data graph.
    patterns:
        Query patterns, all of the same size k.
    induced:
        Vertex-induced (k-MC) vs edge-induced (SL/clique) matching.
    max_subgraphs:
        Safety budget: raise :class:`BudgetExceeded` after enumerating
        this many subgraphs (pattern-oblivious search trees explode on
        dense graphs, which is rather the point).
    """

    def __init__(
        self,
        graph: CSRGraph,
        patterns: Sequence[Pattern],
        *,
        induced: bool = False,
        max_subgraphs: Optional[int] = None,
    ) -> None:
        sizes = {p.num_vertices for p in patterns}
        if len(sizes) != 1:
            raise ReproError("all patterns must have the same size")
        self.graph = graph
        self.patterns = list(patterns)
        self.k = sizes.pop()
        self.induced = induced
        self.max_subgraphs = max_subgraphs
        self.counters = OpCounters()
        self._counts = [0] * len(patterns)
        self._embeddings: List[Tuple[int, ...]] = []
        self._collect = False
        self._patterns_labeled = any(p.is_labeled for p in patterns)
        data_labels = getattr(graph, "labels", None)
        # Data labels only matter when some pattern constrains them;
        # otherwise subgraphs stay unlabeled so canonical keys line up.
        self._labels = data_labels if self._patterns_labeled else None
        if self._patterns_labeled and data_labels is None:
            raise ReproError(
                "labeled patterns require a LabeledGraph data graph"
            )
        self._wildcards = any(
            p.is_labeled and None in p.labels for p in patterns
        )
        # Pre-computed pattern keys for cheap classification.  Canonical
        # lookup is exact-match, so wildcard labels force the slower
        # per-pattern isomorphism path.
        self._canon: Dict[object, List[int]] = {}
        for i, p in enumerate(patterns):
            self._canon.setdefault(p.canonical_form(), []).append(i)
        self._pattern_edge_counts = [p.num_edges for p in patterns]

    def run(self, *, collect: bool = False) -> MiningResult:
        """Enumerate every connected k-subgraph and classify each one."""
        self._collect = collect
        adj_sets = [set(map(int, self.graph.neighbors(v)))
                    for v in self.graph.vertices()]
        self._adj = adj_sets
        for v in self.graph.vertices():
            self.counters.tasks += 1
            extension = {u for u in adj_sets[v] if u > v}
            self._extend([v], extension, v)
        self.counters.matches = sum(self._counts)
        return MiningResult(
            counts=tuple(self._counts),
            counters=self.counters,
            embeddings=self._embeddings if collect else None,
        )

    # ------------------------------------------------------------------
    # ESU enumeration
    # ------------------------------------------------------------------
    def _extend(self, sub: List[int], extension: set, root: int) -> None:
        if len(sub) == self.k:
            self._classify(tuple(sub))
            return
        ext = sorted(extension)
        neighborhood = set().union(*(self._adj[w] for w in sub)) | set(sub)
        for i, u in enumerate(ext):
            exclusive = {
                w
                for w in self._adj[u]
                if w > root and w not in neighborhood
            }
            self._extend(
                sub + [u], set(ext[i + 1 :]) | exclusive, root
            )

    # ------------------------------------------------------------------
    # Classification (the expensive isomorphism tests)
    # ------------------------------------------------------------------
    def _classify(self, combo: Tuple[int, ...]) -> None:
        self.counters.subgraphs_enumerated += 1
        if (
            self.max_subgraphs is not None
            and self.counters.subgraphs_enumerated > self.max_subgraphs
        ):
            raise BudgetExceeded(
                f"exceeded {self.max_subgraphs} enumerated subgraphs"
            )
        edges = [
            (i, j)
            for i, j in itertools.combinations(range(self.k), 2)
            if combo[j] in self._adj[combo[i]]
        ]
        sub_labels = (
            [int(self._labels[v]) for v in combo]
            if self._labels is not None
            else None
        )
        sub = Pattern(self.k, edges, labels=sub_labels)
        self.counters.isomorphism_tests += 1
        if self.induced and not self._wildcards:
            # Fast path: exact labels (or none) mean at most one match
            # class per enumerated subgraph — a canonical-form lookup.
            hits = self._canon.get(sub.canonical_form(), ())
            for index in hits:
                self._counts[index] += 1
                if self._collect:
                    self._embeddings.append(combo)
            return
        for index, pattern in enumerate(self.patterns):
            if sub.num_edges < pattern.num_edges:
                continue
            found = self._match_classes(sub, pattern)
            self._counts[index] += found
            if self._collect and found:
                self._embeddings.extend([combo] * found)

    def _match_classes(self, sub: Pattern, pattern: Pattern) -> int:
        """Matches of ``pattern`` on ``sub``: hom count over |Aut(P)|.

        The automorphism group acts freely on the injective mappings,
        so the division is exact.  For unlabeled edge-induced patterns
        this equals the number of distinct edge-set images (six diamonds
        in a K4); with wildcard labels it correctly counts each distinct
        label assignment.
        """
        from ..patterns.isomorphism import _hom_permutations

        homs = sum(
            1
            for _ in _hom_permutations(sub, pattern, induced=self.induced)
        )
        if not homs:
            return 0
        automorphisms = len(pattern.automorphisms())
        assert homs % automorphisms == 0, "Aut(P) must act freely"
        return homs // automorphisms


def mine_oblivious(
    graph: CSRGraph,
    pattern: Pattern,
    *,
    induced: bool = False,
    max_subgraphs: Optional[int] = None,
    collect: bool = False,
) -> MiningResult:
    """Convenience wrapper: pattern-oblivious mining of one pattern."""
    engine = ObliviousEngine(
        graph, [pattern], induced=induced, max_subgraphs=max_subgraphs
    )
    return engine.run(collect=collect)
