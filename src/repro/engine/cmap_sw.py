"""Software connectivity-map engine (paper §II-C and §VI preliminaries).

Software GPM systems memoize neighborhood connectivity in a *vector*
c-map: a |V|-entry byte array where entry v holds a bitset of the
embedding depths v is connected to.  Set intersections then become one
query per candidate.  The paper cites an average 2.3x k-CL speedup for
this technique in software [21] while noting its two flaws — O(|V|)
memory per thread and terrible cache behaviour — which motivate the
compact hardware hash-map c-map of §VI.

:class:`CMapSoftwareEngine` executes the same plans as the base engine
but resolves connectivity constraints through a :class:`VectorCMap`,
maintained incrementally on DFS descend/backtrack exactly like Fig. 12.
It is the functional reference the hardware c-map model is validated
against, and its read/write counters reproduce the read-ratio numbers of
§VII-C.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..compiler.plan import VertexStep
from ..graph import CSRGraph
from .explore import PatternAwareEngine
from .setops import bound_below, difference, intersect

__all__ = ["VectorCMap", "CMapSoftwareEngine"]


class VectorCMap:
    """|V|-entry vector c-map with per-depth bitset values.

    Entry semantics match Fig. 12: bit d of ``values[v]`` is set when v
    is adjacent to the embedding vertex at depth d.  Insertions and
    deletions happen in bulk (a whole neighbor list at a time) and are
    naturally stack-ordered, which is the property the simplified
    hardware deletion relies on.
    """

    def __init__(self, num_vertices: int, *, max_depths: int = 8) -> None:
        self.values = np.zeros(num_vertices, dtype=np.uint8)
        self.max_depths = max_depths
        self.reads = 0
        self.writes = 0

    def insert_neighbors(self, neighbors: np.ndarray, depth: int) -> None:
        """Mark every listed vertex as connected to depth ``depth``."""
        if depth >= self.max_depths:
            raise ValueError(
                f"depth {depth} exceeds the {self.max_depths}-bit value"
            )
        self.values[neighbors] |= np.uint8(1 << depth)
        self.writes += len(neighbors)

    def remove_neighbors(self, neighbors: np.ndarray, depth: int) -> None:
        """Backtrack cleanup: clear depth ``depth`` for the listed ids."""
        self.values[neighbors] &= np.uint8(~(1 << depth) & 0xFF)
        self.writes += len(neighbors)

    def query(self, v: int) -> int:
        """Bitset of depths vertex v is connected to (0 if none)."""
        self.reads += 1
        return int(self.values[v])

    def query_many(self, ids: np.ndarray) -> np.ndarray:
        """Vectorized query (one logical read per id)."""
        self.reads += len(ids)
        return self.values[ids]

    @property
    def read_ratio(self) -> float:
        """Fraction of c-map accesses that are reads (§VII-C metric)."""
        total = self.reads + self.writes
        return self.reads / total if total else 0.0


class CMapSoftwareEngine(PatternAwareEngine):
    """Plan executor that replaces set intersections with c-map queries.

    Only the connectivity *checks* change; candidate iteration, symmetry
    bounds, frontier memoization and match counting are inherited, so any
    count divergence from the base engine is a bug (tests enforce
    equality).
    """

    # Leaf candidates must route through the c-map query override, not
    # the base engine's count-only shortcut.
    supports_leaf_counting = False

    def __init__(
        self,
        graph: CSRGraph,
        plan,
        *,
        collect: bool = False,
        use_frontier_memo: bool = True,
        tracer=None,
        metrics=None,
    ) -> None:
        super().__init__(
            graph, plan, collect=collect,
            use_frontier_memo=use_frontier_memo,
            tracer=tracer, metrics=metrics,
        )
        self.cmap = VectorCMap(graph.num_vertices)
        if isinstance(plan.cmap_insert_depths, tuple):
            self._insert_depths = set(plan.cmap_insert_depths)
        else:  # pragma: no cover - defensive
            self._insert_depths = set(plan.cmap_insert_depths)
        self._insert_filter = getattr(plan, "cmap_insert_filter", {})
        # Stack of (depth, inserted ids) for backtrack cleanup.
        self._inserted: List[np.ndarray] = []

    def run(self, roots=None):
        """Mine, then publish vector-c-map traffic to the metrics registry
        (the §VII-C read-ratio series) alongside the inherited counters."""
        result = super().run(roots)
        self.metrics.absorb(
            {
                "reads": self.cmap.reads,
                "writes": self.cmap.writes,
                "read_ratio": self.cmap.read_ratio,
            },
            prefix="engine.cmap.",
        )
        return result

    # ------------------------------------------------------------------
    # c-map maintenance on DFS moves (Fig. 12)
    # ------------------------------------------------------------------
    def _on_descend(self, depth: int, emb: List[int]) -> None:
        if depth not in self._insert_depths:
            return
        neighbors = self._load_adjacency(emb[depth])
        flt = self._insert_filter.get(depth)
        if flt is not None:
            neighbors = bound_below(neighbors, emb[flt])
        self.cmap.insert_neighbors(neighbors, depth)
        self._inserted.append((depth, neighbors))

    def _on_backtrack(self, depth: int, emb: List[int]) -> None:
        if depth not in self._insert_depths:
            return
        stored_depth, neighbors = self._inserted.pop()
        assert stored_depth == depth, "c-map cleanup out of stack order"
        self.cmap.remove_neighbors(neighbors, depth)

    # ------------------------------------------------------------------
    # Connectivity via queries instead of intersections
    # ------------------------------------------------------------------
    def _raw_candidates(self, step: VertexStep, emb: Sequence[int]):
        if self.use_frontier_memo and step.base_step is not None:
            self.counters.frontier_hits += 1
            cands = self._raw_stack[step.base_step]
            checked = step.extra_connected
            forbidden_depths = step.extra_disconnected
        else:
            cands = self._load_adjacency(emb[step.extender])
            checked = step.connected
            forbidden_depths = step.disconnected

        # Depths the c-map covers are resolved by queries; anything else
        # (possible only when memoization is toggled off under a plan
        # compiled with composition hints) falls back to set operations.
        required = 0
        forbidden = 0
        for d in checked:
            if d in self._insert_depths:
                required |= 1 << d
            else:
                cands = intersect(
                    cands, self._load_adjacency(emb[d]), self.counters
                )
        for d in forbidden_depths:
            if d in self._insert_depths:
                forbidden |= 1 << d
            else:
                cands = difference(
                    cands, self._load_adjacency(emb[d]), self.counters
                )
        if required or forbidden:
            bits = self.cmap.query_many(cands)
            mask = (bits & required) == required
            if forbidden:
                mask &= (bits & forbidden) == 0
            cands = cands[mask]
        self._raw_stack[step.depth] = cands
        return cands
