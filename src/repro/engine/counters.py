"""Operation counters shared by the software engines.

The counters capture the algorithm-level work a GPM execution performs,
independent of the platform executing it.  The CPU baseline model
(``repro.bench.cpumodel``) converts them into GraphZero/AutoMine-style
runtimes; tests use them to verify optimization effects (e.g. frontier
memoization reducing ``setop_iterations``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["OpCounters"]


@dataclass
class OpCounters:
    """Work performed during one mining run."""

    #: Root vertices processed (units of coarse-grain parallelism).
    tasks: int = 0
    #: Merge-based set intersections / differences executed.
    set_intersections: int = 0
    set_differences: int = 0
    #: Total merge-loop iterations (len(a) + len(b) per operation) — the
    #: quantity SIU/SDU execute at one per cycle (paper Fig. 9).
    setop_iterations: int = 0
    #: Adjacency lists fetched and the bytes they cover (4 B per id).
    adjacency_loads: int = 0
    adjacency_bytes: int = 0
    #: Candidates examined by the pruner (bound + injectivity checks).
    candidates_checked: int = 0
    #: Frontier-list memoization hits/misses (paper §V-C).
    frontier_hits: int = 0
    frontier_misses: int = 0
    #: Pattern-oblivious work: subgraphs enumerated and isomorphism tests.
    subgraphs_enumerated: int = 0
    isomorphism_tests: int = 0
    #: Total matches found (sum over patterns).
    matches: int = 0

    def merge(self, other: "OpCounters") -> None:
        """Accumulate another counter set into this one."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def __iadd__(self, other: "OpCounters") -> "OpCounters":
        """``counters += engine.counters`` — field-wise accumulation."""
        self.merge(other)
        return self

    def diff(self, baseline: "OpCounters") -> "OpCounters":
        """Field-wise delta of this snapshot against ``baseline``.

        Engines and the metrics registry delta-compare snapshots with
        ``after.diff(before).as_dict()`` instead of hand-written loops.
        """
        out = OpCounters()
        for name in self.__dataclass_fields__:
            setattr(out, name, getattr(self, name) - getattr(baseline, name))
        return out

    def copy(self) -> "OpCounters":
        """Independent snapshot (the operand ``diff`` compares against)."""
        out = OpCounters()
        out.merge(self)
        return out

    def as_dict(self) -> Dict[str, int]:
        return {
            name: getattr(self, name) for name in self.__dataclass_fields__
        }
