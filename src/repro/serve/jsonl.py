"""JSON-lines front end for :class:`~repro.serve.MiningService`.

``flexminer serve`` reads one JSON object per line from stdin and
writes one JSON object per line to stdout — the simplest transport that
lets any language (or a shell ``printf`` loop) drive the resident
service.  Ops::

    {"op": "register", "name": "as", "dataset": "As"}
    {"op": "register", "name": "g", "path": "graph.mtx"}
    {"op": "mine", "graph": "as", "app": "TC"}
    {"op": "mine", "graph": "as", "pattern": "4-cycle"}
    {"op": "mine", "graph": "as", "app": "k-CL", "k": 4}
    {"op": "mine", "graph": "as", "app": "k-MC", "k": 3}
    {"op": "unregister", "graph": "as"}
    {"op": "stats"}
    {"op": "close"}

Every response carries ``"ok"``; failures are *data*, not stream
deaths: ``{"ok": false, "error": "...", "kind": "<ExceptionName>"}``,
with ``"retry": true`` added for admission-control rejections
(:class:`~repro.errors.ServiceOverloaded`) so clients can back off.
The loop itself only terminates on end-of-input or an explicit
``close`` op.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Optional, TextIO

from ..errors import ReproError, ServiceOverloaded
from ..graph import load_dataset, load_graph
from ..patterns import from_name
from .service import MineRequest, MiningService

__all__ = ["handle_request", "serve_stream"]


def _mine_request(payload: Dict[str, object]) -> MineRequest:
    pattern_spec = payload.get("pattern")
    pattern = (
        from_name(str(pattern_spec)) if pattern_spec is not None else None
    )
    matching_order = payload.get("matching_order")
    return MineRequest(
        graph=str(payload["graph"]),
        app=payload.get("app"),  # type: ignore[arg-type]
        pattern=pattern,
        k=int(payload.get("k", 3)),
        motif_k=(
            int(payload["motif_k"])
            if payload.get("motif_k") is not None
            else None
        ),
        induced=bool(payload.get("induced", False)),
        matching_order=(
            tuple(int(v) for v in matching_order)  # type: ignore[union-attr]
            if matching_order is not None
            else None
        ),
        split_degree=payload.get("split_degree"),  # type: ignore[arg-type]
        use_cache=not payload.get("no_cache", False),
    )


def handle_request(
    service: MiningService, payload: Dict[str, object]
) -> Dict[str, object]:
    """Serve one decoded request object; always returns a response."""
    op = payload.get("op", "mine")
    try:
        if op == "mine":
            if "graph" not in payload:
                raise KeyError("graph")
            response = service.request(_mine_request(payload))
            return dict(response.as_dict(), ok=True, op="mine")
        if op == "register":
            if "path" in payload:
                graph = load_graph(str(payload["path"]))
                name = payload.get("name") or str(payload["path"])
            else:
                dataset = str(
                    payload.get("dataset") or payload.get("graph") or "As"
                )
                graph = load_dataset(dataset)
                name = payload.get("name") or dataset
            epoch = service.register_graph(str(name), graph)
            return {
                "ok": True,
                "op": "register",
                "graph": str(name),
                "epoch": epoch,
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
            }
        if op == "unregister":
            service.unregister_graph(str(payload["graph"]))
            return {
                "ok": True,
                "op": "unregister",
                "graph": str(payload["graph"]),
            }
        if op == "stats":
            return {"ok": True, "op": "stats", "stats": service.stats()}
        if op == "close":
            return {"ok": True, "op": "close", "closing": True}
        raise ValueError(f"unknown op {op!r}")
    except ServiceOverloaded as exc:
        return {
            "ok": False,
            "op": op,
            "error": str(exc),
            "kind": type(exc).__name__,
            "retry": True,
            "active": exc.active,
            "max_active": exc.max_active,
        }
    except (ReproError, KeyError, ValueError, TypeError, OSError) as exc:
        return {
            "ok": False,
            "op": op,
            "error": str(exc),
            "kind": type(exc).__name__,
        }


def serve_stream(
    service: MiningService,
    lines: Iterable[str],
    out: TextIO,
    *,
    echo_errors_to: Optional[TextIO] = None,
) -> int:
    """Drive the service from an iterable of JSON lines.

    Writes one JSON response per request line (blank lines are
    skipped), flushing after each so pipe-connected clients see
    responses immediately.  Returns the number of requests handled.
    Stops at end-of-input or after a ``close`` op.
    """
    handled = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            response = {
                "ok": False,
                "error": f"bad request line: {exc}",
                "kind": "ValueError",
            }
        else:
            response = handle_request(service, payload)
            if echo_errors_to is not None and not response.get("ok"):
                print(
                    f"serve: {response.get('error')}", file=echo_errors_to
                )
        handled += 1
        out.write(json.dumps(response, sort_keys=True) + "\n")
        out.flush()
        if response.get("op") == "close" and response.get("ok"):
            break
    return handled
