"""Mining-as-a-service: resident service over the persistent pool.

The serving layer amortizes the three big fixed costs of one-shot
mining — graph load + shared-memory export (per registered graph),
plan compilation (per *canonical* pattern, ever), and worker fork
(per pool) — across an arbitrary request stream, while preserving the
engine's zero-drift guarantee: served counts and op counters are
bit-identical to a direct serial run.

* :class:`MiningService` — graph registry with epochs, single-flight
  plan/result caches, bounded admission, ``serve.*`` metrics;
* :class:`MineRequest` / :class:`MineResponse` — the request surface;
* :func:`plan_cache_key` — canonical plan identity (shared by tests);
* :func:`serve_stream` / :func:`handle_request` — the JSON-lines
  transport behind ``flexminer serve``.

See ``docs/serving.md`` for architecture and semantics.
"""

from .jsonl import handle_request, serve_stream
from .service import (
    MineRequest,
    MineResponse,
    MiningService,
    plan_cache_key,
)

__all__ = [
    "MineRequest",
    "MineResponse",
    "MiningService",
    "handle_request",
    "plan_cache_key",
    "serve_stream",
]
