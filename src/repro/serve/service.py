"""Mining-as-a-service: a resident :class:`MiningService`.

Everything else in this repository is one-shot — a ``flexminer`` call or
a :class:`~repro.bench.harness.Harness` run pays graph load, plan
compilation and (for the multi-process paths) worker fork on every
mine.  A server answering a stream of requests should pay each of those
costs once:

* **graphs register once** — :meth:`MiningService.register_graph` loads
  a graph into a resident, leased :class:`~repro.engine.pool.MinerPool`
  whose workers keep the shared-memory CSR attached; re-registering a
  name bumps its *epoch* and invalidates every memoized result for it;
* **plans compile once ever** — the compiled-plan cache is keyed by the
  pattern's *canonical form* (isomorphic requests share one plan — the
  count is isomorphism-invariant), the vertex-induced flag, any explicit
  matching order, and the service's engine-config fingerprint; a
  single-flight guard means concurrent first requests still compile
  exactly once, which :meth:`compiles` exposes for tests to pin;
* **results memoize** — the result cache is keyed by (graph name,
  graph *epoch*, plan key, split degree), so a repeated request is
  answered from memory, bit-identical (counts *and*
  :class:`~repro.engine.counters.OpCounters`) to the first execution,
  and re-registration invalidates exactly the right entries;
* **admission control** — at most ``max_active`` requests are in
  flight; request ``max_active + 1`` is rejected immediately with
  :class:`~repro.errors.ServiceOverloaded` (backpressure the caller can
  act on, CMinerAPI-style active-task accounting) instead of queueing
  without bound.

Zero-drift guarantee: a served request (cached or executed, any arrival
order) returns counts and op counters bit-identical to a direct
:class:`~repro.engine.explore.PatternAwareEngine` run with chunking
off.  The ``serve-pool-2`` / ``serve-cached`` differential backends in
:mod:`repro.verify` enforce this continuously.

Observability flows through :mod:`repro.obs`: per-request latency
histograms (``serve.request_ms`` with p50/p90/p99), live QPS, cache
hit/miss counters, queue-depth and active-peak gauges — surfaced by the
``stats`` op of ``flexminer serve`` and renderable with
``flexminer stats``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..compiler import compile_motifs, compile_pattern
from ..engine import MinerPool, MiningResult
from ..errors import (
    ConfigError,
    GraphNotRegistered,
    ServiceClosed,
    ServiceOverloaded,
)
from ..obs import LaneRecorder, MetricsRegistry, make_report
from ..patterns import Pattern, k_clique

__all__ = [
    "MineRequest",
    "MineResponse",
    "MiningService",
    "plan_cache_key",
]

PlanKey = Tuple[object, ...]


# ----------------------------------------------------------------------
# Requests and responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MineRequest:
    """One mining request against a registered graph.

    Either an ``app`` shorthand (``TC`` / ``k-CL`` / ``SL`` / ``k-MC``
    with ``k``/``pattern``, the :mod:`repro.apps` surface) or the
    explicit form — a ``pattern`` (with ``induced`` semantics and an
    optional ``matching_order`` override) or ``motif_k`` for the
    multi-pattern k-motif plan.
    """

    graph: str
    app: Optional[str] = None
    pattern: Optional[Pattern] = None
    k: int = 3
    motif_k: Optional[int] = None
    induced: bool = False
    matching_order: Optional[Tuple[int, ...]] = None
    #: None (bit-identical counters), an int, or "auto" (cost model).
    split_degree: Union[None, int, str] = None
    #: Per-request opt-out of the result/memo cache.
    use_cache: bool = True

    def resolve(self) -> "MineRequest":
        """Normalize the ``app`` shorthand into the explicit form."""
        if self.app is None:
            if (self.pattern is None) == (self.motif_k is None):
                raise ConfigError(
                    "request needs exactly one of app/pattern/motif_k"
                )
            return self
        if self.pattern is not None or self.motif_k is not None:
            if self.app != "SL":
                raise ConfigError(
                    f"app {self.app!r} does not take an explicit "
                    "pattern/motif_k"
                )
        if self.app == "TC":
            return self._replace(app=None, pattern=k_clique(3))
        if self.app == "k-CL":
            return self._replace(app=None, pattern=k_clique(self.k))
        if self.app == "SL":
            if self.pattern is None:
                raise ConfigError("SL needs a pattern")
            return self._replace(app=None)
        if self.app == "k-MC":
            return self._replace(
                app=None, pattern=None, motif_k=self.k, induced=True
            )
        raise ConfigError(
            f"unknown app {self.app!r}; expected TC/k-CL/SL/k-MC"
        )

    def _replace(self, **changes: Any) -> "MineRequest":
        fields = {
            "graph": self.graph,
            "app": self.app,
            "pattern": self.pattern,
            "k": self.k,
            "motif_k": self.motif_k,
            "induced": self.induced,
            "matching_order": self.matching_order,
            "split_degree": self.split_degree,
            "use_cache": self.use_cache,
        }
        fields.update(changes)
        return MineRequest(**fields)


@dataclass(frozen=True)
class MineResponse:
    """Outcome of one served request (counts + provenance)."""

    request_id: int
    graph: str
    epoch: int
    counts: Tuple[int, ...]
    counters: object  #: OpCounters (a private copy; mutate freely)
    latency_s: float
    plan_cache_hit: bool
    result_cache_hit: bool

    @property
    def total(self) -> int:
        return sum(self.counts)

    def as_dict(self) -> Dict[str, object]:
        return {
            "request_id": self.request_id,
            "graph": self.graph,
            "epoch": self.epoch,
            "counts": list(self.counts),
            "total": self.total,
            "latency_ms": self.latency_s * 1e3,
            "plan_cache_hit": self.plan_cache_hit,
            "result_cache_hit": self.result_cache_hit,
        }


# ----------------------------------------------------------------------
# Plan cache key
# ----------------------------------------------------------------------
def plan_cache_key(
    pattern: Optional[Pattern] = None,
    motif_k: Optional[int] = None,
    *,
    induced: bool = False,
    matching_order: Optional[Sequence[int]] = None,
) -> PlanKey:
    """Canonical identity of a compiled plan.

    Unordered pattern requests key on the *canonical form*, so any two
    isomorphic patterns share one compiled plan (counting is
    isomorphism-invariant; the service never collects embeddings).  An
    explicit ``matching_order`` refers to the request's concrete vertex
    numbering, so those requests key on the literal adjacency instead —
    sharing across isomorphic-but-renumbered patterns would silently
    reinterpret the order.  Orientation needs no slot of its own: the
    compiler auto-detects it from the (canonical) clique structure.
    """
    if (pattern is None) == (motif_k is None):
        raise ConfigError("exactly one of pattern/motif_k required")
    if motif_k is not None:
        return ("motifs", int(motif_k))
    assert pattern is not None
    if matching_order is not None:
        labels = pattern.labels if pattern.is_labeled else None
        return (
            "pattern-ordered",
            pattern.num_vertices,
            pattern.adjacency_bits(),
            labels,
            bool(induced),
            tuple(int(v) for v in matching_order),
        )
    return (
        "pattern",
        pattern.num_vertices,
        pattern.canonical_form(),
        bool(induced),
    )


# ----------------------------------------------------------------------
# Single-flight cache
# ----------------------------------------------------------------------
class _SingleFlightCache:
    """Thread-safe memo cache where each key computes at most once.

    Concurrent requests for the same missing key elect one *leader*
    (counted as the miss, and the only ``compute_fn`` invocation);
    everyone else blocks on the leader's event and is counted as a hit.
    A failing leader propagates its exception to itself only — waiters
    re-elect and retry, so a transient failure never poisons the key.
    Bounded: beyond ``max_entries`` the oldest entry is evicted
    (insertion order).
    """

    def __init__(
        self, *, enabled: bool = True, max_entries: int = 1024
    ) -> None:
        self.enabled = enabled
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.computes = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._done: Dict[object, object] = {}
        self._inflight: Dict[object, threading.Event] = {}

    def get_or_compute(
        self, key: object, compute_fn: Callable[[], object]
    ) -> Tuple[object, bool]:
        """Return ``(value, was_cache_hit)`` for ``key``."""
        if not self.enabled:
            with self._lock:
                self.misses += 1
                self.computes += 1
            return compute_fn(), False
        while True:
            with self._lock:
                if key in self._done:
                    self.hits += 1
                    return self._done[key], True
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    self.misses += 1
                    self.computes += 1
                    leader = True
                else:
                    leader = False
            if leader:
                try:
                    value = compute_fn()
                except BaseException:
                    with self._lock:
                        self._inflight.pop(key, None)
                    event.set()
                    raise
                with self._lock:
                    self._done[key] = value
                    self._inflight.pop(key, None)
                    while len(self._done) > self.max_entries:
                        oldest = next(iter(self._done))
                        del self._done[oldest]
                        self.evictions += 1
                event.set()
                return value, False
            event.wait()
            # Either the leader stored the value (hit on re-check) or
            # it failed (we may become the new leader).

    def invalidate(self, predicate: Callable[[object], bool]) -> int:
        """Drop every completed entry whose key satisfies ``predicate``."""
        with self._lock:
            doomed = [k for k in self._done if predicate(k)]
            for k in doomed:
                del self._done[k]
            return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._done)


# ----------------------------------------------------------------------
# Graph registry entry
# ----------------------------------------------------------------------
class _GraphEntry:
    """One registered graph: its epoch and its resident worker pool."""

    __slots__ = ("name", "graph", "epoch", "pool", "mine_lock")

    def __init__(
        self, name: str, graph: object, epoch: int, pool: MinerPool
    ) -> None:
        self.name = name
        self.graph = graph
        self.epoch = epoch
        self.pool = pool
        #: MinerPool serves one request at a time; concurrent service
        #: requests against the same graph serialize here (requests to
        #: *different* graphs run in parallel on their own pools).
        self.mine_lock = threading.Lock()


class MiningService:
    """Resident mining server over registered graphs and cached plans.

    Parameters
    ----------
    workers:
        Worker processes per registered graph's :class:`MinerPool`.
        ``1`` runs every mine in-process (exact serial parity, no
        fork) — the right default for correctness-first callers.
    max_active:
        Admission limit: requests in flight (queued + running) beyond
        this are rejected with :class:`ServiceOverloaded`.
    threads:
        Executor threads actually running requests; requests admitted
        beyond this wait in the executor queue (visible as
        ``serve.queue_depth``).
    result_cache / result_cache_entries:
        Toggle / bound the result memo cache.
    request_timeout_s:
        Per-request bound on waiting for pool workers; a wedged worker
        surfaces as :class:`~repro.engine.pool.PoolWorkerError`
        (``reason="timeout"``) instead of a hang.
    use_frontier_memo / count_leaves / batch_leaves / batch_frontier:
        Engine options for every pool (the config fingerprint).
    metrics:
        A :class:`~repro.obs.MetricsRegistry`; defaults to a private
        enabled registry so :meth:`stats` always has data.
    clock:
        Injectable monotonic clock (tests pin latency arithmetic).
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        max_active: int = 8,
        threads: int = 2,
        result_cache: bool = True,
        result_cache_entries: int = 1024,
        request_timeout_s: Optional[float] = None,
        use_frontier_memo: bool = True,
        count_leaves: bool = True,
        batch_leaves: bool = True,
        batch_frontier: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if max_active < 1:
            raise ConfigError("max_active must be >= 1")
        if threads < 1:
            raise ConfigError("threads must be >= 1")
        self.workers = int(workers)
        self.max_active = int(max_active)
        self.request_timeout_s = request_timeout_s
        self._options = {
            "use_frontier_memo": use_frontier_memo,
            "count_leaves": count_leaves,
            "batch_leaves": batch_leaves,
            "batch_frontier": batch_frontier,
        }
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock = clock if clock is not None else time.perf_counter
        self._plans = _SingleFlightCache()
        self._results = _SingleFlightCache(
            enabled=result_cache, max_entries=result_cache_entries
        )
        self._graphs: Dict[str, _GraphEntry] = {}
        self._registry_lock = threading.Lock()
        self._admit_lock = threading.Lock()
        self._active = 0
        self._active_peak = 0
        self._queued = 0
        self._completed = 0
        self._rejected = 0
        self._next_request_id = 0
        self._anon_count = 0
        self._closed = False
        self._t0 = self._clock()
        self._executor = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "MiningService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Drain running requests, close every pool, reject new work."""
        with self._admit_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._executor.shutdown(wait=True)
        finally:
            # Pools must retire even if the executor teardown raises,
            # and one failing pool must not strand the rest (FM301):
            # capture the first error, keep closing, re-raise.
            with self._registry_lock:
                entries, self._graphs = list(self._graphs.values()), {}
            failure: Optional[BaseException] = None
            for entry in entries:
                try:
                    entry.pool.close()
                except BaseException as exc:
                    if failure is None:
                        failure = exc
            if failure is not None:
                raise failure

    # ------------------------------------------------------------------
    # Graph registry
    # ------------------------------------------------------------------
    def register_graph(self, name: str, graph: object) -> int:
        """Register ``graph`` under ``name``; returns its epoch.

        Re-registering an existing name bumps the epoch, invalidates
        every memoized result for the name, and retires the old pool
        (deferred past in-flight leases — an overlapping request on the
        old epoch completes against the old graph, then the segments
        unlink).
        """
        if self._closed:
            raise ServiceClosed("cannot register on a closed service")
        pool = MinerPool(
            graph,
            workers=self.workers,
            metrics=self.metrics,
            **self._options,
        )
        try:
            with self._registry_lock:
                old = self._graphs.get(name)
                epoch = old.epoch + 1 if old is not None else 0
                self._graphs[name] = _GraphEntry(name, graph, epoch, pool)
        except BaseException:
            # the registry never took ownership: the fresh pool's
            # worker processes and shared segments are ours to reap
            pool.close()
            raise
        if old is not None:
            try:
                self.invalidate_graph(name)
            finally:
                old.pool.close()
        self.metrics.counter("serve.graph_registrations").inc()
        self._publish_gauges()
        return epoch

    def unregister_graph(self, name: str) -> None:
        """Drop a graph: memoized results invalidate, its pool retires."""
        with self._registry_lock:
            entry = self._graphs.pop(name, None)
        if entry is None:
            raise GraphNotRegistered(f"graph {name!r} is not registered")
        self.invalidate_graph(name)
        entry.pool.close()  # deferred while in-flight leases exist
        self._publish_gauges()

    def invalidate_graph(self, name: str) -> int:
        """Explicitly drop every memoized result for ``name``."""
        dropped = self._results.invalidate(
            lambda key: isinstance(key, tuple) and key and key[0] == name
        )
        if dropped:
            self.metrics.counter("serve.result_cache.invalidated").inc(
                dropped
            )
        return dropped

    def graphs(self) -> List[str]:
        with self._registry_lock:
            return sorted(self._graphs)

    def graph_epoch(self, name: str) -> int:
        return self._entry(name).epoch

    def ensure_graph(
        self, graph: object, *, name: Optional[str] = None
    ) -> str:
        """Name under which ``graph`` is registered, registering if new.

        The :mod:`repro.apps` passthrough hands the service a graph
        *object*; identity lookup keeps repeated app calls on the same
        object hitting the same pool and caches.
        """
        with self._registry_lock:
            for entry in self._graphs.values():
                if entry.graph is graph:
                    return entry.name
            if name is None:
                self._anon_count += 1
                name = f"anon-{self._anon_count}"
            taken = name in self._graphs
        if taken:
            raise ConfigError(
                f"graph name {name!r} is registered to a different graph"
            )
        self.register_graph(name, graph)
        return name

    def _entry(self, name: str) -> _GraphEntry:
        with self._registry_lock:
            entry = self._graphs.get(name)
        if entry is None:
            raise GraphNotRegistered(
                f"graph {name!r} is not registered (known: "
                f"{', '.join(sorted(self._graphs)) or 'none'})"
            )
        return entry

    def _leased_entry(self, name: str) -> _GraphEntry:
        """Resolve and lease atomically, so unregister cannot race."""
        with self._registry_lock:
            entry = self._graphs.get(name)
            if entry is None:
                raise GraphNotRegistered(
                    f"graph {name!r} is not registered"
                )
            entry.pool.acquire()
        return entry

    # ------------------------------------------------------------------
    # Plan cache
    # ------------------------------------------------------------------
    def config_fingerprint(self) -> Tuple[object, ...]:
        """Engine-option fingerprint baked into every cache key."""
        return tuple(sorted(self._options.items()))

    @property
    def compiles(self) -> int:
        """Compiler invocations so far (== distinct plan keys served)."""
        return self._plans.computes

    def plan_for(
        self, request: MineRequest
    ) -> Tuple[object, Tuple[object, ...], bool]:
        """Compiled plan for a (resolved) request, through the cache.

        Returns ``(plan, plan_key, was_hit)``.
        """
        key = plan_cache_key(
            request.pattern,
            request.motif_k,
            induced=request.induced,
            matching_order=request.matching_order,
        ) + self.config_fingerprint()

        def compile_now() -> object:
            self.metrics.counter("serve.plan_cache.compiles").inc()
            if request.motif_k is not None:
                return compile_motifs(request.motif_k)
            return compile_pattern(
                request.pattern,
                induced=request.induced,
                matching_order=request.matching_order,
            )

        plan, hit = self._plans.get_or_compute(key, compile_now)
        self.metrics.counter(
            "serve.plan_cache.hits" if hit else "serve.plan_cache.misses"
        ).inc()
        return plan, key, hit

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, request: MineRequest) -> "Future[MineResponse]":
        """Admit a request (or reject with backpressure) and enqueue it.

        Admission happens *here*, synchronously: the caller knows
        immediately whether the request is in flight.  The returned
        future resolves to a :class:`MineResponse` (or raises the
        execution error).
        """
        request = request.resolve()
        with self._admit_lock:
            if self._closed:
                raise ServiceClosed("service is closed")
            if self._active >= self.max_active:
                self._rejected += 1
                self.metrics.counter("serve.rejected").inc()
                raise ServiceOverloaded(self._active, self.max_active)
            self._active += 1
            self._queued += 1
            self._active_peak = max(self._active_peak, self._active)
            request_id = self._next_request_id
            self._next_request_id += 1
            self.metrics.gauge("serve.active").set(self._active)
            self.metrics.gauge("serve.active_peak").set(self._active_peak)
            self.metrics.gauge("serve.queue_depth").set(self._queued)
        try:
            return self._executor.submit(self._run_one, request, request_id)
        except BaseException:
            # the worker will never run _run_one's bookkeeping; roll the
            # admission counters back or the slot leaks forever
            with self._admit_lock:
                self._active -= 1
                self._queued -= 1
                self.metrics.gauge("serve.active").set(self._active)
                self.metrics.gauge("serve.queue_depth").set(self._queued)
            raise

    def request(self, request: MineRequest) -> MineResponse:
        """Synchronous :meth:`submit` + wait."""
        return self.submit(request).result()

    def mine(self, graph: str, **kwargs: Any) -> MineResponse:
        """Convenience: build a :class:`MineRequest` and serve it."""
        return self.request(MineRequest(graph=graph, **kwargs))

    def request_for(self, graph: object, **kwargs: Any) -> MineResponse:
        """Apps-API passthrough: serve against a graph *object*."""
        return self.mine(self.ensure_graph(graph), **kwargs)

    def _run_one(
        self, request: MineRequest, request_id: int
    ) -> MineResponse:
        with self._admit_lock:
            self._queued -= 1
            self.metrics.gauge("serve.queue_depth").set(self._queued)
        try:
            return self._execute(request, request_id)
        finally:
            with self._admit_lock:
                self._active -= 1
                self._completed += 1
                self.metrics.gauge("serve.active").set(self._active)
                self.metrics.counter("serve.requests").inc()
                elapsed = self._clock() - self._t0
                if elapsed > 0:
                    self.metrics.gauge("serve.qps").set(
                        self._completed / elapsed
                    )

    def _execute(
        self, request: MineRequest, request_id: int
    ) -> MineResponse:
        rec = LaneRecorder(clock=self._clock)
        with rec.span("request", cat="serve-request"):
            plan, plan_key, plan_hit = self.plan_for(request)
            entry = self._leased_entry(request.graph)
            try:
                result_key = (
                    entry.name,
                    entry.epoch,
                    plan_key,
                    request.split_degree,
                )

                def execute_now() -> MiningResult:
                    with rec.span("mine", cat="serve-mine"):
                        with entry.mine_lock:
                            return entry.pool.mine(
                                plan,
                                split_degree=request.split_degree,
                                timeout_s=self.request_timeout_s,
                            )

                if request.use_cache:
                    result, result_hit = self._results.get_or_compute(
                        result_key, execute_now
                    )
                else:
                    result, result_hit = execute_now(), False
                    self.metrics.counter(
                        "serve.result_cache.bypassed"
                    ).inc()
                if request.use_cache:
                    self.metrics.counter(
                        "serve.result_cache.hits"
                        if result_hit
                        else "serve.result_cache.misses"
                    ).inc()
            finally:
                entry.pool.release()
        latency_s = rec.total("serve-request")
        self.metrics.histogram("serve.request_ms").observe(
            latency_s * 1e3
        )
        self.metrics.gauge("serve.result_cache.size").set(
            len(self._results)
        )
        return MineResponse(
            request_id=request_id,
            graph=entry.name,
            epoch=entry.epoch,
            counts=tuple(result.counts),
            # Private copy: cached counters must stay immutable.
            counters=result.counters.copy(),
            latency_s=latency_s,
            plan_cache_hit=plan_hit,
            result_cache_hit=result_hit,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active_tasks(self) -> int:
        """Requests currently admitted (queued + running)."""
        with self._admit_lock:
            return self._active

    @property
    def active_peak(self) -> int:
        with self._admit_lock:
            return self._active_peak

    @property
    def requests_completed(self) -> int:
        with self._admit_lock:
            return self._completed

    @property
    def requests_rejected(self) -> int:
        with self._admit_lock:
            return self._rejected

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Python-level cache counters (exact, lock-protected)."""
        return {
            "plan": {
                "hits": self._plans.hits,
                "misses": self._plans.misses,
                "compiles": self._plans.computes,
                "size": len(self._plans),
            },
            "result": {
                "hits": self._results.hits,
                "misses": self._results.misses,
                "evictions": self._results.evictions,
                "size": len(self._results),
            },
        }

    def stats(self) -> Dict[str, object]:
        """Live service snapshot: queues, caches, graphs, latency."""
        with self._registry_lock:
            graphs = {
                name: {
                    "epoch": entry.epoch,
                    "pool": entry.pool.health(),
                }
                for name, entry in sorted(self._graphs.items())
            }
        latency = self.metrics.histogram("serve.request_ms").get()
        elapsed = self._clock() - self._t0
        with self._admit_lock:
            completed = self._completed
            snapshot = {
                "closed": self._closed,
                "workers": self.workers,
                "max_active": self.max_active,
                "active": self._active,
                "active_peak": self._active_peak,
                "queue_depth": self._queued,
                "completed": completed,
                "rejected": self._rejected,
            }
        snapshot.update(
            uptime_s=elapsed,
            qps=(completed / elapsed) if elapsed > 0 else 0.0,
            latency_ms=latency,
            caches=self.cache_stats(),
            graphs=graphs,
        )
        return snapshot

    def stats_report(self, **meta: object) -> Dict[str, object]:
        """``flexminer.run/1`` envelope of :meth:`stats` + metrics."""
        payload = dict(self.stats())
        if self.metrics.enabled:
            payload["metrics"] = self.metrics.snapshot()
        return make_report("serve", payload, meta=meta or None)

    def _publish_gauges(self) -> None:
        with self._registry_lock:
            count = len(self._graphs)
        self.metrics.gauge("serve.graphs").set(count)
