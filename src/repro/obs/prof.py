"""Cross-process profiling: phase attribution and worker trace lanes.

``repro.obs.trace`` stops at the process boundary — the parent's tracer
sees a single opaque ``mine-parallel`` span while the interesting time
(shared-memory attach, queue waits, per-task mining, counter merges)
happens inside worker processes.  This module closes that gap with two
cooperating pieces:

* :class:`LaneRecorder` — a tiny picklable span recorder a *worker*
  process fills with ``(name, t0, t1, cat, args)`` tuples stamped with
  absolute ``time.perf_counter()`` values.  On Linux ``perf_counter`` is
  ``CLOCK_MONOTONIC``, which is machine-wide, so spans recorded in a
  forked child land on the same timeline as the parent's tracer.

* :class:`PhaseProfiler` — the parent-side aggregator.  It attributes
  wall time (``perf_counter``), CPU time (``process_time``) and peak RSS
  to named phases (setup / compile / mine / merge …), deterministically
  merges worker span streams into one Chrome trace with **one lane per
  worker plus a coordinator lane** (virtual process
  :data:`WORKERS_PID`), and renders a utilization timeline plus a
  percentage breakdown for ``flexminer profile``.

Profiling is strictly opt-in and carries the same zero-drift guarantee
as the rest of ``repro.obs``: enabling it never changes mined counts,
op counters or simulated reports — a test pins this at every worker
count.  Disabled profilers (``enabled=False`` or the module-level
:data:`NULL_PROFILER`) cost one attribute check per call site.

Determinism contract for merged traces: event *names*, categories and
args are pure functions of the task set — never of worker ids, wall
time or scheduling order.  Worker identity lives only in the lane
(``tid``), which :func:`trace_event_set` strips, so the normalized
event set of a merged trace is identical across worker counts and
across repeated runs (timestamps aside).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from .trace import NULL_TRACER

__all__ = [
    "WORKERS_PID",
    "LaneRecorder",
    "NULL_PROFILER",
    "NullProfiler",
    "PhaseProfiler",
    "PhaseRecord",
    "event_key",
    "task_label",
    "trace_event_set",
]

#: Virtual trace process for the wall-clock worker lanes (pid 0 is the
#: host, pid 1 the accelerator's cycle domain — see ``repro.obs.trace``).
WORKERS_PID = 2

#: Span args whose values are timing-dependent; :func:`event_key` drops
#: them so normalized event sets stay run-invariant.
VOLATILE_ARGS = frozenset(
    {"seconds", "wall_ms", "busy_seconds", "queue_wait_seconds"}
)

#: One recorded worker span: (name, t0_s, t1_s, cat, args-or-None).
Span = Tuple[str, float, float, str, Optional[Dict[str, object]]]


def _peak_rss_kb() -> int:
    """Peak resident set size of this process in KiB (0 if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    import sys

    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return int(usage) // 1024
    return int(usage)


class LaneRecorder:
    """Span recorder for one worker process (picklable payload).

    Workers cannot hold the parent's tracer, so they append raw spans
    here and ship :attr:`spans` back over the result queue; the parent's
    :meth:`PhaseProfiler.add_lane` replays them into a trace lane.

    Also the one sanctioned wall-clock source inside ``engine/`` and
    ``hw/`` (fmlint FM206): busy/queue-wait accounting reads back out of
    the recorded spans via :meth:`total`, so timing cannot bypass the
    profile.

    ``clock`` injects an alternative monotonic clock (a zero-argument
    callable returning seconds).  Tests use a fake stepped clock to pin
    calibration arithmetic without depending on wall time on loaded CI
    boxes; only the recorded spans — never the recorder or its clock —
    cross process boundaries, so any callable works.
    """

    __slots__ = ("spans", "_clock")

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.spans: List[Span] = []
        self._clock = clock if clock is not None else time.perf_counter

    @contextmanager
    def span(self, name: str, *, cat: str = "lane", **args):
        """Record one wall-clock span around a ``with`` body."""
        t0 = self._clock()
        try:
            yield
        finally:
            self.spans.append(
                (name, t0, self._clock(), cat, dict(args) or None)
            )

    def total(self, cat: str) -> float:
        """Summed duration (seconds) of every span in category ``cat``."""
        return sum(t1 - t0 for _, t0, t1, c, _a in self.spans if c == cat)

    def count(self, cat: str) -> int:
        """Number of recorded spans in category ``cat``."""
        return sum(1 for s in self.spans if s[3] == cat)

    def durations(self, cat: str) -> List[float]:
        """Per-span durations (seconds) of category ``cat``, in order."""
        return [t1 - t0 for _, t0, t1, c, _a in self.spans if c == cat]

    def __len__(self) -> int:
        return len(self.spans)


def task_label(root: int, chunk: Optional[Tuple[int, int]] = None) -> str:
    """Deterministic span name for one (root, chunk) task unit."""
    if chunk is None:
        return f"task v{int(root)}"
    return f"task v{int(root)} [{int(chunk[0])}/{int(chunk[1])}]"


@dataclass
class PhaseRecord:
    """One completed profiler phase."""

    name: str
    start_s: float  #: seconds since profiler creation
    wall_s: float
    cpu_s: float
    peak_rss_kb: int
    depth: int  #: nesting depth (0 = top level, counted for coverage)
    args: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "peak_rss_kb": self.peak_rss_kb,
            "depth": self.depth,
        }
        if self.args:
            out["args"] = dict(self.args)
        return out


class NullProfiler:
    """Disabled profiler: every method is a no-op, ``enabled`` is False."""

    enabled = False
    tracer = NULL_TRACER

    @contextmanager
    def phase(self, name, **args):
        yield

    @contextmanager
    def lane_span(self, name, *, tid=0, cat="lane", **args):
        yield

    def init_lanes(self, workers, *, title="parallel workers") -> None:
        pass

    def add_lane(self, worker_id, spans) -> None:
        pass

    def phases(self) -> List[PhaseRecord]:
        return []

    def as_dict(self) -> Dict[str, object]:
        return {"enabled": False, "phases": []}

    def table(self) -> str:
        return "(profiling disabled)"

    def timeline(self, width: int = 60) -> str:
        return "(profiling disabled)"


NULL_PROFILER = NullProfiler()


class PhaseProfiler:
    """Parent-side phase attribution plus worker-lane trace merging.

    Parameters
    ----------
    tracer:
        Optional :class:`repro.obs.Tracer`.  When given, every phase is
        mirrored as a host span (pid 0) and worker lanes materialize on
        :data:`WORKERS_PID`, so one Chrome trace carries phases, lanes
        and — for the serial simulator — the cycle domain side by side.
    enabled:
        ``False`` keeps tracer spans flowing (so ``--trace`` works
        unchanged) but records no phases; pair with ``NULL_TRACER`` for
        a fully free profiler, or use :data:`NULL_PROFILER`.
    """

    def __init__(self, *, tracer=None, enabled: bool = True) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.enabled = enabled
        self._t0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self._phases: List[PhaseRecord] = []
        self._depth = 0
        self._lanes_ready = False

    # ------------------------------------------------------------------
    # Clocks
    # ------------------------------------------------------------------
    def elapsed_s(self) -> float:
        """Wall seconds since profiler creation."""
        return time.perf_counter() - self._t0

    def _ts_us(self, t_abs: float) -> float:
        """Map an absolute ``perf_counter`` stamp onto the trace clock."""
        if self.tracer.enabled:
            origin = getattr(self.tracer, "origin_s", None)
            if origin is not None:
                return max(0.0, (t_abs - origin) * 1e6)
        return max(0.0, (t_abs - self._t0) * 1e6)

    # ------------------------------------------------------------------
    # Phase attribution
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str, **args):
        """Attribute the ``with`` body to ``name`` (wall, CPU, RSS).

        Phases nest; only depth-0 phases count toward wall-time
        coverage, so wrapping a traced sub-step never double-books.
        Mirrored into the tracer as an ordinary host ``phase`` span.
        """
        traced = self.tracer.enabled
        if not self.enabled and not traced:
            yield
            return
        if traced:
            self.tracer.begin(
                name, self.tracer.now_us(), cat="phase", args=args or None
            )
        if not self.enabled:
            try:
                yield
            finally:
                self.tracer.end(name, self.tracer.now_us(), cat="phase")
            return
        depth = self._depth
        self._depth += 1
        start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield
        finally:
            wall = time.perf_counter() - start
            cpu = time.process_time() - cpu_start
            self._depth = depth
            self._phases.append(
                PhaseRecord(
                    name=name,
                    start_s=start - self._t0,
                    wall_s=wall,
                    cpu_s=cpu,
                    peak_rss_kb=_peak_rss_kb(),
                    depth=depth,
                    args=dict(args),
                )
            )
            if traced:
                self.tracer.end(name, self.tracer.now_us(), cat="phase")

    def phases(self) -> List[PhaseRecord]:
        """Completed phases in completion order."""
        return list(self._phases)

    # ------------------------------------------------------------------
    # Worker lanes
    # ------------------------------------------------------------------
    def init_lanes(
        self, workers: int, *, title: str = "parallel workers"
    ) -> None:
        """Name the coordinator lane and one lane per worker."""
        if not self.tracer.enabled:
            return
        if not self._lanes_ready:
            self.tracer.process_name(
                f"{title} (wall clock)", pid=WORKERS_PID
            )
            self.tracer.thread_name(
                "coordinator", pid=WORKERS_PID, tid=0
            )
            self._lanes_ready = True
        for worker_id in range(workers):
            self.tracer.thread_name(
                f"worker {worker_id}", pid=WORKERS_PID, tid=worker_id + 1
            )

    def add_lane(
        self, worker_id: int, spans: Optional[Iterable[Span]]
    ) -> None:
        """Replay one worker's recorded spans into its trace lane.

        Deterministic by construction: lane assignment depends only on
        ``worker_id`` and event content only on the spans themselves.
        """
        if not self.tracer.enabled or not spans:
            return
        tid = worker_id + 1
        for name, t0, t1, cat, args in spans:
            self.tracer.complete(
                name,
                self._ts_us(t0),
                max(0.0, (t1 - t0) * 1e6),
                pid=WORKERS_PID,
                tid=tid,
                cat=cat,
                args=args,
            )

    @contextmanager
    def lane_span(self, name: str, *, tid: int = 0, cat: str = "lane",
                  **args):
        """Wall-clock span on a worker-lane rail (default: coordinator)."""
        if not self.tracer.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.tracer.complete(
                name,
                self._ts_us(t0),
                max(0.0, (time.perf_counter() - t0) * 1e6),
                pid=WORKERS_PID,
                tid=tid,
                cat=cat,
                args=dict(args) or None,
            )

    # ------------------------------------------------------------------
    # Export / rendering
    # ------------------------------------------------------------------
    def coverage(self) -> float:
        """Fraction of elapsed wall time attributed to depth-0 phases."""
        total = self.elapsed_s()
        if total <= 0:
            return 1.0
        attributed = sum(
            p.wall_s for p in self._phases if p.depth == 0
        )
        return min(1.0, attributed / total)

    def as_dict(self) -> Dict[str, object]:
        """JSON-able profile payload for the run-report envelope."""
        return {
            "enabled": self.enabled,
            "total_wall_s": self.elapsed_s(),
            "total_cpu_s": time.process_time() - self._cpu0,
            "peak_rss_kb": _peak_rss_kb(),
            "coverage": self.coverage(),
            "phases": [p.as_dict() for p in self._phases],
        }

    def _aggregate(self) -> List[Tuple[str, int, float, float, int, int]]:
        """(name, calls, wall, cpu, rss, depth) rows, wall-descending."""
        rows: Dict[Tuple[int, str], List[float]] = {}
        for p in self._phases:
            row = rows.setdefault((p.depth, p.name), [0, 0.0, 0.0, 0])
            row[0] += 1
            row[1] += p.wall_s
            row[2] += p.cpu_s
            row[3] = max(row[3], p.peak_rss_kb)
        out = [
            (name, int(r[0]), r[1], r[2], int(r[3]), depth)
            for (depth, name), r in rows.items()
        ]
        out.sort(key=lambda row: (row[5], -row[2], row[0]))
        return out

    def table(self) -> str:
        """Percentage-breakdown phase table (``flexminer profile``)."""
        total = self.elapsed_s()
        lines = [
            f"{'phase':<28s}{'calls':>6s}{'wall ms':>12s}"
            f"{'cpu ms':>12s}{'% wall':>8s}{'rss KiB':>10s}"
        ]
        for name, calls, wall, cpu, rss, depth in self._aggregate():
            indent = "  " * depth
            pct = 100.0 * wall / total if total > 0 else 0.0
            lines.append(
                f"{indent + name:<28s}{calls:>6d}{wall * 1e3:>12.3f}"
                f"{cpu * 1e3:>12.3f}{pct:>7.1f}%{rss:>10d}"
            )
        lines.append(
            f"{'total':<28s}{'':>6s}{total * 1e3:>12.3f}"
            f"{(time.process_time() - self._cpu0) * 1e3:>12.3f}"
            f"{100.0 * self.coverage():>7.1f}%{_peak_rss_kb():>10d}"
        )
        return "\n".join(lines)

    def timeline(self, width: int = 60) -> str:
        """ASCII utilization timeline of the depth-0 phases."""
        total = self.elapsed_s()
        top = [p for p in self._phases if p.depth == 0]
        if not top or total <= 0:
            return "(no phases recorded)"
        name_w = max(len(p.name) for p in top)
        lines = []
        for p in sorted(top, key=lambda p: p.start_s):
            lo = int(round(width * p.start_s / total))
            hi = int(round(width * (p.start_s + p.wall_s) / total))
            hi = max(hi, lo + 1)
            bar = " " * lo + "#" * (hi - lo)
            lines.append(
                f"{p.name:<{name_w}s} |{bar:<{width}s}| "
                f"{p.wall_s * 1e3:.1f} ms"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Trace normalization (determinism tests and tooling)
# ----------------------------------------------------------------------
EventKey = Tuple[str, str, str, Tuple[Tuple[str, object], ...]]


def event_key(event: Dict[str, object]) -> EventKey:
    """Timing- and lane-independent identity of one trace event.

    Drops ``ts``/``dur`` (wall time), ``pid``/``tid`` (lane placement)
    and volatile args, keeping ``(name, ph, cat, args)`` — the parts
    that must be a pure function of the workload.
    """
    raw_args = event.get("args") or {}
    args = tuple(
        sorted(
            (k, v)
            for k, v in raw_args.items()  # type: ignore[union-attr]
            if k not in VOLATILE_ARGS
        )
    )
    return (
        str(event.get("name", "")),
        str(event.get("ph", "")),
        str(event.get("cat", "")),
        args,
    )


def trace_event_set(
    trace: Union[Dict[str, object], List[Dict[str, object]]],
    *,
    cats: Optional[Iterable[str]] = None,
) -> FrozenSet[EventKey]:
    """Normalized event set of an exported trace.

    Metadata (``M``) and counter (``C``) events are excluded — counter
    samples carry timing-dependent values by nature.  ``cats`` restricts
    to specific categories, e.g. ``("task",)`` for the worker-count-
    invariant per-task events.
    """
    if isinstance(trace, dict):
        events = trace.get("traceEvents", [])
    else:
        events = trace
    wanted = frozenset(cats) if cats is not None else None
    out = set()
    for event in events:  # type: ignore[union-attr]
        ph = event.get("ph")
        if ph in ("M", "C"):
            continue
        if wanted is not None and event.get("cat") not in wanted:
            continue
        out.add(event_key(event))
    return frozenset(out)
