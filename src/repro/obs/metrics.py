"""Metrics registry: labeled counters, gauges and histograms.

One process-wide (or per-component) :class:`MetricsRegistry` replaces
ad-hoc counter plumbing: any layer can mint a labeled instrument with
``registry.counter("sim.noc.requests", dataset="Mi")`` and the whole
state is exportable via :meth:`MetricsRegistry.snapshot` /
:meth:`MetricsRegistry.as_dict` for machine-readable run reports.

Overhead discipline: a registry built with ``enabled=False`` (or the
module-level :data:`NULL_REGISTRY`) hands out one shared null instrument
whose mutators are no-ops, so instrumented code pays a single attribute
call when observability is off.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
]

Number = Union[int, float]


def metric_key(name: str, labels: Mapping[str, object]) -> str:
    """Canonical ``name{k=v,...}`` identity of a labeled instrument."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count (events, requests, cache hits)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, object]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def get(self) -> Number:
        return self.value


class Gauge:
    """Point-in-time value (occupancy, load factor, last cycle count)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, object]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def add(self, amount: Number) -> None:
        self.value += amount

    def get(self) -> Number:
        return self.value


class Histogram:
    """Power-of-two bucketed distribution with running sum/min/max.

    Bucket ``i`` counts observations in ``(2**(i-1), 2**i]`` (bucket 0
    holds everything ``<= 1``), which is plenty for cycle counts and
    latencies while keeping the export tiny.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "count", "sum", "min", "max", "buckets")

    def __init__(self, name: str, labels: Mapping[str, object]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.count = 0
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: Number) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        bucket = int(value - 1).bit_length() if value > 1 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile from the power-of-two buckets.

        Walks the buckets in value order to the target rank and
        interpolates linearly inside the covering bucket's range, then
        clamps to the observed min/max (so small samples cannot report
        values outside what was actually seen).  Exact when a bucket
        holds one distinct value; otherwise within one octave.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0.0
        for bucket in sorted(self.buckets):
            n = self.buckets[bucket]
            lo = 0.0 if bucket == 0 else float(2 ** (bucket - 1))
            hi = 1.0 if bucket == 0 else float(2 ** bucket)
            if seen + n >= target:
                frac = (target - seen) / n if n else 0.0
                value = lo + frac * (hi - lo)
                break
            seen += n
        else:  # pragma: no cover - loop always covers count
            value = float(self.max or 0)
        if self.min is not None:
            value = max(value, float(self.min))
        if self.max is not None:
            value = min(value, float(self.max))
        return value

    def get(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class _NullInstrument:
    """Shared no-op stand-in for every instrument of a disabled registry."""

    kind = "null"
    __slots__ = ()
    name = ""
    labels: Dict[str, object] = {}

    def inc(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def add(self, amount: Number) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass

    def get(self) -> Number:
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Registry of labeled instruments with a snapshot/diff surface.

    Instruments are memoized by ``(name, labels)``: asking twice for the
    same counter returns the same object, so call sites never need to
    keep handles around.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Instrument minting
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: Mapping[str, object]):
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = metric_key(name, labels)
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, labels)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {key!r} already registered as {inst.kind}"
            )
        return inst

    def counter(self, name: str, **labels) -> Counter:
        """Get-or-create a monotonic counter."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get-or-create a gauge."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        """Get-or-create a histogram."""
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    # Bulk intake
    # ------------------------------------------------------------------
    def absorb(
        self,
        values: Mapping[str, object],
        *,
        prefix: str = "",
        **labels,
    ) -> None:
        """Set one gauge per numeric leaf of a (possibly nested) mapping.

        This is how existing ad-hoc counter bundles (``OpCounters``,
        ``SimReport.as_dict()``, component ``stats`` dataclasses) flow
        into the registry without per-field plumbing.  Non-numeric leaves
        and sequences are skipped.
        """
        if not self.enabled:
            return
        for name, value in values.items():
            if isinstance(value, Mapping):
                self.absorb(value, prefix=f"{prefix}{name}.", **labels)
            elif isinstance(value, bool):
                self.gauge(f"{prefix}{name}", **labels).set(int(value))
            elif isinstance(value, (int, float)):
                self.gauge(f"{prefix}{name}", **labels).set(value)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Flat ``{key: value}`` view (histograms export summary dicts)."""
        return {key: inst.get() for key, inst in self._instruments.items()}

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Full structured export including kinds, labels and buckets."""
        out: Dict[str, Dict[str, object]] = {}
        for key, inst in self._instruments.items():
            entry: Dict[str, object] = {
                "kind": inst.kind,
                "name": inst.name,
                "labels": dict(inst.labels),
                "value": inst.get(),
            }
            if isinstance(inst, Histogram):
                entry["buckets"] = dict(inst.buckets)
            out[key] = entry
        return out

    def diff(self, before: Mapping[str, object]) -> Dict[str, Number]:
        """Numeric deltas of the current snapshot against ``before``.

        Keys appearing on only one side use 0 for the missing value;
        histogram summaries (dict-valued) are skipped.
        """
        now = self.snapshot()
        out: Dict[str, Number] = {}
        for key in sorted(set(now) | set(before)):
            a = before.get(key, 0)
            b = now.get(key, 0)
            if isinstance(a, Mapping) or isinstance(b, Mapping):
                continue
            if b != a:
                out[key] = b - a
        return out

    def clear(self) -> None:
        self._instruments.clear()

    def __iter__(self) -> Iterator[str]:
        return iter(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)


#: Shared disabled registry: instrumented code paths default to this so
#: "observability off" costs one no-op method call.
NULL_REGISTRY = MetricsRegistry(enabled=False)
