"""Machine-readable run reports: write, load, render, diff.

Every run artifact (a ``flexminer sim/mine --emit-json`` report, a bench
harness cell, a ``flexminer verify`` mismatch report, a
``BENCH_summary.json``) shares one envelope::

    {"schema": "flexminer.run/1", "kind": "sim", "meta": {...}, "data": {...}}

so tooling — including ``flexminer stats`` — can flatten and compare any
two of them without knowing which layer produced them.  Perf trajectory
across PRs becomes ``flexminer stats old.json new.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Union

__all__ = [
    "SCHEMA",
    "DiffRow",
    "diff_reports",
    "flatten",
    "load_report",
    "make_report",
    "render_diff",
    "render_report",
    "write_report",
]

#: Envelope schema identifier; bump the suffix on breaking changes.
SCHEMA = "flexminer.run/1"

Scalar = Union[int, float, str, bool, None]


def make_report(
    kind: str,
    data: Mapping[str, object],
    *,
    meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Wrap a payload in the standard run-report envelope."""
    return {
        "schema": SCHEMA,
        "kind": kind,
        "meta": dict(meta or {}),
        "data": dict(data),
    }


def write_report(path: str, report: Mapping[str, object]) -> str:
    """Serialize a report (or any JSON-able mapping) to ``path``."""
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def load_report(path: str) -> Dict[str, object]:
    """Load a JSON report; raw (non-envelope) dicts are accepted too."""
    with open(path) as f:
        loaded = json.load(f)
    if not isinstance(loaded, dict):
        raise ValueError(f"{path}: expected a JSON object at top level")
    return loaded


def flatten(
    mapping: Mapping[str, object], *, prefix: str = ""
) -> Dict[str, Scalar]:
    """Dotted-key view of a nested mapping, scalar leaves only.

    Lists of scalars are exploded positionally (``counts.0``); other
    sequences are skipped.  The envelope's ``schema`` key is dropped so
    diffs compare payloads, not packaging.
    """
    out: Dict[str, Scalar] = {}
    for name, value in mapping.items():
        if prefix == "" and name == "schema":
            continue
        key = f"{prefix}{name}"
        if isinstance(value, Mapping):
            out.update(flatten(value, prefix=f"{key}."))
        elif isinstance(value, (list, tuple)):
            if all(isinstance(v, (int, float, str, bool)) for v in value):
                for i, v in enumerate(value):
                    out[f"{key}.{i}"] = v
        elif isinstance(value, (int, float, str, bool)) or value is None:
            out[key] = value
    return out


@dataclass(frozen=True)
class DiffRow:
    """One compared key between two flattened reports."""

    key: str
    before: Scalar
    after: Scalar

    @property
    def changed(self) -> bool:
        return self.before != self.after

    @property
    def delta(self) -> Optional[float]:
        if isinstance(self.before, (int, float)) and isinstance(
            self.after, (int, float)
        ):
            return self.after - self.before
        return None

    @property
    def ratio(self) -> Optional[float]:
        if (
            isinstance(self.before, (int, float))
            and isinstance(self.after, (int, float))
            and self.before
        ):
            return self.after / self.before
        return None


def diff_reports(
    before: Mapping[str, object], after: Mapping[str, object]
) -> List[DiffRow]:
    """Key-by-key comparison of two reports (flattened, sorted)."""
    a = flatten(before)
    b = flatten(after)
    return [
        DiffRow(key, a.get(key), b.get(key))
        for key in sorted(set(a) | set(b))
    ]


def _format_value(value: Scalar) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    return f"{value:.6g}"


def render_report(report: Mapping[str, object]) -> str:
    """Aligned ``key : value`` text rendering of one report."""
    flat = flatten(report)
    if not flat:
        return "(empty report)"
    width = max(len(k) for k in flat)
    return "\n".join(
        f"{key:<{width}s} : {_format_value(flat[key])}"
        for key in sorted(flat)
    )


def render_diff(rows: List[DiffRow], *, all_rows: bool = False) -> str:
    """Text table of a report diff; unchanged keys hidden by default."""
    shown = rows if all_rows else [r for r in rows if r.changed]
    if not shown:
        return "no differences"
    width = max(len(r.key) for r in shown)
    lines = []
    for row in shown:
        before = _format_value(row.before)
        after = _format_value(row.after)
        line = f"{row.key:<{width}s} : {before:>14s} -> {after:<14s}"
        if row.changed and row.ratio is not None:
            line += f" ({row.ratio:.3f}x)"
        lines.append(line)
    return "\n".join(lines)
