"""Bench trend tracking: an append-only history plus a regression gate.

``BENCH_engine.json`` / ``BENCH_sim.json`` capture one point in time;
nothing trends them.  This module adds the missing trajectory artifact:

* :func:`record_report` appends one JSONL line per timing cell of a
  bench report to ``BENCH_history.jsonl``, keyed by
  ``(cell, git sha, host)`` — append, never overwrite, so the file is a
  longitudinal log that survives reruns and merges trivially.
* :func:`compute_trends` compares each cell's newest sample on this
  host against the median of up to ``window`` prior samples.
* :func:`regressions` filters trends slower than a percentage
  threshold — the ``flexminer bench-trend`` exit-code gate (CI runs it
  report-only on PRs).

Cells are extracted generically: every flattened numeric key of the
report ending in ``seconds`` is one timing cell (``cells.4-CL_As.
kernel_seconds``, ``cell.4-CL_As.parallel.4.seconds``, …), so new bench
payload shapes trend automatically.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from .report import flatten

__all__ = [
    "DEFAULT_HISTORY",
    "DEFAULT_THRESHOLD_PCT",
    "DEFAULT_WINDOW",
    "CellTrend",
    "compute_trends",
    "current_host",
    "current_sha",
    "extract_cells",
    "load_history",
    "record_report",
    "regressions",
    "render_trends",
]

#: Default history location (committed alongside the seed BENCH jsons).
DEFAULT_HISTORY = os.path.join(
    "benchmarks", "results", "BENCH_history.jsonl"
)

#: A cell must slow down by more than this vs. its baseline to gate.
DEFAULT_THRESHOLD_PCT = 25.0

#: How many prior samples the per-cell baseline median draws from.
DEFAULT_WINDOW = 5


def current_sha(cwd: Optional[str] = None) -> str:
    """Short git sha of HEAD, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def current_host() -> str:
    return platform.node() or "unknown"


def extract_cells(report: Mapping[str, object]) -> Dict[str, float]:
    """Timing cells of a bench report: flattened ``*seconds`` leaves.

    The envelope's ``meta.*`` keys and non-positive values are skipped
    (a zero duration is a degenerate measurement, not a cell).
    """
    cells: Dict[str, float] = {}
    for key, value in flatten(report).items():
        if key.startswith("meta."):
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        leaf = key.rsplit(".", 1)[-1]
        if not leaf.endswith("seconds"):
            continue
        if value <= 0:
            continue
        cell = key[5:] if key.startswith("data.") else key
        cells[cell] = float(value)
    return cells


def record_report(
    history_path: str,
    report: Mapping[str, object],
    *,
    sha: Optional[str] = None,
    host: Optional[str] = None,
    timestamp: Optional[float] = None,
    source: Optional[str] = None,
) -> int:
    """Append one history line per timing cell; returns lines written.

    The file is opened in append mode — recording twice extends the
    trajectory rather than replacing it.
    """
    cells = extract_cells(report)
    if not cells:
        return 0
    entry_base = {
        "sha": sha if sha is not None else current_sha(),
        "host": host if host is not None else current_host(),
        "ts": timestamp if timestamp is not None else time.time(),
        "source": source
        if source is not None
        else str(report.get("kind", "unknown")),
    }
    parent = os.path.dirname(history_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(history_path, "a") as f:
        for cell in sorted(cells):
            line = dict(entry_base, cell=cell, seconds=cells[cell])
            f.write(json.dumps(line, sort_keys=True) + "\n")
    return len(cells)


def load_history(path: str) -> List[Dict[str, object]]:
    """Parse a JSONL history; malformed or foreign lines are skipped."""
    entries: List[Dict[str, object]] = []
    if not os.path.exists(path):
        return entries
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (
                isinstance(parsed, dict)
                and isinstance(parsed.get("cell"), str)
                and isinstance(parsed.get("seconds"), (int, float))
            ):
                entries.append(parsed)
    return entries


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass(frozen=True)
class CellTrend:
    """Latest sample of one cell vs. its recent-history baseline."""

    cell: str
    host: str
    latest: float
    latest_sha: str
    baseline: Optional[float]  #: median of prior window; None if first
    samples: int  #: prior samples the baseline summarizes

    @property
    def delta_pct(self) -> Optional[float]:
        if self.baseline is None or self.baseline <= 0:
            return None
        return 100.0 * (self.latest - self.baseline) / self.baseline

    def regressed(self, threshold_pct: float) -> bool:
        delta = self.delta_pct
        return delta is not None and delta > threshold_pct

    def as_dict(self) -> Dict[str, object]:
        return {
            "cell": self.cell,
            "host": self.host,
            "latest_seconds": self.latest,
            "latest_sha": self.latest_sha,
            "baseline_seconds": self.baseline,
            "baseline_samples": self.samples,
            "delta_pct": self.delta_pct,
        }


def compute_trends(
    entries: List[Dict[str, object]],
    *,
    window: int = DEFAULT_WINDOW,
    host: Optional[str] = None,
) -> List[CellTrend]:
    """Per-cell trend of the newest sample vs. up to ``window`` priors.

    Samples are grouped by ``(cell, host)`` — wall-clock numbers from
    different machines never compare against each other.  ``host``
    restricts the result to one machine (default: every host that has a
    newest sample).  File order is chronological (append-only log), so
    the last entry per group is the newest.
    """
    groups: Dict[tuple, List[Dict[str, object]]] = {}
    for entry in entries:
        key = (str(entry["cell"]), str(entry.get("host", "unknown")))
        groups.setdefault(key, []).append(entry)
    trends: List[CellTrend] = []
    for (cell, entry_host), samples in sorted(groups.items()):
        if host is not None and entry_host != host:
            continue
        latest = samples[-1]
        prior = samples[:-1][-window:] if window > 0 else samples[:-1]
        baseline = (
            _median([float(e["seconds"]) for e in prior])
            if prior
            else None
        )
        trends.append(
            CellTrend(
                cell=cell,
                host=entry_host,
                latest=float(latest["seconds"]),
                latest_sha=str(latest.get("sha", "unknown")),
                baseline=baseline,
                samples=len(prior),
            )
        )
    return trends


def regressions(
    trends: List[CellTrend],
    *,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> List[CellTrend]:
    """Trends slower than ``threshold_pct`` vs. their baseline."""
    return [t for t in trends if t.regressed(threshold_pct)]


def render_trends(
    trends: List[CellTrend],
    *,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> str:
    """Text table of cell trends; regressions are flagged inline."""
    if not trends:
        return "bench-trend: no history"
    width = max(len(t.cell) for t in trends)
    lines = [
        f"{'cell':<{width}s}{'latest ms':>12s}{'base ms':>12s}"
        f"{'delta':>9s}{'n':>4s}  host"
    ]
    for t in trends:
        delta = t.delta_pct
        if delta is None:
            delta_text = "new"
        else:
            delta_text = f"{delta:+.1f}%"
        flag = " <-- REGRESSION" if t.regressed(threshold_pct) else ""
        base = f"{t.baseline * 1e3:.3f}" if t.baseline is not None else "-"
        lines.append(
            f"{t.cell:<{width}s}{t.latest * 1e3:>12.3f}{base:>12s}"
            f"{delta_text:>9s}{t.samples:>4d}  {t.host}{flag}"
        )
    return "\n".join(lines)
