"""Observability layer: metrics, event tracing, run reports, logging.

Cross-cutting substrate the engines, the cycle-level simulator and the
bench harness all report through:

* :mod:`repro.obs.metrics` — labeled counter/gauge/histogram registry
  with snapshot/diff export (``NULL_REGISTRY`` when disabled);
* :mod:`repro.obs.trace` — Chrome trace-event tracer (Perfetto /
  ``chrome://tracing`` compatible) with host wall-clock and simulator
  cycle-domain processes;
* :mod:`repro.obs.report` — machine-readable run-report envelope plus
  flatten/diff/render helpers (the ``flexminer stats`` backend);
* :mod:`repro.obs.log` — ``repro.*`` debug log channel driven by the
  ``REPRO_LOG`` environment variable;
* :mod:`repro.obs.prof` — cross-process profiling: phase attribution
  (wall/CPU/RSS) plus worker trace lanes merged into one Chrome trace
  (the ``flexminer profile`` backend, ``NULL_PROFILER`` when disabled);
* :mod:`repro.obs.trend` — append-only ``BENCH_history.jsonl`` recorder
  and the ``flexminer bench-trend`` regression gate.
"""

from .log import ENV_VAR, configure, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from .prof import (
    LaneRecorder,
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    PhaseRecord,
    WORKERS_PID,
    event_key,
    trace_event_set,
)
from .report import (
    SCHEMA,
    DiffRow,
    diff_reports,
    flatten,
    load_report,
    make_report,
    render_diff,
    render_report,
    write_report,
)
from .trace import (
    HOST_PID,
    NULL_TRACER,
    NullTracer,
    SIM_PID,
    Tracer,
    validate_trace,
)
from .trend import (
    CellTrend,
    compute_trends,
    extract_cells,
    load_history,
    record_report,
    regressions,
    render_trends,
)

__all__ = [
    "ENV_VAR",
    "configure",
    "get_logger",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "SCHEMA",
    "DiffRow",
    "diff_reports",
    "flatten",
    "load_report",
    "make_report",
    "render_diff",
    "render_report",
    "write_report",
    "HOST_PID",
    "SIM_PID",
    "NullTracer",
    "NULL_TRACER",
    "Tracer",
    "validate_trace",
    "WORKERS_PID",
    "LaneRecorder",
    "NULL_PROFILER",
    "NullProfiler",
    "PhaseProfiler",
    "PhaseRecord",
    "event_key",
    "trace_event_set",
    "CellTrend",
    "compute_trends",
    "extract_cells",
    "load_history",
    "record_report",
    "regressions",
    "render_trends",
]
