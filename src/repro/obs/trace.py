"""Structured event tracer emitting Chrome trace-event JSON.

The exported file loads directly in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``.  Two virtual processes keep the repo's two time
domains apart:

* **pid 0 (host)** — wall-clock phases (graph load, compile, mine,
  simulate) in real microseconds since tracer creation;
* **pid 1 (accelerator)** — cycle-domain events from the simulator,
  with one trace *thread* per PE: task spans, stall/set-op/c-map
  intervals, sampled NoC/DRAM/L2 counter tracks, c-map overflow
  instants.  One simulated cycle is displayed as one microsecond.

Overhead discipline mirrors the metrics registry: hot paths hold either
``None`` or a real tracer and guard with one ``is not None`` check, and
the module-level :data:`NULL_TRACER` offers no-op structural parity for
code that wants unconditional calls.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, List, Mapping, Optional, Union

__all__ = [
    "HOST_PID",
    "SIM_PID",
    "NullTracer",
    "NULL_TRACER",
    "Tracer",
    "validate_trace",
]

#: Virtual process ids for the two time domains.
HOST_PID = 0
SIM_PID = 1

Number = Union[int, float]


class NullTracer:
    """Disabled tracer: every emission is a no-op, ``enabled`` is False."""

    enabled = False
    dropped = 0
    origin_s = 0.0

    def begin(self, name, ts, **kwargs) -> None:
        pass

    def end(self, name, ts, **kwargs) -> None:
        pass

    def complete(self, name, ts, dur, **kwargs) -> None:
        pass

    def instant(self, name, ts, **kwargs) -> None:
        pass

    def counter(self, name, ts, values, **kwargs) -> None:
        pass

    def process_name(self, name, *, pid) -> None:
        pass

    def thread_name(self, name, *, pid, tid) -> None:
        pass

    def now_us(self) -> float:
        return 0.0

    @contextmanager
    def span(self, name, **kwargs):
        yield

    def events(self) -> List[dict]:
        return []

    def to_dict(self) -> dict:
        return {"traceEvents": []}

    def write(self, path: str) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """In-memory Chrome trace-event builder.

    Parameters
    ----------
    max_events:
        Hard cap on buffered events; excess emissions are counted in
        :attr:`dropped` instead of growing without bound (a runaway sim
        should degrade the trace, not the machine).
    """

    enabled = True

    def __init__(self, *, max_events: int = 1_000_000) -> None:
        self.max_events = max_events
        self.dropped = 0
        self._events: List[dict] = []
        self._meta: List[dict] = []
        self._t0 = time.perf_counter()

    @property
    def origin_s(self) -> float:
        """Absolute ``perf_counter`` stamp of the tracer's time zero.

        Lets cross-process span streams (``repro.obs.prof``) map their
        absolute timestamps onto this tracer's timeline.
        """
        return self._t0

    # ------------------------------------------------------------------
    # Clocks
    # ------------------------------------------------------------------
    def now_us(self) -> float:
        """Host wall-clock microseconds since tracer creation."""
        return (time.perf_counter() - self._t0) * 1e6

    # ------------------------------------------------------------------
    # Emission primitives (ts is caller-supplied: wall µs or cycles)
    # ------------------------------------------------------------------
    def _emit(self, event: dict) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(event)

    def begin(
        self,
        name: str,
        ts: Number,
        *,
        pid: int = HOST_PID,
        tid: int = 0,
        cat: str = "span",
        args: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Open a duration span (pair with :meth:`end` on the same tid)."""
        event = {
            "name": name, "cat": cat, "ph": "B",
            "ts": float(ts), "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        self._emit(event)

    def end(
        self,
        name: str,
        ts: Number,
        *,
        pid: int = HOST_PID,
        tid: int = 0,
        cat: str = "span",
    ) -> None:
        """Close the innermost open span of this (pid, tid)."""
        self._emit({
            "name": name, "cat": cat, "ph": "E",
            "ts": float(ts), "pid": pid, "tid": tid,
        })

    def complete(
        self,
        name: str,
        ts: Number,
        dur: Number,
        *,
        pid: int = HOST_PID,
        tid: int = 0,
        cat: str = "span",
        args: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Self-contained interval (``ph: X``): start ``ts``, length ``dur``."""
        event = {
            "name": name, "cat": cat, "ph": "X",
            "ts": float(ts), "dur": float(dur), "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        self._emit(event)

    def instant(
        self,
        name: str,
        ts: Number,
        *,
        pid: int = HOST_PID,
        tid: int = 0,
        cat: str = "event",
        args: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Zero-duration marker (c-map overflow, schedule milestones)."""
        event = {
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": float(ts), "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        self._emit(event)

    def counter(
        self,
        name: str,
        ts: Number,
        values: Mapping[str, Number],
        *,
        pid: int = HOST_PID,
        tid: int = 0,
    ) -> None:
        """Counter track sample (``ph: C``) — NoC/DRAM/L2 time series."""
        self._emit({
            "name": name, "ph": "C", "ts": float(ts),
            "pid": pid, "tid": tid, "args": dict(values),
        })

    # ------------------------------------------------------------------
    # Metadata (names shown by the viewer's process/thread rails)
    # ------------------------------------------------------------------
    def process_name(self, name: str, *, pid: int) -> None:
        self._meta.append({
            "name": "process_name", "ph": "M", "ts": 0.0,
            "pid": pid, "tid": 0, "args": {"name": name},
        })

    def thread_name(self, name: str, *, pid: int, tid: int) -> None:
        self._meta.append({
            "name": "thread_name", "ph": "M", "ts": 0.0,
            "pid": pid, "tid": tid, "args": {"name": name},
        })

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @contextmanager
    def span(
        self,
        name: str,
        *,
        pid: int = HOST_PID,
        tid: int = 0,
        cat: str = "phase",
        **args,
    ):
        """Wall-clock begin/end span around a ``with`` body."""
        self.begin(name, self.now_us(), pid=pid, tid=tid, cat=cat,
                   args=args or None)
        try:
            yield self
        finally:
            self.end(name, self.now_us(), pid=pid, tid=tid, cat=cat)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def events(self) -> List[dict]:
        """Metadata first, then all events stably sorted by timestamp.

        The stable sort makes timestamps globally monotonic (PE-local
        clocks are not ordered across PEs) while preserving begin-before-
        end order for same-timestamp span pairs.
        """
        return list(self._meta) + sorted(
            self._events, key=lambda e: e["ts"]
        )

    def to_dict(self) -> dict:
        return {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "tool": "flexminer",
                "dropped_events": self.dropped,
            },
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: str) -> None:
        """Serialize to a Chrome trace-event JSON file."""
        with open(path, "w") as f:
            json.dump(self.to_dict(), f)

    def __len__(self) -> int:
        return len(self._events) + len(self._meta)


def validate_trace(trace: Union[dict, List[dict]]) -> List[str]:
    """Structural well-formedness check for an exported trace.

    Returns a list of problems (empty means valid): non-monotonic or
    negative timestamps, ``E`` events without a matching ``B``, spans
    left open at end of trace, and events missing required fields.
    """
    events = trace.get("traceEvents", []) if isinstance(trace, dict) else trace
    problems: List[str] = []
    last_ts: Optional[float] = None
    stacks: Dict[tuple, List[str]] = {}
    for i, event in enumerate(events):
        phase = event.get("ph")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event {i}: non-monotonic ts {ts} after {last_ts}"
            )
        last_ts = ts
        key = (event.get("pid"), event.get("tid"))
        if phase == "B":
            stacks.setdefault(key, []).append(event.get("name", ""))
        elif phase == "E":
            stack = stacks.get(key)
            if not stack:
                problems.append(
                    f"event {i}: E {event.get('name')!r} with no open span"
                )
            else:
                opened = stack.pop()
                if opened != event.get("name"):
                    problems.append(
                        f"event {i}: E {event.get('name')!r} closes "
                        f"B {opened!r}"
                    )
        elif phase == "X" and "dur" not in event:
            problems.append(f"event {i}: X without dur")
    for key, stack in stacks.items():
        for name in stack:
            problems.append(f"span {name!r} on {key} never closed")
    return problems
