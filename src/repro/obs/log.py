"""Debug log channel: stdlib ``logging`` under the ``repro.*`` namespace.

Library code stays silent by default (records propagate to the root
logger at WARNING, the stdlib default).  Setting the ``REPRO_LOG``
environment variable — e.g. ``REPRO_LOG=debug`` — attaches a stderr
handler to the ``repro`` logger with a compact format and the requested
level, turning on the progress/diagnostic channel for dataset builds,
bench sweeps, telemetry writes and the like without touching any call
site.
"""

from __future__ import annotations

import logging
import os
from typing import Optional, Union

__all__ = ["ENV_VAR", "configure", "get_logger"]

#: Environment variable naming the desired level (debug/info/warning/...).
ENV_VAR = "REPRO_LOG"

_configured = False


def _coerce_level(level: Union[str, int]) -> int:
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(level.strip().upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}")
    return resolved


def configure(
    level: Optional[Union[str, int]] = None, *, force: bool = False
) -> logging.Logger:
    """Configure the ``repro`` logger once; returns it.

    With no explicit ``level`` the ``REPRO_LOG`` environment variable is
    consulted; when that is unset too, nothing is attached and records
    simply propagate (silent-by-default library behaviour).  ``force``
    reapplies configuration (tests).
    """
    global _configured
    logger = logging.getLogger("repro")
    if _configured and not force:
        return logger
    _configured = True
    if level is None:
        level = os.environ.get(ENV_VAR)
    if level is None:
        return logger
    logger.setLevel(_coerce_level(level))
    if not any(
        isinstance(h, logging.StreamHandler) for h in logger.handlers
    ):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s %(name)s %(levelname).1s %(message)s",
                "%H:%M:%S",
            )
        )
        logger.addHandler(handler)
    return logger


def get_logger(name: str) -> logging.Logger:
    """Namespaced logger (``repro.<name>``), configuring lazily."""
    configure()
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
