"""Named patterns used throughout the paper.

Includes the evaluation patterns (triangle, k-cliques, 4-cycle, diamond)
plus the remaining 3- and 4-vertex motifs of Fig. 3 and a few larger
patterns used in examples and stress tests.
"""

from __future__ import annotations

from ..errors import PatternError
from .pattern import Pattern

__all__ = [
    "edge",
    "wedge",
    "triangle",
    "k_clique",
    "path",
    "star",
    "cycle",
    "four_cycle",
    "diamond",
    "tailed_triangle",
    "four_clique",
    "five_clique",
    "house",
    "from_name",
    "PATTERN_NAMES",
]


def edge() -> Pattern:
    """Single edge (the 2-clique)."""
    return Pattern(2, [(0, 1)], name="edge")


def wedge() -> Pattern:
    """Path of three vertices (open triangle)."""
    return Pattern(3, [(0, 1), (1, 2)], name="wedge")


def triangle() -> Pattern:
    """3-clique, the TC pattern."""
    return Pattern(3, [(0, 1), (0, 2), (1, 2)], name="triangle")


def k_clique(k: int) -> Pattern:
    """Complete graph on k vertices (the k-CL pattern)."""
    if k < 2:
        raise PatternError("k-clique needs k >= 2")
    edges = [(u, v) for u in range(k) for v in range(u + 1, k)]
    return Pattern(k, edges, name=f"{k}-clique")


def path(k: int) -> Pattern:
    """Simple path on k vertices."""
    if k < 2:
        raise PatternError("path needs k >= 2")
    return Pattern(k, [(i, i + 1) for i in range(k - 1)], name=f"{k}-path")


def star(leaves: int) -> Pattern:
    """Star with the given number of leaves (leaves+1 vertices)."""
    if leaves < 1:
        raise PatternError("star needs at least one leaf")
    return Pattern(
        leaves + 1, [(0, i) for i in range(1, leaves + 1)],
        name=f"{leaves}-star",
    )


def cycle(k: int) -> Pattern:
    """Simple cycle on k >= 3 vertices."""
    if k < 3:
        raise PatternError("cycle needs k >= 3")
    edges = [(i, (i + 1) % k) for i in range(k)]
    return Pattern(k, edges, name=f"{k}-cycle")


def four_cycle() -> Pattern:
    """The 4-cycle, the paper's running example (Fig. 4, Listing 1)."""
    return cycle(4)


def diamond() -> Pattern:
    """4-clique minus one edge (Fig. 11b)."""
    return Pattern(
        4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)], name="diamond"
    )


def tailed_triangle() -> Pattern:
    """Triangle with a pendant edge (Fig. 11c)."""
    return Pattern(4, [(0, 1), (0, 2), (1, 2), (2, 3)], name="tailed-triangle")


def four_clique() -> Pattern:
    return k_clique(4)


def five_clique() -> Pattern:
    return k_clique(5)


def house() -> Pattern:
    """5-vertex 'house': a 4-cycle with a triangle roof."""
    return Pattern(
        5,
        [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)],
        name="house",
    )


_FACTORIES = {
    "edge": edge,
    "wedge": wedge,
    "triangle": triangle,
    "4-cycle": four_cycle,
    "diamond": diamond,
    "tailed-triangle": tailed_triangle,
    "4-clique": four_clique,
    "5-clique": five_clique,
    "house": house,
    "4-path": lambda: path(4),
    "3-star": lambda: star(3),
    "5-cycle": lambda: cycle(5),
}

PATTERN_NAMES = tuple(sorted(_FACTORIES))


def from_name(name: str) -> Pattern:
    """Look up a named pattern; also parses ``"<k>-clique"`` for any k."""
    if name in _FACTORIES:
        return _FACTORIES[name]()
    if name.endswith("-clique"):
        try:
            return k_clique(int(name.split("-", 1)[0]))
        except ValueError:
            pass
    raise PatternError(
        f"unknown pattern {name!r}; known: {', '.join(PATTERN_NAMES)}"
    )
