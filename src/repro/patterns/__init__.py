"""Pattern substrate: pattern graphs, the named library, isomorphism, motifs."""

from .pattern import Pattern
from .library import (
    PATTERN_NAMES,
    cycle,
    diamond,
    edge,
    four_clique,
    four_cycle,
    five_clique,
    from_name,
    house,
    k_clique,
    path,
    star,
    tailed_triangle,
    triangle,
    wedge,
)
from .isomorphism import (
    are_isomorphic,
    brute_force_count,
    brute_force_embeddings,
    classify_motif,
    find_isomorphism,
    matches_on_vertex_set,
)
from .motifs import NUM_MOTIFS, enumerate_motifs, motif_names

__all__ = [
    "Pattern",
    "PATTERN_NAMES",
    "edge",
    "wedge",
    "triangle",
    "k_clique",
    "path",
    "star",
    "cycle",
    "four_cycle",
    "diamond",
    "tailed_triangle",
    "four_clique",
    "five_clique",
    "house",
    "from_name",
    "are_isomorphic",
    "find_isomorphism",
    "classify_motif",
    "brute_force_count",
    "brute_force_embeddings",
    "matches_on_vertex_set",
    "NUM_MOTIFS",
    "enumerate_motifs",
    "motif_names",
]
