"""Pattern (query graph) representation.

A pattern is a small connected undirected graph on vertices ``0..k-1``
(paper §II-A).  Patterns stay tiny (k <= ~9), so this class favours
clarity over asymptotics: adjacency is a tuple of frozensets and the
automorphism group is found by checking all k! permutations.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import PatternError

__all__ = ["Pattern"]

Edge = Tuple[int, int]
Permutation = Tuple[int, ...]


class Pattern:
    """An immutable small undirected graph used as a mining query.

    Parameters
    ----------
    num_vertices:
        Number of pattern vertices; vertices are ``0..num_vertices-1``.
    edges:
        Iterable of (u, v) pairs.  Order and duplicates don't matter;
        self loops are rejected.
    name:
        Optional human-readable name (``"triangle"``, ``"4-cycle"``, ...).
    """

    __slots__ = ("_n", "_adj", "_edges", "_name", "_autos", "_labels")

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[Edge],
        *,
        name: str = "",
        labels: Optional[Sequence[Optional[int]]] = None,
    ) -> None:
        if num_vertices < 1:
            raise PatternError("pattern needs at least one vertex")
        adj: List[set] = [set() for _ in range(num_vertices)]
        canonical_edges = set()
        for u, v in edges:
            if u == v:
                raise PatternError(f"self loop at pattern vertex {u}")
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise PatternError(
                    f"edge ({u}, {v}) out of range for {num_vertices} vertices"
                )
            adj[u].add(v)
            adj[v].add(u)
            canonical_edges.add((min(u, v), max(u, v)))
        self._n = num_vertices
        self._adj: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(s) for s in adj
        )
        self._edges: Tuple[Edge, ...] = tuple(sorted(canonical_edges))
        self._name = name
        self._autos: List[Permutation] | None = None
        if labels is None:
            self._labels: Tuple[Optional[int], ...] = (None,) * num_vertices
        else:
            labels = tuple(labels)
            if len(labels) != num_vertices:
                raise PatternError(
                    f"{len(labels)} labels for {num_vertices} vertices"
                )
            for lab in labels:
                if lab is not None and (not isinstance(lab, int) or lab < 0):
                    raise PatternError("labels must be None or ints >= 0")
            self._labels = labels

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """Edges as sorted (u, v) pairs with u < v."""
        return self._edges

    def neighbors(self, u: int) -> FrozenSet[int]:
        return self._adj[u]

    def degree(self, u: int) -> int:
        return len(self._adj[u])

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u]

    def vertices(self) -> range:
        return range(self._n)

    @property
    def labels(self) -> Tuple[Optional[int], ...]:
        """Per-vertex label constraints; ``None`` entries are wildcards."""
        return self._labels

    @property
    def is_labeled(self) -> bool:
        return any(lab is not None for lab in self._labels)

    def label(self, u: int) -> Optional[int]:
        return self._labels[u]

    # ------------------------------------------------------------------
    # Structure predicates
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        if self._n == 1:
            return True
        seen = {0}
        frontier = [0]
        while frontier:
            u = frontier.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) == self._n

    def is_clique(self) -> bool:
        return self.num_edges == self._n * (self._n - 1) // 2

    # ------------------------------------------------------------------
    # Isomorphism machinery
    # ------------------------------------------------------------------
    def adjacency_bits(self, perm: Sequence[int] | None = None) -> int:
        """Upper-triangular adjacency matrix packed into an int.

        Bit (i, j), i < j, is set when ``perm[i]`` and ``perm[j]`` are
        adjacent.  With ``perm=None`` the identity labelling is used.
        Used for canonical forms and fast permutation checks.
        """
        perm = tuple(perm) if perm is not None else tuple(range(self._n))
        bits = 0
        k = 0
        for i in range(self._n):
            for j in range(i + 1, self._n):
                if perm[j] in self._adj[perm[i]]:
                    bits |= 1 << k
                k += 1
        return bits

    def canonical_form(self):
        """Canonical key under vertex permutation.

        Unlabeled patterns return the smallest ``adjacency_bits`` (an
        int, as motif enumeration expects); labeled patterns return the
        lexicographically smallest ``(bits, label-vector)`` pair.  Two
        patterns are isomorphic iff their vertex counts and canonical
        forms agree.
        """
        if not self.is_labeled:
            return min(
                self.adjacency_bits(perm)
                for perm in itertools.permutations(range(self._n))
            )
        encoded = [
            -1 if lab is None else lab for lab in self._labels
        ]
        return min(
            (
                self.adjacency_bits(perm),
                tuple(encoded[perm[i]] for i in range(self._n)),
            )
            for perm in itertools.permutations(range(self._n))
        )

    def automorphisms(self) -> List[Permutation]:
        """All permutations that map the pattern onto itself.

        The identity is always included.  Degree-sequence pruning keeps
        this fast for the pattern sizes GPM uses; the result is cached
        (the compiler scores many matching orders against it).
        """
        if self._autos is not None:
            return list(self._autos)
        base = self.adjacency_bits()
        degrees = [self.degree(u) for u in self.vertices()]
        # Automorphisms must preserve labels too: breaking symmetry
        # between differently labeled vertices would drop valid matches.
        candidates: List[List[int]] = [
            [
                v
                for v in self.vertices()
                if degrees[v] == degrees[u]
                and self._labels[v] == self._labels[u]
            ]
            for u in self.vertices()
        ]
        result: List[Permutation] = []

        def backtrack(mapping: List[int], used: List[bool]) -> None:
            u = len(mapping)
            if u == self._n:
                perm = tuple(mapping)
                if self.adjacency_bits(perm) == base:
                    result.append(perm)
                return
            for v in candidates[u]:
                if used[v]:
                    continue
                # Partial consistency: edges between u and mapped prefix
                # must be preserved.
                ok = all(
                    (w in self._adj[u]) == (mapping[w] in self._adj[v])
                    for w in range(u)
                )
                if ok:
                    mapping.append(v)
                    used[v] = True
                    backtrack(mapping, used)
                    mapping.pop()
                    used[v] = False

        backtrack([], [False] * self._n)
        self._autos = result
        return list(result)

    def relabel(self, perm: Sequence[int]) -> "Pattern":
        """Return the pattern with vertex u renamed to ``perm[u]``."""
        if sorted(perm) != list(range(self._n)):
            raise PatternError("relabel requires a permutation of vertices")
        edges = [(perm[u], perm[v]) for u, v in self._edges]
        labels: List[Optional[int]] = [None] * self._n
        for u in self.vertices():
            labels[perm[u]] = self._labels[u]
        return Pattern(
            self._n,
            edges,
            name=self._name,
            labels=labels if self.is_labeled else None,
        )

    def with_labels(self, labels: Sequence[Optional[int]]) -> "Pattern":
        """Copy of this pattern with the given per-vertex labels."""
        return Pattern(self._n, self._edges, name=self._name, labels=labels)

    def induced_subpattern(self, vertices: Sequence[int]) -> "Pattern":
        """Induced subgraph on the given vertices, relabelled to 0..m-1."""
        index = {v: i for i, v in enumerate(vertices)}
        edges = [
            (index[u], index[v])
            for u, v in self._edges
            if u in index and v in index
        ]
        labels = [self._labels[v] for v in vertices]
        return Pattern(
            len(vertices),
            edges,
            labels=labels if self.is_labeled else None,
        )

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.vertices())
        g.add_edges_from(self._edges)
        return g

    @classmethod
    def from_networkx(cls, g, *, name: str = "") -> "Pattern":
        mapping = {node: i for i, node in enumerate(sorted(g.nodes()))}
        edges = [(mapping[u], mapping[v]) for u, v in g.edges()]
        return cls(g.number_of_nodes(), edges, name=name)

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Identifier equality (vertex count, edge set, labels) — not
        isomorphism."""
        if not isinstance(other, Pattern):
            return NotImplemented
        return (
            self._n == other._n
            and self._edges == other._edges
            and self._labels == other._labels
        )

    def __hash__(self) -> int:
        return hash((self._n, self._edges, self._labels))

    def __iter__(self) -> Iterator[int]:
        return iter(self.vertices())

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"Pattern({self._n} vertices, {self.num_edges} edges{label})"
