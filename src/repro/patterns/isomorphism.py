"""Graph/subgraph isomorphism utilities.

Two distinct consumers:

* the **pattern-oblivious baseline** (paper §III, Gramer-style) must test
  every enumerated k-vertex subgraph against the query pattern — exactly
  the cost pattern-aware systems avoid;
* **k-motif counting** must classify each vertex-induced subgraph into its
  motif class.

Patterns are tiny so the matcher is a straightforward backtracking VF2
variant with degree pruning.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from .pattern import Pattern

__all__ = [
    "are_isomorphic",
    "find_isomorphism",
    "classify_motif",
    "brute_force_count",
    "brute_force_embeddings",
    "matches_on_vertex_set",
]


def are_isomorphic(p: Pattern, q: Pattern) -> bool:
    """True when p and q are isomorphic graphs."""
    return find_isomorphism(p, q) is not None


def _labels_compatible(a: Optional[int], b: Optional[int]) -> bool:
    """Wildcard-tolerant label match (``None`` matches anything)."""
    return a is None or b is None or a == b


def find_isomorphism(p: Pattern, q: Pattern) -> Optional[Tuple[int, ...]]:
    """Find a vertex bijection mapping p onto q, or None.

    Returns ``perm`` with ``perm[u_p] = u_q`` such that edges map exactly
    (both presence and absence — graph isomorphism, not sub-isomorphism).
    Labels must be pairwise compatible; ``None`` acts as a wildcard on
    either side.
    """
    if p.num_vertices != q.num_vertices or p.num_edges != q.num_edges:
        return None
    if sorted(p.degree(u) for u in p) != sorted(q.degree(u) for u in q):
        return None

    n = p.num_vertices
    candidates: List[List[int]] = [
        [
            v
            for v in q
            if q.degree(v) == p.degree(u)
            and _labels_compatible(p.label(u), q.label(v))
        ]
        for u in p
    ]

    mapping: List[int] = []
    used = [False] * n

    def backtrack() -> bool:
        u = len(mapping)
        if u == n:
            return True
        for v in candidates[u]:
            if used[v]:
                continue
            if all(
                (w in p.neighbors(u)) == (mapping[w] in q.neighbors(v))
                for w in range(u)
            ):
                mapping.append(v)
                used[v] = True
                if backtrack():
                    return True
                mapping.pop()
                used[v] = False
        return False

    return tuple(mapping) if backtrack() else None


def classify_motif(
    subject: Pattern, motifs: Sequence[Pattern]
) -> Optional[int]:
    """Index of the motif isomorphic to ``subject``, or None.

    Uses canonical forms so repeated classification against the same motif
    list is cheap (the caller should cache motif canonical forms if it is
    on a hot path; the oblivious engine does).
    """
    key = (subject.num_vertices, subject.canonical_form())
    for i, motif in enumerate(motifs):
        if key == (motif.num_vertices, motif.canonical_form()):
            return i
    return None


# ----------------------------------------------------------------------
# Brute-force ground truth (tests and tiny inputs only)
# ----------------------------------------------------------------------
def brute_force_embeddings(graph, pattern: Pattern, *, induced: bool):
    """All distinct matches of the pattern in the data graph.

    Matches follow the paper's semantics (§II-A): *completeness* (every
    match found) and *uniqueness* (each distinct match once).  A distinct
    match is an equivalence class of injective mappings
    pattern→data-graph under the pattern's (label-preserving)
    automorphism group — exactly what symmetry breaking enumerates one
    representative of.  For unlabeled and exactly-labeled patterns this
    coincides with the familiar counts: distinct vertex sets for
    ``induced=True`` (k-MC), distinct edge-set images for
    ``induced=False`` (edge-induced SL; e.g. K4 holds six diamonds).
    Wildcard labels can place several distinct matches on one vertex
    set.

    Returns one representative per class as a tuple of data vertices
    indexed by pattern vertex.  ``graph`` may be a CSRGraph or a
    LabeledGraph.  Exponential in ``graph.num_vertices`` — ground truth
    for tiny graphs only.
    """
    k = pattern.num_vertices
    automorphisms = pattern.automorphisms()
    matches: List[Tuple[int, ...]] = []
    for combo in itertools.combinations(range(graph.num_vertices), k):
        matches.extend(
            matches_on_vertex_set(
                graph,
                pattern,
                combo,
                induced=induced,
                automorphisms=automorphisms,
            )
        )
    return sorted(matches)


def matches_on_vertex_set(
    graph,
    pattern: Pattern,
    combo: Sequence[int],
    *,
    induced: bool,
    automorphisms: Optional[Sequence[Tuple[int, ...]]] = None,
):
    """Distinct matches of ``pattern`` whose image is exactly ``combo``.

    ``combo`` is a tuple of ``pattern.num_vertices`` distinct data
    vertices.  Returns one canonical representative (under the pattern's
    automorphism group) per distinct match, as in
    :func:`brute_force_embeddings`; injectivity over ``combo`` means
    distinct vertex sets contribute disjoint match classes, so summing
    over vertex sets is exact.  The verification oracle calls this on
    *connected* vertex sets only — a connected pattern's image is always
    connected — which is what makes it cheaper than the all-combinations
    brute force.
    """
    k = pattern.num_vertices
    sub = _induced_pattern(graph, combo)
    if sub.num_edges < pattern.num_edges:
        return []
    if induced and sub.num_edges != pattern.num_edges:
        return []
    autos = (
        automorphisms
        if automorphisms is not None
        else pattern.automorphisms()
    )
    reps = set()
    for perm in _hom_permutations(sub, pattern, induced=induced):
        mapping = tuple(combo[perm[u]] for u in range(k))
        # Canonical class representative under Aut(P).
        reps.add(
            min(tuple(mapping[a[u]] for u in range(k)) for a in autos)
        )
    return sorted(reps)


def _hom_permutations(sub: Pattern, pattern: Pattern, *, induced: bool):
    """Injective label-compatible mappings of ``pattern`` onto ``sub``.

    Yields permutations ``perm`` with ``perm[u_pattern] = u_sub`` such
    that every pattern edge is present in ``sub`` (and, when
    ``induced``, every pattern non-edge is absent).
    """
    k = pattern.num_vertices
    for perm in itertools.permutations(range(k)):
        if not all(
            _labels_compatible(pattern.label(u), sub.label(perm[u]))
            for u in range(k)
        ):
            continue
        if not all(
            sub.has_edge(perm[u], perm[v]) for u, v in pattern.edges
        ):
            continue
        if induced and sub.num_edges != pattern.num_edges:
            continue
        yield perm


def brute_force_count(graph, pattern: Pattern, *, induced: bool) -> int:
    """Number of distinct matches (see :func:`brute_force_embeddings`)."""
    return len(brute_force_embeddings(graph, pattern, induced=induced))


def _induced_pattern(graph, combo: Sequence[int]) -> Pattern:
    index: Dict[int, int] = {v: i for i, v in enumerate(combo)}
    edges = [
        (index[u], index[v])
        for i, u in enumerate(combo)
        for v in combo[i + 1 :]
        if graph.has_edge(u, v)
    ]
    data_labels = getattr(graph, "labels", None)
    labels = (
        [int(data_labels[v]) for v in combo]
        if data_labels is not None
        else None
    )
    return Pattern(len(combo), edges, labels=labels)
