"""k-motif enumeration (paper Fig. 3).

A *motif* is a connected graph on k vertices, counted up to isomorphism.
k-MC (k-motif counting) finds the number of vertex-induced occurrences of
every k-motif simultaneously — the paper's multi-pattern problem.
"""

from __future__ import annotations

import itertools
from typing import List

from .pattern import Pattern

__all__ = ["enumerate_motifs", "motif_names", "NUM_MOTIFS"]

#: Known connected-graph counts, used to sanity check enumeration.
NUM_MOTIFS = {1: 1, 2: 1, 3: 2, 4: 6, 5: 21}

_CACHE: dict = {}


def enumerate_motifs(k: int) -> List[Pattern]:
    """All connected k-vertex graphs, one representative per iso class.

    Returns patterns sorted by (edge count, canonical form) so the order
    is deterministic: for k=3 this yields [wedge, triangle]; for k=4 the
    six motifs of Fig. 3 from sparsest (3-path) to densest (4-clique).
    """
    if k in _CACHE:
        return list(_CACHE[k])
    if k < 1:
        raise ValueError("k must be >= 1")

    possible_edges = list(itertools.combinations(range(k), 2))
    seen = set()
    found: List[Pattern] = []
    # Connected graphs on k vertices need at least k-1 edges.
    for count in range(max(k - 1, 0), len(possible_edges) + 1):
        for combo in itertools.combinations(possible_edges, count):
            pattern = Pattern(k, combo)
            if not pattern.is_connected():
                continue
            key = pattern.canonical_form()
            if key in seen:
                continue
            seen.add(key)
            found.append(
                Pattern(k, combo, name=_default_name(k, pattern, len(found)))
            )
    _CACHE[k] = found
    return list(found)


def motif_names(k: int) -> List[str]:
    return [m.name for m in enumerate_motifs(k)]


def _default_name(k: int, pattern: Pattern, index: int) -> str:
    special = {
        (3, 2): "wedge",
        (3, 3): "triangle",
        (4, 6): "4-clique",
        (4, 4): None,  # ambiguous between 4-cycle and tailed-triangle
        (4, 5): "diamond",
    }
    key = (k, pattern.num_edges)
    if key in special and special[key]:
        return special[key]
    if k == 4 and pattern.num_edges == 3:
        degrees = sorted(pattern.degree(u) for u in pattern)
        return "3-star" if degrees[-1] == 3 else "4-path"
    if k == 4 and pattern.num_edges == 4:
        degrees = sorted(pattern.degree(u) for u in pattern)
        return "4-cycle" if degrees == [2, 2, 2, 2] else "tailed-triangle"
    return f"{k}-motif-{index}"
